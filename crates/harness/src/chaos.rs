//! Deterministic fault injection for the profiling pipeline.
//!
//! A robustness claim is only as good as the worst fault it has been
//! shown to contain. This module injects the three fault classes the
//! supervised pipeline must survive — a panic mid-block, a transient
//! measurement failure, and a cache-write I/O error — at *chosen,
//! deterministic* points, so the chaos test suite can prove each class is
//! contained and recovered exactly as designed:
//!
//! * faults are addressed by `(unique-block index, attempt)` (or by write
//!   ordinal for cache errors), never by wall clock or randomness at
//!   injection time, so a chaos run at 1 thread and at N threads injects
//!   the same faults into the same work;
//! * the seeded constructor ([`FaultPlan::seeded`]) derives the fault
//!   sites from a `SmallRng`, so large randomized plans are reproducible
//!   from a single `u64`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where and what to inject. Immutable once built; shared by reference
/// across workers through a [`ChaosInjector`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(unique-block index, attempt)` pairs whose profiling panics.
    panics: BTreeSet<(usize, u32)>,
    /// `(unique-block index, attempt)` pairs forced to fail as
    /// unreproducible.
    transients: BTreeSet<(usize, u32)>,
    /// Ordinals (0-based) of cache writes that fail with an I/O error.
    cache_write_errors: BTreeSet<usize>,
    /// Connection ordinals (0-based accept order) that disconnect
    /// mid-request: the chaos client sends half a line and hangs up.
    conn_drops: BTreeSet<usize>,
    /// Connection ordinals that stall mid-line (slow-loris): the chaos
    /// client sends half a line and then nothing, holding the socket
    /// open until the server's read deadline defeats it.
    slow_loris: BTreeSet<usize>,
    /// Request ordinals (0-based admission order) belonging to a burst:
    /// the chaos client fires these concurrently to overload admission.
    bursts: BTreeSet<usize>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic while profiling `unique_block` on attempt `attempt`.
    #[must_use]
    pub fn panic_at(mut self, unique_block: usize, attempt: u32) -> FaultPlan {
        self.panics.insert((unique_block, attempt));
        self
    }

    /// Force attempt `attempt` of `unique_block` to fail as
    /// unreproducible.
    #[must_use]
    pub fn transient_at(mut self, unique_block: usize, attempt: u32) -> FaultPlan {
        self.transients.insert((unique_block, attempt));
        self
    }

    /// Force attempts `0..=last_attempt` of `unique_block` to fail as
    /// unreproducible — enough to exhaust a retry budget of
    /// `last_attempt`.
    #[must_use]
    pub fn transient_through(mut self, unique_block: usize, last_attempt: u32) -> FaultPlan {
        for attempt in 0..=last_attempt {
            self.transients.insert((unique_block, attempt));
        }
        self
    }

    /// Fail the `nth_write`-th (0-based) cache write with an I/O error.
    #[must_use]
    pub fn cache_write_error_at(mut self, nth_write: usize) -> FaultPlan {
        self.cache_write_errors.insert(nth_write);
        self
    }

    /// Disconnect the `conn`-th accepted connection mid-request.
    #[must_use]
    pub fn drop_connection_at(mut self, conn: usize) -> FaultPlan {
        self.conn_drops.insert(conn);
        self
    }

    /// Stall the `conn`-th accepted connection mid-line (slow-loris).
    #[must_use]
    pub fn slow_loris_at(mut self, conn: usize) -> FaultPlan {
        self.slow_loris.insert(conn);
        self
    }

    /// Mark the `request`-th admitted request as part of a concurrent
    /// overload burst.
    #[must_use]
    pub fn burst_at(mut self, request: usize) -> FaultPlan {
        self.bursts.insert(request);
        self
    }

    /// Mark requests `first..first + len` as one overload burst.
    #[must_use]
    pub fn burst_of(mut self, first: usize, len: usize) -> FaultPlan {
        for request in first..first + len {
            self.bursts.insert(request);
        }
        self
    }

    /// A randomized plan over `blocks` unique blocks, reproducible from
    /// `seed`: each block's attempt 0 panics with probability
    /// `panic_rate` and is forced transient with probability
    /// `transient_rate` (a block gets at most one of the two).
    pub fn seeded(seed: u64, blocks: usize, panic_rate: f64, transient_rate: f64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for block in 0..blocks {
            if panic_rate > 0.0 && rng.gen_bool(panic_rate.min(1.0)) {
                plan.panics.insert((block, 0));
            } else if transient_rate > 0.0 && rng.gen_bool(transient_rate.min(1.0)) {
                plan.transients.insert((block, 0));
            }
        }
        plan
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.transients.is_empty()
            && self.cache_write_errors.is_empty()
            && self.conn_drops.is_empty()
            && self.slow_loris.is_empty()
            && self.bursts.is_empty()
    }

    /// Number of planned panic sites.
    pub fn planned_panics(&self) -> usize {
        self.panics.len()
    }

    /// Number of planned forced-transient sites.
    pub fn planned_transients(&self) -> usize {
        self.transients.len()
    }

    /// Iterates the planned panic sites as `(unique-block, attempt)`,
    /// in deterministic (sorted) order — the addresses the chaos trace
    /// tests assert against.
    pub fn panic_sites(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.panics.iter().copied()
    }

    /// Iterates the planned forced-transient sites as
    /// `(unique-block, attempt)`, in deterministic order.
    pub fn transient_sites(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.transients.iter().copied()
    }

    /// Iterates the planned cache-write-error ordinals, in
    /// deterministic order.
    pub fn cache_error_sites(&self) -> impl Iterator<Item = usize> + '_ {
        self.cache_write_errors.iter().copied()
    }

    /// Iterates the planned mid-request-disconnect connection ordinals,
    /// in deterministic order.
    pub fn conn_drop_sites(&self) -> impl Iterator<Item = usize> + '_ {
        self.conn_drops.iter().copied()
    }

    /// Iterates the planned slow-loris connection ordinals, in
    /// deterministic order.
    pub fn slow_loris_sites(&self) -> impl Iterator<Item = usize> + '_ {
        self.slow_loris.iter().copied()
    }

    /// Iterates the planned burst request ordinals, in deterministic
    /// order.
    pub fn burst_sites(&self) -> impl Iterator<Item = usize> + '_ {
        self.bursts.iter().copied()
    }
}

/// What an injector actually fired during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Panics injected into profiling attempts.
    pub injected_panics: usize,
    /// Attempts forced to fail as unreproducible.
    pub forced_transients: usize,
    /// Cache writes failed with an injected I/O error.
    pub cache_write_errors: usize,
    /// Connections dropped mid-request by the chaos client.
    pub dropped_connections: usize,
    /// Connections stalled mid-line by the chaos client.
    pub slow_loris_stalls: usize,
    /// Requests fired as part of an overload burst.
    pub burst_requests: usize,
}

impl ChaosStats {
    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.injected_panics == 0
            && self.forced_transients == 0
            && self.cache_write_errors == 0
            && self.dropped_connections == 0
            && self.slow_loris_stalls == 0
            && self.burst_requests == 0
    }
}

/// Thread-safe executor of a [`FaultPlan`]: the pipeline consults it at
/// each injection point; fired faults are counted so tests can assert
/// the plan actually executed.
#[derive(Debug, Default)]
pub struct ChaosInjector {
    plan: FaultPlan,
    panics: AtomicUsize,
    transients: AtomicUsize,
    cache_errors: AtomicUsize,
    conn_drops: AtomicUsize,
    loris_stalls: AtomicUsize,
    burst_fires: AtomicUsize,
}

impl ChaosInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> ChaosInjector {
        ChaosInjector {
            plan,
            ..ChaosInjector::default()
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Panics if the plan schedules a panic for this `(block, attempt)`.
    /// Called inside the pipeline's `catch_unwind` region, so the panic
    /// surfaces as [`crate::ProfileFailure::Panic`] like a real one.
    pub fn panic_if_planned(&self, unique_block: usize, attempt: u32) {
        if self.plan.panics.contains(&(unique_block, attempt)) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected panic at block {unique_block} attempt {attempt}");
        }
    }

    /// True when this `(block, attempt)` must fail as unreproducible.
    pub fn forces_transient(&self, unique_block: usize, attempt: u32) -> bool {
        let forced = self.plan.transients.contains(&(unique_block, attempt));
        if forced {
            self.transients.fetch_add(1, Ordering::Relaxed);
        }
        forced
    }

    /// True when the `nth_write`-th cache write must fail.
    pub fn fail_cache_write(&self, nth_write: usize) -> bool {
        let fail = self.plan.cache_write_errors.contains(&nth_write);
        if fail {
            self.cache_errors.fetch_add(1, Ordering::Relaxed);
        }
        fail
    }

    /// True when the `conn`-th accepted connection must be dropped
    /// mid-request. Consulted by the chaos *client* (the side able to
    /// hang up); counted here so the suite can assert the plan fired.
    pub fn drops_connection(&self, conn: usize) -> bool {
        let drop = self.plan.conn_drops.contains(&conn);
        if drop {
            self.conn_drops.fetch_add(1, Ordering::Relaxed);
        }
        drop
    }

    /// True when the `conn`-th accepted connection must stall mid-line.
    pub fn is_slow_loris(&self, conn: usize) -> bool {
        let stall = self.plan.slow_loris.contains(&conn);
        if stall {
            self.loris_stalls.fetch_add(1, Ordering::Relaxed);
        }
        stall
    }

    /// True when the `request`-th request belongs to an overload burst.
    pub fn in_burst(&self, request: usize) -> bool {
        let burst = self.plan.bursts.contains(&request);
        if burst {
            self.burst_fires.fetch_add(1, Ordering::Relaxed);
        }
        burst
    }

    /// Counters of the faults fired so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            injected_panics: self.panics.load(Ordering::Relaxed),
            forced_transients: self.transients.load(Ordering::Relaxed),
            cache_write_errors: self.cache_errors.load(Ordering::Relaxed),
            dropped_connections: self.conn_drops.load(Ordering::Relaxed),
            slow_loris_stalls: self.loris_stalls.load(Ordering::Relaxed),
            burst_requests: self.burst_fires.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_register_sites() {
        let plan = FaultPlan::new()
            .panic_at(3, 0)
            .transient_through(5, 2)
            .cache_write_error_at(1);
        assert!(!plan.is_empty());
        assert_eq!(plan.planned_panics(), 1);
        assert_eq!(plan.planned_transients(), 3, "attempts 0, 1, 2");
        let injector = ChaosInjector::new(plan);
        assert!(injector.forces_transient(5, 1));
        assert!(!injector.forces_transient(5, 3));
        assert!(injector.fail_cache_write(1));
        assert!(!injector.fail_cache_write(0));
        assert_eq!(injector.stats().forced_transients, 1);
        assert_eq!(injector.stats().cache_write_errors, 1);
    }

    #[test]
    fn planned_panic_fires_and_is_counted() {
        let injector = ChaosInjector::new(FaultPlan::new().panic_at(7, 1));
        injector.panic_if_planned(7, 0); // not planned: no panic
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.panic_if_planned(7, 1)
        }));
        assert!(caught.is_err(), "planned panic must fire");
        assert_eq!(injector.stats().injected_panics, 1);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_rate_bounded() {
        let a = FaultPlan::seeded(42, 1000, 0.05, 0.2);
        let b = FaultPlan::seeded(42, 1000, 0.05, 0.2);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::seeded(43, 1000, 0.05, 0.2);
        assert_ne!(a, c, "different seed, different plan");
        let panics = a.planned_panics();
        let transients = a.planned_transients();
        assert!((10..=120).contains(&panics), "~5% of 1000, got {panics}");
        assert!(
            (100..=350).contains(&transients),
            "~20% of the rest, got {transients}"
        );
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let injector = ChaosInjector::new(FaultPlan::new());
        injector.panic_if_planned(0, 0);
        assert!(!injector.forces_transient(0, 0));
        assert!(!injector.fail_cache_write(0));
        assert!(!injector.drops_connection(0));
        assert!(!injector.is_slow_loris(0));
        assert!(!injector.in_burst(0));
        assert!(injector.stats().is_empty());
    }

    #[test]
    fn connection_fault_plan_registers_and_counts() {
        let plan = FaultPlan::new()
            .drop_connection_at(2)
            .slow_loris_at(4)
            .burst_of(10, 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.conn_drop_sites().collect::<Vec<_>>(), vec![2]);
        assert_eq!(plan.slow_loris_sites().collect::<Vec<_>>(), vec![4]);
        assert_eq!(plan.burst_sites().collect::<Vec<_>>(), vec![10, 11, 12]);
        let injector = ChaosInjector::new(plan);
        assert!(injector.drops_connection(2));
        assert!(!injector.drops_connection(3));
        assert!(injector.is_slow_loris(4));
        assert!(injector.in_burst(11));
        assert!(!injector.in_burst(13));
        let stats = injector.stats();
        assert_eq!(stats.dropped_connections, 1);
        assert_eq!(stats.slow_loris_stalls, 1);
        assert_eq!(stats.burst_requests, 1);
    }
}
