//! Deterministic fault injection for the profiling pipeline.
//!
//! A robustness claim is only as good as the worst fault it has been
//! shown to contain. This module injects the three fault classes the
//! supervised pipeline must survive — a panic mid-block, a transient
//! measurement failure, and a cache-write I/O error — at *chosen,
//! deterministic* points, so the chaos test suite can prove each class is
//! contained and recovered exactly as designed:
//!
//! * faults are addressed by `(unique-block index, attempt)` (or by write
//!   ordinal for cache errors), never by wall clock or randomness at
//!   injection time, so a chaos run at 1 thread and at N threads injects
//!   the same faults into the same work;
//! * the seeded constructor ([`FaultPlan::seeded`]) derives the fault
//!   sites from a `SmallRng`, so large randomized plans are reproducible
//!   from a single `u64`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where and what to inject. Immutable once built; shared by reference
/// across workers through a [`ChaosInjector`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(unique-block index, attempt)` pairs whose profiling panics.
    panics: BTreeSet<(usize, u32)>,
    /// `(unique-block index, attempt)` pairs forced to fail as
    /// unreproducible.
    transients: BTreeSet<(usize, u32)>,
    /// Ordinals (0-based) of cache writes that fail with an I/O error.
    cache_write_errors: BTreeSet<usize>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic while profiling `unique_block` on attempt `attempt`.
    #[must_use]
    pub fn panic_at(mut self, unique_block: usize, attempt: u32) -> FaultPlan {
        self.panics.insert((unique_block, attempt));
        self
    }

    /// Force attempt `attempt` of `unique_block` to fail as
    /// unreproducible.
    #[must_use]
    pub fn transient_at(mut self, unique_block: usize, attempt: u32) -> FaultPlan {
        self.transients.insert((unique_block, attempt));
        self
    }

    /// Force attempts `0..=last_attempt` of `unique_block` to fail as
    /// unreproducible — enough to exhaust a retry budget of
    /// `last_attempt`.
    #[must_use]
    pub fn transient_through(mut self, unique_block: usize, last_attempt: u32) -> FaultPlan {
        for attempt in 0..=last_attempt {
            self.transients.insert((unique_block, attempt));
        }
        self
    }

    /// Fail the `nth_write`-th (0-based) cache write with an I/O error.
    #[must_use]
    pub fn cache_write_error_at(mut self, nth_write: usize) -> FaultPlan {
        self.cache_write_errors.insert(nth_write);
        self
    }

    /// A randomized plan over `blocks` unique blocks, reproducible from
    /// `seed`: each block's attempt 0 panics with probability
    /// `panic_rate` and is forced transient with probability
    /// `transient_rate` (a block gets at most one of the two).
    pub fn seeded(seed: u64, blocks: usize, panic_rate: f64, transient_rate: f64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for block in 0..blocks {
            if panic_rate > 0.0 && rng.gen_bool(panic_rate.min(1.0)) {
                plan.panics.insert((block, 0));
            } else if transient_rate > 0.0 && rng.gen_bool(transient_rate.min(1.0)) {
                plan.transients.insert((block, 0));
            }
        }
        plan
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.transients.is_empty() && self.cache_write_errors.is_empty()
    }

    /// Number of planned panic sites.
    pub fn planned_panics(&self) -> usize {
        self.panics.len()
    }

    /// Number of planned forced-transient sites.
    pub fn planned_transients(&self) -> usize {
        self.transients.len()
    }

    /// Iterates the planned panic sites as `(unique-block, attempt)`,
    /// in deterministic (sorted) order — the addresses the chaos trace
    /// tests assert against.
    pub fn panic_sites(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.panics.iter().copied()
    }

    /// Iterates the planned forced-transient sites as
    /// `(unique-block, attempt)`, in deterministic order.
    pub fn transient_sites(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.transients.iter().copied()
    }

    /// Iterates the planned cache-write-error ordinals, in
    /// deterministic order.
    pub fn cache_error_sites(&self) -> impl Iterator<Item = usize> + '_ {
        self.cache_write_errors.iter().copied()
    }
}

/// What an injector actually fired during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Panics injected into profiling attempts.
    pub injected_panics: usize,
    /// Attempts forced to fail as unreproducible.
    pub forced_transients: usize,
    /// Cache writes failed with an injected I/O error.
    pub cache_write_errors: usize,
}

impl ChaosStats {
    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.injected_panics == 0 && self.forced_transients == 0 && self.cache_write_errors == 0
    }
}

/// Thread-safe executor of a [`FaultPlan`]: the pipeline consults it at
/// each injection point; fired faults are counted so tests can assert
/// the plan actually executed.
#[derive(Debug, Default)]
pub struct ChaosInjector {
    plan: FaultPlan,
    panics: AtomicUsize,
    transients: AtomicUsize,
    cache_errors: AtomicUsize,
}

impl ChaosInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> ChaosInjector {
        ChaosInjector {
            plan,
            ..ChaosInjector::default()
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Panics if the plan schedules a panic for this `(block, attempt)`.
    /// Called inside the pipeline's `catch_unwind` region, so the panic
    /// surfaces as [`crate::ProfileFailure::Panic`] like a real one.
    pub fn panic_if_planned(&self, unique_block: usize, attempt: u32) {
        if self.plan.panics.contains(&(unique_block, attempt)) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected panic at block {unique_block} attempt {attempt}");
        }
    }

    /// True when this `(block, attempt)` must fail as unreproducible.
    pub fn forces_transient(&self, unique_block: usize, attempt: u32) -> bool {
        let forced = self.plan.transients.contains(&(unique_block, attempt));
        if forced {
            self.transients.fetch_add(1, Ordering::Relaxed);
        }
        forced
    }

    /// True when the `nth_write`-th cache write must fail.
    pub fn fail_cache_write(&self, nth_write: usize) -> bool {
        let fail = self.plan.cache_write_errors.contains(&nth_write);
        if fail {
            self.cache_errors.fetch_add(1, Ordering::Relaxed);
        }
        fail
    }

    /// Counters of the faults fired so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            injected_panics: self.panics.load(Ordering::Relaxed),
            forced_transients: self.transients.load(Ordering::Relaxed),
            cache_write_errors: self.cache_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_register_sites() {
        let plan = FaultPlan::new()
            .panic_at(3, 0)
            .transient_through(5, 2)
            .cache_write_error_at(1);
        assert!(!plan.is_empty());
        assert_eq!(plan.planned_panics(), 1);
        assert_eq!(plan.planned_transients(), 3, "attempts 0, 1, 2");
        let injector = ChaosInjector::new(plan);
        assert!(injector.forces_transient(5, 1));
        assert!(!injector.forces_transient(5, 3));
        assert!(injector.fail_cache_write(1));
        assert!(!injector.fail_cache_write(0));
        assert_eq!(injector.stats().forced_transients, 1);
        assert_eq!(injector.stats().cache_write_errors, 1);
    }

    #[test]
    fn planned_panic_fires_and_is_counted() {
        let injector = ChaosInjector::new(FaultPlan::new().panic_at(7, 1));
        injector.panic_if_planned(7, 0); // not planned: no panic
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.panic_if_planned(7, 1)
        }));
        assert!(caught.is_err(), "planned panic must fire");
        assert_eq!(injector.stats().injected_panics, 1);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_rate_bounded() {
        let a = FaultPlan::seeded(42, 1000, 0.05, 0.2);
        let b = FaultPlan::seeded(42, 1000, 0.05, 0.2);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::seeded(43, 1000, 0.05, 0.2);
        assert_ne!(a, c, "different seed, different plan");
        let panics = a.planned_panics();
        let transients = a.planned_transients();
        assert!((10..=120).contains(&panics), "~5% of 1000, got {panics}");
        assert!(
            (100..=350).contains(&transients),
            "~20% of the rest, got {transients}"
        );
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let injector = ChaosInjector::new(FaultPlan::new());
        injector.panic_if_planned(0, 0);
        assert!(!injector.forces_transient(0, 0));
        assert!(!injector.fail_cache_write(0));
        assert!(injector.stats().is_empty());
    }
}
