//! Process-wide SIGINT/SIGTERM flag for graceful interruption.
//!
//! A batch `measure` run killed mid-write used to die wherever the
//! signal landed — possibly between a cache append and its flush. With
//! the handler installed, a signal only flips a flag; the worker pool
//! ([`crate::profile_corpus_supervised`]) finishes the blocks in hand,
//! resolves everything unclaimed as [`crate::ProfileFailure::Interrupted`]
//! (transient — never persisted, re-measured on resume), and the run
//! exits through the normal reporting path: the cache log is already
//! flushed per record, and `run_report.json` carries a partial-run note
//! instead of being absent or torn.
//!
//! The handler is registered with raw `signal(2)` FFI (no libc crate —
//! same discipline as the cache's `flock` binding) and does nothing but
//! store to a static `AtomicBool`, which is async-signal-safe. The
//! serving layer does *not* use this module's flag for drains; it wires
//! its own [`std::sync::atomic::AtomicBool`] so in-process tests can
//! drain a server without raising process-wide signals.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` — interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` — polite termination request.
pub const SIGTERM: i32 = 15;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    //! Raw binding for `signal(2)`. `sighandler_t` is a plain function
    //! pointer on every Linux/macOS ABI we build for.
    pub type Handler = extern "C" fn(i32);
    extern "C" {
        pub fn signal(signum: i32, handler: Handler) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: the one operation unconditionally
    // async-signal-safe. Everything else happens on normal threads that
    // poll the flag.
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler. Idempotent; later installs
/// simply re-register the same handler. On non-Unix targets this is a
/// no-op (the flag can still be set with [`request`]).
pub fn install() {
    #[cfg(unix)]
    unsafe {
        ffi::signal(SIGINT, on_signal);
        ffi::signal(SIGTERM, on_signal);
    }
}

/// True once a SIGINT/SIGTERM arrived (or [`request`] was called).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Sets the flag programmatically — what the signal handler does, minus
/// the signal. The flag is process-wide: in test binaries prefer
/// [`crate::Supervision::stop`], which is scoped to one run.
pub fn request() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    // The flag is process-wide state shared with every other test in
    // the binary, so the only safe in-process assertion is that install
    // is callable and the flag starts clear; flipping it is exercised
    // end-to-end by the CLI interrupt tests (separate process).
    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        super::install();
        super::install();
        assert!(!super::interrupted());
    }
}
