//! Measurement results.

use bhive_sim::PerfCounters;
use serde::{Deserialize, Serialize};

/// The trials taken at one unroll factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSet {
    /// The unroll factor.
    pub unroll: u32,
    /// Core-cycle readings of every trial (clean or not).
    pub cycles: Vec<u64>,
    /// Number of clean trials (no cache miss, no context switch).
    pub clean: u32,
    /// Size of the largest group of identical clean timings.
    pub identical: u32,
    /// The accepted (modal clean) cycle count.
    pub accepted_cycles: u64,
    /// Counters of the accepted timing.
    pub counters: PerfCounters,
}

/// A successful throughput measurement of one basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Steady-state inverse throughput: average cycles per block iteration
    /// (IACA's definition, as used throughout the paper).
    pub throughput: f64,
    /// Trials at the lower unroll factor.
    pub lo: TrialSet,
    /// Trials at the higher unroll factor (equal to `lo` for naive
    /// unrolling).
    pub hi: TrialSet,
    /// Distinct virtual pages the monitor mapped for this block.
    pub mapped_pages: usize,
    /// Page faults serviced during the mapping stage.
    pub faults_serviced: u32,
    /// Subnormal FP events observed in the measured run (nonzero only when
    /// gradual underflow is left enabled).
    pub subnormal_events: u64,
    /// Cache-line-crossing accesses observed (nonzero only when the
    /// misalignment filter is disabled).
    pub misaligned_refs: u64,
    /// Which attempt produced this measurement (0 = first try; > 0 means
    /// the block was recovered by retry escalation after transient
    /// failures). Part of the measurement's identity: a corpus profiled
    /// at any thread count, cold or warm, reports the same attempt.
    pub attempt: u32,
}

impl Measurement {
    /// True when the block needed retry escalation to measure.
    pub fn recovered_on_retry(&self) -> bool {
        self.attempt > 0
    }
    /// Cycles per dynamic instruction at steady state.
    pub fn cycles_per_inst(&self, block_len: usize) -> f64 {
        if block_len == 0 {
            return 0.0;
        }
        self.throughput / block_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trialset(unroll: u32, cycles: u64) -> TrialSet {
        TrialSet {
            unroll,
            cycles: vec![cycles; 16],
            clean: 16,
            identical: 16,
            accepted_cycles: cycles,
            counters: PerfCounters::default(),
        }
    }

    #[test]
    fn cycles_per_inst() {
        let m = Measurement {
            throughput: 8.0,
            lo: trialset(50, 400),
            hi: trialset(100, 800),
            mapped_pages: 1,
            faults_serviced: 1,
            subnormal_events: 0,
            misaligned_refs: 0,
            attempt: 0,
        };
        assert_eq!(m.cycles_per_inst(4), 2.0);
        assert_eq!(m.cycles_per_inst(0), 0.0);
        assert!(!m.recovered_on_retry());
        let recovered = Measurement { attempt: 2, ..m };
        assert!(recovered.recovered_on_retry());
    }
}
