//! Why a block failed to profile.

use bhive_asm::AsmError;
use bhive_sim::{ExecFault, PerfCounters};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Whether a failure is worth retrying.
///
/// See [`ProfileFailure::class`] for which variants fall where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureClass {
    /// The failure can be an artifact of measurement noise (unreproducible
    /// timings, a negative two-unroll delta, noise-dirtied counters, a
    /// panic from poisoned worker state): a retry with a fresh noise seed
    /// and more trials can legitimately succeed. Transient failures are
    /// retried by the supervised pipeline and are never persisted in the
    /// on-disk measurement cache.
    Transient,
    /// The failure is a deterministic property of the block itself
    /// (crash, unmappable address, unsupported ISA, encoding or
    /// structural problems, misalignment): retrying reproduces it
    /// bit-for-bit, so it is reported once and cached.
    Permanent,
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureClass::Transient => "transient",
            FailureClass::Permanent => "permanent",
        })
    }
}

/// Reasons a basic block could not be successfully profiled.
///
/// The paper counts a block as *successfully profiled* only when it
/// executes without crashing, incurs no cache misses, and the measurement
/// reproduces; each variant here corresponds to one way of falling short.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProfileFailure {
    /// The block faulted and the configuration could not recover
    /// (no page mapping, invalid address, divide error, ...).
    Crash {
        /// Human-readable fault description.
        fault: String,
    },
    /// The monitor gave up after `max_faults` page faults.
    TooManyFaults {
        /// Number of faults serviced before giving up.
        faults: u32,
    },
    /// The faulting address is outside the mappable user-space range.
    InvalidAddress {
        /// The unmappable address.
        vaddr: u64,
    },
    /// Fewer than the required number of identical clean timings.
    Unreproducible {
        /// Clean trials observed.
        clean: u32,
        /// Size of the largest identical-timing group among them.
        identical: u32,
        /// Trials required.
        required: u32,
    },
    /// The two-unroll cycle delta came out negative: the larger unroll
    /// measured *fewer* cycles than the smaller one, so the pair of
    /// timings cannot describe a steady state. Previously clamped to a
    /// throughput of 0.0, which silently polluted datasets.
    NegativeDelta {
        /// Accepted cycles at the smaller unroll factor.
        lo_cycles: u64,
        /// Accepted cycles at the larger unroll factor.
        hi_cycles: u64,
        /// The smaller unroll factor.
        lo_unroll: u32,
        /// The larger unroll factor.
        hi_unroll: u32,
    },
    /// Profiling this block panicked inside the harness. Recorded as a
    /// per-block failure so one pathological block cannot abort a whole
    /// corpus run.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Every trial violated a modeling invariant (cache misses or context
    /// switches present even in the best trial).
    DirtyCounters {
        /// Counters of a representative trial.
        counters: PerfCounters,
    },
    /// The block performs cache-line-crossing accesses and the
    /// misalignment filter is enabled.
    Misaligned {
        /// Number of line-crossing accesses in one measured run.
        count: u64,
    },
    /// The block uses an ISA extension the machine lacks (AVX2 on IVB).
    UnsupportedIsa,
    /// The block could not be encoded (outside the supported subset).
    Encoding {
        /// The underlying error text.
        message: String,
    },
    /// Structural problems (empty block, branch not in tail position).
    InvalidBlock {
        /// Description of the violation.
        message: String,
    },
    /// The timing model exhausted its cycle budget without retiring the
    /// whole trace (a pathological schedule). Deterministic for a given
    /// block and uarch, so it is permanent — but it is an *error*
    /// outcome: the truncated simulation state is never surfaced as a
    /// measurement.
    NonConvergent {
        /// The exhausted cycle budget.
        cycle_budget: u64,
        /// Instructions retired before giving up.
        retired: u64,
        /// Instructions the trace wanted retired.
        total_insts: u64,
    },
    /// The run was interrupted (SIGINT/SIGTERM) before this block was
    /// profiled. Transient by construction: nothing about the block
    /// failed, so the outcome is never persisted and a resumed run
    /// measures the block normally.
    Interrupted,
}

impl ProfileFailure {
    pub(crate) fn from_fault(fault: ExecFault) -> ProfileFailure {
        ProfileFailure::Crash {
            fault: fault.to_string(),
        }
    }

    pub(crate) fn from_asm(err: AsmError) -> ProfileFailure {
        ProfileFailure::Encoding {
            message: err.to_string(),
        }
    }

    pub(crate) fn from_nonconvergence(err: bhive_sim::NonConvergence) -> ProfileFailure {
        ProfileFailure::NonConvergent {
            cycle_budget: err.cycle_budget,
            retired: err.retired as u64,
            total_insts: err.total_insts as u64,
        }
    }

    /// Every label [`ProfileFailure::category`] can return. Code that
    /// round-trips categories through strings (e.g. deserialized shard
    /// statistics) interns against this list so an unknown label is
    /// detected instead of silently minted.
    pub const CATEGORIES: &'static [&'static str] = &[
        "crash",
        "too-many-faults",
        "invalid-address",
        "unreproducible",
        "panic",
        "dirty-counters",
        "misaligned",
        "unsupported-isa",
        "encoding",
        "invalid-block",
        "non-convergent",
        "interrupted",
    ];

    /// Short machine-readable category label (used in reports).
    pub fn category(&self) -> &'static str {
        match self {
            ProfileFailure::Crash { .. } => "crash",
            ProfileFailure::TooManyFaults { .. } => "too-many-faults",
            ProfileFailure::InvalidAddress { .. } => "invalid-address",
            ProfileFailure::Unreproducible { .. } => "unreproducible",
            // Same category as Unreproducible: both mean "the timings do
            // not reproduce a steady state", and reports bucket them
            // together.
            ProfileFailure::NegativeDelta { .. } => "unreproducible",
            ProfileFailure::Panic { .. } => "panic",
            ProfileFailure::DirtyCounters { .. } => "dirty-counters",
            ProfileFailure::Misaligned { .. } => "misaligned",
            ProfileFailure::UnsupportedIsa => "unsupported-isa",
            ProfileFailure::Encoding { .. } => "encoding",
            ProfileFailure::InvalidBlock { .. } => "invalid-block",
            ProfileFailure::NonConvergent { .. } => "non-convergent",
            ProfileFailure::Interrupted => "interrupted",
        }
    }

    /// Transient-vs-permanent classification (see [`FailureClass`]).
    pub fn class(&self) -> FailureClass {
        match self {
            ProfileFailure::Unreproducible { .. }
            | ProfileFailure::NegativeDelta { .. }
            | ProfileFailure::DirtyCounters { .. }
            | ProfileFailure::Interrupted
            | ProfileFailure::Panic { .. } => FailureClass::Transient,
            ProfileFailure::Crash { .. }
            | ProfileFailure::TooManyFaults { .. }
            | ProfileFailure::InvalidAddress { .. }
            | ProfileFailure::Misaligned { .. }
            | ProfileFailure::UnsupportedIsa
            | ProfileFailure::Encoding { .. }
            | ProfileFailure::InvalidBlock { .. }
            | ProfileFailure::NonConvergent { .. } => FailureClass::Permanent,
        }
    }

    /// True for failures a retry with a fresh noise seed can recover.
    pub fn is_transient(&self) -> bool {
        self.class() == FailureClass::Transient
    }
}

impl fmt::Display for ProfileFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileFailure::Crash { fault } => write!(f, "block crashed: {fault}"),
            ProfileFailure::TooManyFaults { faults } => {
                write!(f, "monitor killed block after {faults} page faults")
            }
            ProfileFailure::InvalidAddress { vaddr } => {
                write!(f, "faulting address {vaddr:#x} is not mappable")
            }
            ProfileFailure::Unreproducible {
                clean,
                identical,
                required,
            } => write!(
                f,
                "only {identical} identical timings among {clean} clean trials (need {required})"
            ),
            ProfileFailure::NegativeDelta {
                lo_cycles,
                hi_cycles,
                lo_unroll,
                hi_unroll,
            } => {
                write!(
                    f,
                    "negative two-unroll delta: {hi_cycles} cycles at unroll {hi_unroll} \
                     vs {lo_cycles} at unroll {lo_unroll}"
                )
            }
            ProfileFailure::Panic { message } => {
                write!(f, "profiling panicked: {message}")
            }
            ProfileFailure::DirtyCounters { counters } => write!(
                f,
                "modeling invariants violated (L1D misses {}/{}, L1I misses {}, ctx {})",
                counters.l1d_read_misses,
                counters.l1d_write_misses,
                counters.l1i_misses,
                counters.context_switches
            ),
            ProfileFailure::Misaligned { count } => {
                write!(f, "{count} cache-line-crossing accesses; block dropped")
            }
            ProfileFailure::UnsupportedIsa => f.write_str("ISA extension not supported"),
            ProfileFailure::Encoding { message } => write!(f, "encoding failure: {message}"),
            ProfileFailure::InvalidBlock { message } => write!(f, "invalid block: {message}"),
            ProfileFailure::NonConvergent {
                cycle_budget,
                retired,
                total_insts,
            } => write!(
                f,
                "timing model failed to converge: {retired}/{total_insts} instructions \
                 retired within the {cycle_budget}-cycle budget"
            ),
            ProfileFailure::Interrupted => {
                f.write_str("run interrupted before this block was profiled")
            }
        }
    }
}

impl Error for ProfileFailure {}

/// Why a *request* to the serving layer was not answered with a
/// measurement — the request-scoped counterpart of [`ProfileFailure`].
///
/// [`ProfileFailure`] describes properties of a *block*; these describe
/// properties of a *request* (its timing, its client, the server's
/// state), so they are never persisted in the measurement cache and
/// never feed the circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RequestFailure {
    /// The bounded miss queue was full; the client should retry after
    /// the advertised delay.
    QueueFull,
    /// The client exhausted its token bucket; per-client fairness
    /// throttled it before the shared queue was consulted.
    RateLimited,
    /// The server is degraded (breaker tripped or cache write failure)
    /// and is shedding miss-work; warm hits are still served.
    Shedding,
    /// The server is draining for shutdown and admits no new work.
    Draining,
    /// The request's deadline budget expired before a worker picked the
    /// job up; the block was never profiled on the request's behalf.
    DeadlineExpired,
    /// The per-request timeout degraded the request to a cache-only
    /// answer and the cache had no entry.
    MissTimeout,
    /// The request line was not a well-formed `bhive-serve/v1` message.
    Malformed,
    /// The connection stalled mid-line past the read deadline
    /// (slow-loris containment).
    ReadTimeout,
    /// The client disconnected mid-request.
    Disconnected,
}

impl RequestFailure {
    /// Every label [`RequestFailure::category`] can return, for the same
    /// interning discipline as [`ProfileFailure::CATEGORIES`].
    pub const CATEGORIES: &'static [&'static str] = &[
        "queue-full",
        "rate-limited",
        "shedding",
        "draining",
        "deadline-expired",
        "miss-timeout",
        "malformed",
        "read-timeout",
        "disconnected",
    ];

    /// Short machine-readable category label (used on the wire and in
    /// `serve.*` metrics).
    pub fn category(&self) -> &'static str {
        match self {
            RequestFailure::QueueFull => "queue-full",
            RequestFailure::RateLimited => "rate-limited",
            RequestFailure::Shedding => "shedding",
            RequestFailure::Draining => "draining",
            RequestFailure::DeadlineExpired => "deadline-expired",
            RequestFailure::MissTimeout => "miss-timeout",
            RequestFailure::Malformed => "malformed",
            RequestFailure::ReadTimeout => "read-timeout",
            RequestFailure::Disconnected => "disconnected",
        }
    }

    /// True when the same request, retried later, can succeed without
    /// the client changing anything (server-side pressure, not a client
    /// error). Drives whether a rejection carries `retry_after_ms`.
    pub fn is_retryable(&self) -> bool {
        match self {
            RequestFailure::QueueFull
            | RequestFailure::RateLimited
            | RequestFailure::Shedding
            | RequestFailure::Draining => true,
            RequestFailure::DeadlineExpired
            | RequestFailure::MissTimeout
            | RequestFailure::Malformed
            | RequestFailure::ReadTimeout
            | RequestFailure::Disconnected => false,
        }
    }
}

impl fmt::Display for RequestFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RequestFailure::QueueFull => "miss queue full; retry later",
            RequestFailure::RateLimited => "client token bucket empty; retry later",
            RequestFailure::Shedding => "server degraded; shedding miss-work",
            RequestFailure::Draining => "server draining for shutdown",
            RequestFailure::DeadlineExpired => "deadline expired before a worker ran the block",
            RequestFailure::MissTimeout => "timed out waiting; no cached answer",
            RequestFailure::Malformed => "malformed request line",
            RequestFailure::ReadTimeout => "read deadline exceeded mid-request",
            RequestFailure::Disconnected => "client disconnected mid-request",
        })
    }
}

impl Error for RequestFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_const_is_unique_and_covers_known_variants() {
        let mut seen = std::collections::HashSet::new();
        for category in ProfileFailure::CATEGORIES {
            assert!(seen.insert(category), "duplicate category {category}");
        }
        for failure in [
            ProfileFailure::Misaligned { count: 3 },
            ProfileFailure::UnsupportedIsa,
            ProfileFailure::Encoding {
                message: "x".into(),
            },
            ProfileFailure::NegativeDelta {
                lo_cycles: 2,
                hi_cycles: 1,
                lo_unroll: 8,
                hi_unroll: 16,
            },
        ] {
            assert!(
                ProfileFailure::CATEGORIES.contains(&failure.category()),
                "{} missing from CATEGORIES",
                failure.category()
            );
        }
    }

    #[test]
    fn categories_are_stable() {
        assert_eq!(
            ProfileFailure::Misaligned { count: 3 }.category(),
            "misaligned"
        );
        assert_eq!(ProfileFailure::UnsupportedIsa.category(), "unsupported-isa");
        // Both reproduce-class failures share the reporting bucket.
        assert_eq!(
            ProfileFailure::NegativeDelta {
                lo_cycles: 120,
                hi_cycles: 90,
                lo_unroll: 50,
                hi_unroll: 100,
            }
            .category(),
            "unreproducible"
        );
        assert_eq!(
            ProfileFailure::Panic {
                message: "boom".into()
            }
            .category(),
            "panic"
        );
        assert_eq!(
            ProfileFailure::NonConvergent {
                cycle_budget: 1_000_064,
                retired: 0,
                total_insts: 8,
            }
            .category(),
            "non-convergent"
        );
    }

    #[test]
    fn every_variant_has_a_class() {
        use FailureClass::{Permanent, Transient};
        let cases: [(ProfileFailure, FailureClass); 13] = [
            (ProfileFailure::Interrupted, Transient),
            (ProfileFailure::Crash { fault: "x".into() }, Permanent),
            (ProfileFailure::TooManyFaults { faults: 65 }, Permanent),
            (ProfileFailure::InvalidAddress { vaddr: 1 }, Permanent),
            (
                ProfileFailure::Unreproducible {
                    clean: 3,
                    identical: 2,
                    required: 8,
                },
                Transient,
            ),
            (
                ProfileFailure::NegativeDelta {
                    lo_cycles: 10,
                    hi_cycles: 5,
                    lo_unroll: 50,
                    hi_unroll: 100,
                },
                Transient,
            ),
            (
                ProfileFailure::Panic {
                    message: "b".into(),
                },
                Transient,
            ),
            (
                ProfileFailure::DirtyCounters {
                    counters: PerfCounters::default(),
                },
                Transient,
            ),
            (ProfileFailure::Misaligned { count: 1 }, Permanent),
            (ProfileFailure::UnsupportedIsa, Permanent),
            (
                ProfileFailure::Encoding {
                    message: "e".into(),
                },
                Permanent,
            ),
            (
                ProfileFailure::InvalidBlock {
                    message: "i".into(),
                },
                Permanent,
            ),
            (
                ProfileFailure::NonConvergent {
                    cycle_budget: 1_000_064,
                    retired: 0,
                    total_insts: 8,
                },
                Permanent,
            ),
        ];
        for (failure, expected) in cases {
            assert_eq!(failure.class(), expected, "{failure}");
            assert_eq!(failure.is_transient(), expected == Transient);
        }
        assert_eq!(Transient.to_string(), "transient");
        assert_eq!(Permanent.to_string(), "permanent");
    }

    #[test]
    fn request_categories_are_unique_and_complete() {
        let variants = [
            RequestFailure::QueueFull,
            RequestFailure::RateLimited,
            RequestFailure::Shedding,
            RequestFailure::Draining,
            RequestFailure::DeadlineExpired,
            RequestFailure::MissTimeout,
            RequestFailure::Malformed,
            RequestFailure::ReadTimeout,
            RequestFailure::Disconnected,
        ];
        assert_eq!(variants.len(), RequestFailure::CATEGORIES.len());
        let mut seen = std::collections::HashSet::new();
        for v in variants {
            assert!(seen.insert(v.category()), "duplicate {}", v.category());
            assert!(RequestFailure::CATEGORIES.contains(&v.category()));
        }
        // Pressure rejections advertise a retry; client errors do not.
        assert!(RequestFailure::QueueFull.is_retryable());
        assert!(RequestFailure::Draining.is_retryable());
        assert!(!RequestFailure::Malformed.is_retryable());
        assert!(!RequestFailure::DeadlineExpired.is_retryable());
    }

    #[test]
    fn display_mentions_key_numbers() {
        let f = ProfileFailure::Unreproducible {
            clean: 5,
            identical: 3,
            required: 8,
        };
        let text = f.to_string();
        assert!(text.contains('5') && text.contains('3') && text.contains('8'));
    }
}
