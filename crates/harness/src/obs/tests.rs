use super::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "bhive-obs-test-{}-{}-{}.jsonl",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn the_deterministic_layer_never_reads_the_clock() {
    // The determinism boundary is enforced at the source level: nothing
    // in this module may consult a clock. Wall-clock samples are
    // *recorded into* the wall section by the pipeline, which owns the
    // only `Instant` usage.
    let code: String = include_str!("../obs.rs")
        .lines()
        .filter(|line| !line.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(!code.contains("Instant"), "obs.rs must not use Instant");
    assert!(
        !code.contains("SystemTime"),
        "obs.rs must not use SystemTime"
    );
}

#[test]
fn linear_histogram_buckets_and_quantiles() {
    let mut hist = Histogram::new(BucketLayout::Linear {
        width: 10,
        buckets: 10,
    });
    for v in 1..=100u64 {
        hist.record(v);
    }
    assert_eq!(hist.total(), 100);
    assert_eq!(hist.sum(), 5050);
    assert_eq!(hist.min(), 1);
    assert_eq!(hist.max(), 100);
    // Exact p50 of 1..=100 is 50; the estimate is the bucket bound 50.
    assert_eq!(hist.p50(), 50);
    assert_eq!(hist.p95(), 100, "exact 95 lives in the (90,100] bucket");
    assert_eq!(hist.p99(), 100);
    assert!((hist.mean() - 50.5).abs() < 1e-9);
}

#[test]
fn overflow_bucket_clamps_to_observed_max() {
    let mut hist = Histogram::new(BucketLayout::Linear {
        width: 10,
        buckets: 2,
    });
    hist.record(5);
    hist.record(1000);
    assert_eq!(hist.quantile(1.0), 1000, "overflow estimate is the max");
    // Rank 1 lives in the first bucket: the estimate is its bound.
    assert_eq!(hist.p50(), 10);
}

#[test]
fn empty_histogram_is_all_zeroes() {
    let hist = Histogram::new(BucketLayout::Exponential {
        first: 8,
        buckets: 4,
    });
    assert_eq!(hist.total(), 0);
    assert_eq!(hist.p50(), 0);
    assert_eq!(hist.mean(), 0.0);
    assert_eq!(hist.min(), 0);
    assert_eq!(hist.max(), 0);
}

#[test]
fn exponential_layout_doubles_and_saturates() {
    let layout = BucketLayout::Exponential {
        first: 8,
        buckets: 4,
    };
    assert_eq!(layout.bounds(), vec![8, 16, 32, 64]);
    let big = BucketLayout::Exponential {
        first: u64::MAX / 2 + 1,
        buckets: 3,
    };
    let bounds = big.bounds();
    assert_eq!(
        bounds[1],
        u64::MAX,
        "doubling saturates instead of wrapping"
    );
    assert_eq!(bounds[2], u64::MAX, "and stays saturated");
}

#[test]
#[should_panic(expected = "identical bucket layouts")]
fn merging_mismatched_layouts_panics() {
    let mut a = Histogram::new(BucketLayout::Linear {
        width: 1,
        buckets: 2,
    });
    let b = Histogram::new(BucketLayout::Linear {
        width: 2,
        buckets: 2,
    });
    a.merge(&b);
}

#[test]
fn metrics_merge_is_add_max_and_bucketwise() {
    let layout = BucketLayout::Linear {
        width: 5,
        buckets: 4,
    };
    let mut a = Metrics::new();
    a.add("attempts", 3);
    a.gauge_max("max-attempt", 1);
    a.observe("cycles", layout, 7);
    let mut b = Metrics::new();
    b.add("attempts", 2);
    b.add("accepts", 1);
    b.gauge_max("max-attempt", 4);
    b.observe("cycles", layout, 12);
    a.merge(&b);
    assert_eq!(a.counter("attempts"), 5);
    assert_eq!(a.counter("accepts"), 1);
    assert_eq!(a.counter("absent"), 0);
    assert_eq!(a.gauge("max-attempt"), 4);
    let hist = a.histogram("cycles").unwrap();
    assert_eq!(hist.total(), 2);
    assert_eq!(hist.max(), 12);
}

fn attempt_events(unique: usize) -> Vec<TraceEvent> {
    vec![
        TraceEvent::Dequeue { unique, attempt: 0 },
        TraceEvent::AttemptStart {
            unique,
            attempt: 0,
            trials: 16,
        },
        TraceEvent::MappingDone {
            unique,
            attempt: 0,
            faults: 0,
            mapped_pages: 0,
        },
        TraceEvent::Accept {
            unique,
            attempt: 0,
            throughput: 1.0 + unique as f64,
        },
    ]
}

#[test]
fn merge_is_invariant_to_worker_splits() {
    // The same 12 events recorded (a) all by one worker and (b) split
    // across three workers in a scrambled claim order must merge to the
    // same deterministic sequence.
    let mut serial = EventBuffer::new(64);
    for unique in 0..3 {
        for event in attempt_events(unique) {
            serial.emit(event);
        }
    }
    serial.add("attempts.total", 3);

    let mut w0 = EventBuffer::new(64);
    let mut w1 = EventBuffer::new(64);
    let mut w2 = EventBuffer::new(64);
    for event in attempt_events(2) {
        w0.emit(event);
    }
    for event in attempt_events(0) {
        w1.emit(event);
    }
    for event in attempt_events(1) {
        w2.emit(event);
    }
    w0.add("attempts.total", 1);
    w1.add("attempts.total", 1);
    w2.add("attempts.total", 1);

    let a = RunObs::merge([serial]);
    let b = RunObs::merge([w0, w1, w2]);
    assert_eq!(a.events, b.events, "sort key must erase the schedule");
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.dropped_events, 0);
    assert_eq!(a.event_counts()["accept"], 3);
    // Ordinals are the post-merge indices.
    let ordinals: Vec<u64> = a.ordinals().map(|(o, _)| o).collect();
    assert_eq!(ordinals, (0..12).collect::<Vec<u64>>());
}

#[test]
fn preamble_sorts_first_and_verdict_last() {
    let mut buf = EventBuffer::new(16);
    buf.emit(TraceEvent::BreakerTrip {
        at_block: 63,
        rate: 0.5,
        window: 64,
    });
    buf.emit(TraceEvent::Dequeue {
        unique: 0,
        attempt: 0,
    });
    buf.emit(TraceEvent::CacheMiss { unique: 0 });
    buf.emit(TraceEvent::TraceRecovered {
        dropped_records: 1,
        dropped_bytes: 10,
    });
    let obs = RunObs::merge([buf]);
    let kinds: Vec<&str> = obs.events.iter().map(TraceEvent::kind).collect();
    assert_eq!(
        kinds,
        ["trace-recovered", "cache-miss", "dequeue", "breaker-trip"]
    );
}

#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let mut buf = EventBuffer::new(2);
    for unique in 0..5 {
        buf.emit(TraceEvent::CacheMiss { unique });
    }
    assert_eq!(buf.dropped(), 3);
    let obs = RunObs::merge([buf]);
    assert_eq!(obs.dropped_events, 3, "drops are loud, never silent");
    assert_eq!(obs.events.len(), 2);
}

#[test]
fn attempt_sink_translates_and_folds_metrics() {
    let mut buf = EventBuffer::new(16);
    buf.attempt_event(
        4,
        1,
        AttemptEvent::PageMapped {
            vaddr_page: 0x41000,
            fault: 1,
        },
    );
    buf.attempt_event(
        4,
        1,
        AttemptEvent::MappingDone {
            faults: 2,
            mapped_pages: 2,
        },
    );
    buf.attempt_event(
        4,
        1,
        AttemptEvent::MeasureDone {
            unroll: 100,
            trials: 32,
            clean: 32,
            identical: 30,
            accepted_cycles: 210,
        },
    );
    let obs = RunObs::merge([buf]);
    assert_eq!(obs.event_counts()["page-mapped"], 1);
    assert_eq!(obs.event_counts()["mapping-done"], 1);
    assert_eq!(obs.event_counts()["measure-done"], 1);
    assert_eq!(obs.metrics.histogram("mapping.faults").unwrap().total(), 1);
    assert_eq!(obs.metrics.histogram("measure.trials").unwrap().max(), 32);
    assert_eq!(obs.metrics.gauge("mapping.max-faults"), 2);
}

#[test]
fn trace_log_round_trips_and_filters_det_section() {
    let path = temp_path("roundtrip");
    let _ = std::fs::remove_file(&path);
    let mut buf = EventBuffer::new(16);
    buf.emit(TraceEvent::CacheMiss { unique: 0 });
    buf.emit(TraceEvent::Accept {
        unique: 0,
        attempt: 0,
        throughput: 1.5,
    });
    buf.add("attempts.total", 1);
    let mut wall = EventBuffer::new(16);
    wall.emit_wall(TraceEvent::CacheWriteError {
        ordinal: 0,
        unique: 0,
        injected: true,
    });
    let obs = RunObs::merge([buf, wall]);

    let mut log = TraceLog::open(&path).unwrap();
    assert!(log.recovery().is_none(), "fresh log has nothing to recover");
    log.append_run("demo/hsw", &obs).unwrap();
    drop(log);

    let det = TraceLog::det_section(&path).unwrap();
    assert!(det.contains("RunStart"), "{det}");
    assert!(det.contains("\"Accept\""), "{det}");
    assert!(det.contains("RunEnd"), "{det}");
    assert!(
        !det.contains("CacheWriteError"),
        "wall events must not leak into the det section: {det}"
    );
    let full = std::fs::read_to_string(&path).unwrap();
    assert!(full.contains("CacheWriteError"), "{full}");
    assert!(full.contains("WallMetrics"), "{full}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_tail_is_truncated_and_reported() {
    let path = temp_path("torn");
    let _ = std::fs::remove_file(&path);
    let mut buf = EventBuffer::new(16);
    buf.emit(TraceEvent::CacheMiss { unique: 0 });
    let obs = RunObs::merge([buf]);
    let mut log = TraceLog::open(&path).unwrap();
    log.append_run("first", &obs).unwrap();
    drop(log);
    let intact = std::fs::read(&path).unwrap();

    // Chop mid-line: the interrupted write must be dropped on reopen.
    let torn_len = intact.len() - 7;
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(torn_len as u64).unwrap();
    drop(f);

    let log = TraceLog::open(&path).unwrap();
    let recovery = log.recovery().expect("the torn tail must be reported");
    assert!(recovery.dropped_bytes > 0);
    assert!(recovery.dropped_records >= 1);
    drop(log);
    // The surviving prefix re-validates cleanly.
    let det = TraceLog::det_section(&path).unwrap();
    assert!(det.contains("RunStart"), "{det}");
    let reopened = TraceLog::open(&path).unwrap();
    assert!(
        reopened.recovery().is_none(),
        "recovery is needed exactly once"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_report_serializes_deterministically() {
    let mut metrics = Metrics::new();
    metrics.add("attempts.total", 7);
    metrics.observe(
        "accept.cycles",
        BucketLayout::Exponential {
            first: 32,
            buckets: 8,
        },
        210,
    );
    let report = RunReport {
        schema: RUN_REPORT_SCHEMA.to_string(),
        label: "demo/hsw".to_string(),
        total_blocks: 10,
        unique_blocks: 7,
        successful_blocks: 6,
        dedup_hits: 3,
        quantiles: metrics
            .histograms()
            .map(|(name, hist)| (name.to_string(), Quantiles::of(hist)))
            .collect(),
        metrics,
        ..RunReport::default()
    };
    let a = report.to_json().unwrap();
    let b = report.clone().to_json().unwrap();
    assert_eq!(a, b);
    assert!(a.contains("bhive-run-report/v1"), "{a}");
    assert!(a.contains("accept.cycles"), "{a}");
    // Wall-clock quantities have no field to hide in.
    assert!(!a.contains("elapsed"), "{a}");
    assert!(!a.contains("blocks_per_sec"), "{a}");
}
