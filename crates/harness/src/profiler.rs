//! The profiler: mapping stage + measurement stage + invariant filters.

use crate::config::ProfileConfig;
use crate::failure::ProfileFailure;
use crate::measurement::{Measurement, TrialSet};
use crate::monitor::monitor_observed;
use crate::obs::AttemptEvent;
use crate::retry::RetryPolicy;
use bhive_asm::{fnv1a_64, BasicBlock};
use bhive_sim::CODE_BASE;
use bhive_sim::{CodeLayout, DynInst, Machine, PerfCounters, TimingModel};
use bhive_uarch::Uarch;

/// Profiles basic blocks on one microarchitecture with one configuration.
#[derive(Debug, Clone)]
pub struct Profiler {
    uarch: &'static Uarch,
    config: ProfileConfig,
}

impl Profiler {
    /// Creates a profiler.
    pub fn new(uarch: &'static Uarch, config: ProfileConfig) -> Profiler {
        Profiler { uarch, config }
    }

    /// The target microarchitecture.
    pub fn uarch(&self) -> &'static Uarch {
        self.uarch
    }

    /// The active configuration.
    pub fn config(&self) -> &ProfileConfig {
        &self.config
    }

    /// The content address a measurement of `block` would be cached
    /// under — an FNV-1a hash of the encoded bytes, the target
    /// microarchitecture, and the config fingerprint (folded with the
    /// uarch's fitted-table fingerprint when one is active, see
    /// [`crate::cache::binding_fingerprint`]). `None` when the block
    /// does not encode (such blocks fail deterministically and are
    /// never cached). This is the key the on-disk cache, the parallel
    /// deduplicator, and the shard partitioner all agree on.
    pub fn content_key(&self, block: &bhive_asm::BasicBlock) -> Option<u64> {
        let bytes = block.encode().ok()?;
        Some(crate::cache::cache_key(
            &bytes,
            self.uarch.kind,
            crate::cache::binding_fingerprint(&self.config, self.uarch),
        ))
    }

    /// Measures the steady-state throughput of one basic block, running
    /// the full pipeline described in the crate documentation.
    ///
    /// Constructs a fresh [`Machine`] per call. For corpus runs, keep a
    /// machine alive and use [`Profiler::profile_with`] instead — the
    /// results are bit-identical and the page allocations are reused.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileFailure`] describing why the block could not be
    /// profiled (crash, unmappable address, invariant violation,
    /// unreproducible timings, misaligned accesses, ...).
    pub fn profile(&self, block: &BasicBlock) -> Result<Measurement, ProfileFailure> {
        let mut machine = Machine::new(self.uarch, 0);
        self.profile_with(block, &mut machine)
    }

    /// Like [`Profiler::profile`], but recycles a caller-owned machine
    /// instead of constructing one, so page-table and page allocations
    /// carry over between blocks.
    ///
    /// When the configuration allows retries
    /// ([`ProfileConfig::with_retries`]), a transient failure
    /// ([`ProfileFailure::is_transient`]) is re-attempted with an
    /// escalating trial count and a fresh deterministic noise seed (see
    /// [`Profiler::profile_attempt`]); permanent failures return
    /// immediately. The whole chain is a pure function of
    /// (block bytes, uarch, config) — never of which worker or in which
    /// order a block is profiled.
    ///
    /// # Panics
    ///
    /// Panics if `machine` models a different microarchitecture than this
    /// profiler.
    ///
    /// # Errors
    ///
    /// Same contract as [`Profiler::profile`]; the error is the *last*
    /// attempt's failure.
    pub fn profile_with(
        &self,
        block: &BasicBlock,
        machine: &mut Machine,
    ) -> Result<Measurement, ProfileFailure> {
        let mut attempt = 0;
        loop {
            let outcome = self.profile_attempt(block, machine, attempt);
            match &outcome {
                Err(failure) if failure.is_transient() && attempt < self.config.retry.retries => {
                    attempt += 1;
                }
                _ => return outcome,
            }
        }
    }

    /// One profiling attempt, bit-deterministic per `(block, attempt)`:
    /// the noise source is reseeded with
    /// [`RetryPolicy::seed_for`]`(fnv1a(bytes), attempt)` and the trial
    /// count escalates via [`RetryPolicy::trials_for`] (16 → 32 → 64 for
    /// the paper's base 16), so retried outcomes reproduce regardless of
    /// worker count or scheduling. Attempt 0 is exactly the pre-retry
    /// pipeline. The supervised corpus pipeline drives attempts directly
    /// so its circuit breaker can suspend escalation between them.
    ///
    /// # Panics
    ///
    /// Panics if `machine` models a different microarchitecture than this
    /// profiler.
    ///
    /// # Errors
    ///
    /// Same contract as [`Profiler::profile`].
    pub fn profile_attempt(
        &self,
        block: &BasicBlock,
        machine: &mut Machine,
        attempt: u32,
    ) -> Result<Measurement, ProfileFailure> {
        self.profile_attempt_observed(block, machine, attempt, &mut |_| {})
    }

    /// [`Profiler::profile_attempt`] with an observability sink: the
    /// attempt reports its lifecycle as [`AttemptEvent`]s — one
    /// `PageMapped` per serviced fault, a `MappingDone` when the block
    /// runs fault-free, and a `MeasureDone` per accepted trial set. The
    /// sink sees only deterministic cycle/ordinal-valued data (never the
    /// wall clock), and the measurement result is bit-identical to the
    /// unobserved call — observation must never perturb what it observes.
    pub fn profile_attempt_observed(
        &self,
        block: &BasicBlock,
        machine: &mut Machine,
        attempt: u32,
        sink: &mut dyn FnMut(AttemptEvent),
    ) -> Result<Measurement, ProfileFailure> {
        assert!(
            machine.uarch().kind == self.uarch.kind,
            "machine models {} but the profiler targets {}",
            machine.uarch().kind,
            self.uarch.kind
        );
        if block.is_empty() {
            return Err(ProfileFailure::InvalidBlock {
                message: "empty block".into(),
            });
        }
        block
            .validate()
            .map_err(|message| ProfileFailure::InvalidBlock { message })?;
        if !self.uarch.supports_avx2 && block.uses_avx2() {
            return Err(ProfileFailure::UnsupportedIsa);
        }
        // One encoding pass yields both the bytes (for the content hash)
        // and the per-instruction spans (for the code layout) — the layout
        // is never re-derived by encoding a second time.
        let (encoded, spans) = block.encode_spanned().map_err(ProfileFailure::from_asm)?;
        let block_bytes = encoded.len() as u32;
        let (lo_factor, hi_factor) = self.config.unroll.factors(block_bytes);
        if hi_factor == 0 {
            return Err(ProfileFailure::InvalidBlock {
                message: "unroll factor must be positive".into(),
            });
        }
        if hi_factor as usize * block.len() > self.config.max_dynamic_insts {
            return Err(ProfileFailure::InvalidBlock {
                message: format!(
                    "block needs {} dynamic instructions, above the watchdog cap",
                    hi_factor as usize * block.len()
                ),
            });
        }

        // Deterministic per-attempt noise seed: FNV-1a over the encoded
        // bytes, so runs reproduce across processes and compiler
        // releases (`DefaultHasher` guarantees neither), and duplicate
        // blocks measure identically wherever they appear; XORing the
        // attempt index re-rolls the noise per retry without losing any
        // of that.
        let seed = RetryPolicy::seed_for(fnv1a_64(&encoded), attempt);
        machine.recycle(seed, self.config.noise);
        machine.set_ftz_daz(self.config.disable_gradual_underflow);
        let trials = RetryPolicy::trials_for(attempt, self.config.trials);

        // ---- Mapping stage (Fig. 2 monitor), at the larger factor ----
        let mapping = monitor_observed(machine, block.insts(), hi_factor, &self.config, sink)?;
        sink(AttemptEvent::MappingDone {
            faults: mapping.faults,
            mapped_pages: mapping.mapped_pages,
        });

        // The monitor's final execution ran fault-free from exactly the
        // initial state the paper's `measure` routine re-creates (reset +
        // FTZ/DAZ + refill), so its trace *is* the measurement trace —
        // re-executing it would reproduce it bit for bit. Prepare it once;
        // both unroll factors replay it (the lo-factor trace is a prefix,
        // because execution is deterministic).
        let layout = CodeLayout::from_spans(spans, CODE_BASE);
        // The machine caches the static half of the model (uop recipes,
        // slot tables, fusion flags) alongside the block's lowering, so
        // retry escalations rebuild neither.
        let model = machine.take_timing_model(block.insts());
        machine.prepare_timing(&model, &mapping.trace, &layout);

        let result = (|| {
            // ---- Measurement stage ----
            let n_hi = mapping.trace.len();
            let n_lo = lo_factor as usize * block.len();
            let hi = self.measure(
                machine,
                &model,
                &mapping.trace,
                hi_factor,
                n_hi,
                trials,
                sink,
            )?;
            let lo = if lo_factor == hi_factor {
                hi.clone()
            } else {
                self.measure(
                    machine,
                    &model,
                    &mapping.trace,
                    lo_factor,
                    n_lo,
                    trials,
                    sink,
                )?
            };

            let throughput = if hi.unroll == lo.unroll {
                hi.accepted_cycles as f64 / f64::from(hi.unroll)
            } else {
                // Eq. 2's delta must be non-negative: more copies cannot run
                // in fewer cycles at steady state. A negative delta means the
                // pair of accepted timings is inconsistent, so reject the
                // block rather than clamp it to a fictitious 0.0 throughput.
                if hi.accepted_cycles < lo.accepted_cycles {
                    return Err(ProfileFailure::NegativeDelta {
                        lo_cycles: lo.accepted_cycles,
                        hi_cycles: hi.accepted_cycles,
                        lo_unroll: lo.unroll,
                        hi_unroll: hi.unroll,
                    });
                }
                (hi.accepted_cycles as f64 - lo.accepted_cycles as f64)
                    / f64::from(hi.unroll - lo.unroll)
            };

            let subnormal_events = hi.counters.subnormal_events;
            let misaligned_refs = hi.counters.misaligned_mem_refs;
            Ok(Measurement {
                throughput,
                lo,
                hi,
                mapped_pages: mapping.mapped_pages,
                faults_serviced: mapping.faults,
                subnormal_events,
                misaligned_refs,
                attempt,
            })
        })();
        // Hand the trace buffer and the model's static half back to the
        // machine (success or failure) so the next attempt — a retry of
        // this block, most importantly — reuses both.
        machine.put_timing_model(model);
        machine.put_trace_buffer(mapping.trace);
        result
    }

    /// Takes `trials` timed trials over the first `n_insts` instructions
    /// of the prepared mapping trace (the paper's 16 trials on a first
    /// attempt; escalated on retries) and applies the clean/identical
    /// filters.
    #[allow(clippy::too_many_arguments)]
    fn measure(
        &self,
        machine: &mut Machine,
        model: &TimingModel<'_>,
        trace: &[DynInst],
        unroll: u32,
        n_insts: usize,
        trials: u32,
        sink: &mut dyn FnMut(AttemptEvent),
    ) -> Result<TrialSet, ProfileFailure> {
        // Warm-up run, then the measured run (the paper executes the
        // unrolled block twice and times the second run), replaying the
        // prepared trace against freshly flushed caches. A schedule that
        // exhausts its cycle budget is a hard (permanent) failure, never
        // a truncated measurement.
        let timing = machine
            .simulate_double(model, n_insts)
            .map_err(ProfileFailure::from_nonconvergence)?;

        let subnormal_events = trace[..n_insts]
            .iter()
            .filter(|d| d.effects.subnormal)
            .count() as u64;

        // Misalignment filter (the MISALIGNED_MEM_REFERENCE counter).
        if self.config.drop_misaligned && timing.misaligned > 0 {
            return Err(ProfileFailure::Misaligned {
                count: timing.misaligned,
            });
        }

        // The deterministic part of the measurement violates invariants
        // (e.g. naive unrolling of a large block misses in the L1I):
        // every trial will be dirty, so reject up front — unless the
        // configuration asks to report instead.
        let mut base_counters = machine.observe(&timing);
        base_counters.context_switches = 0; // noise resampled per trial below
        base_counters.core_cycles = timing.cycles;
        base_counters.subnormal_events = subnormal_events;
        if self.config.enforce_invariants && !base_counters.is_clean() {
            return Err(ProfileFailure::DirtyCounters {
                counters: base_counters,
            });
        }

        // The observed trials (noise perturbs cycles and context
        // switches): 16 on a first attempt, escalated on retries. The
        // modal-cycle histogram lives on the stack for the common trial
        // counts; distinct values never exceed clean trials, so `trials`
        // entries always suffice.
        let mut cycles = Vec::with_capacity(trials as usize);
        let mut clean = 0u32;
        let mut stack_hist = [(0u64, 0u32); MODAL_STACK];
        let mut heap_hist: Vec<(u64, u32)> = Vec::new();
        let hist: &mut [(u64, u32)] = if trials as usize <= MODAL_STACK {
            &mut stack_hist
        } else {
            heap_hist.resize(trials as usize, (0, 0));
            &mut heap_hist
        };
        let mut hist_len = 0usize;
        for _ in 0..trials {
            let observed = machine.observe(&timing);
            cycles.push(observed.core_cycles);
            let trial_clean = observed.context_switches == 0
                && (!self.config.enforce_invariants || observed.is_clean());
            if trial_clean {
                clean += 1;
                histogram_insert(hist, &mut hist_len, observed.core_cycles);
            }
        }
        let (modal_cycles, identical) = modal_entry(&hist[..hist_len]);
        sink(AttemptEvent::MeasureDone {
            unroll,
            trials,
            clean,
            identical,
            accepted_cycles: modal_cycles,
        });
        if identical < self.config.min_clean_identical {
            return Err(ProfileFailure::Unreproducible {
                clean,
                identical,
                required: self.config.min_clean_identical,
            });
        }

        let counters = PerfCounters {
            core_cycles: modal_cycles,
            subnormal_events,
            ..base_counters
        };
        Ok(TrialSet {
            unroll,
            cycles,
            clean,
            identical,
            accepted_cycles: modal_cycles,
            counters,
        })
    }
}

/// Histogram capacity kept on the stack: covers the paper's 16 trials and
/// both retry escalations of the default budget (16 → 32 → 64). Larger
/// custom trial counts spill to a heap vec.
const MODAL_STACK: usize = 64;

/// Inserts one observation into a sorted `(cycles, count)` histogram held
/// in `hist[..len]`. The slice is sized to the trial count, so there is
/// always room for one more distinct value.
fn histogram_insert(hist: &mut [(u64, u32)], len: &mut usize, value: u64) {
    let pos = hist[..*len].partition_point(|&(c, _)| c < value);
    if pos < *len && hist[pos].0 == value {
        hist[pos].1 += 1;
        return;
    }
    hist[pos..=*len].rotate_right(1);
    hist[pos] = (value, 1);
    *len += 1;
}

/// The modal `(cycles, count)` of a sorted histogram: highest count wins;
/// on ties the ascending scan keeps the earlier — i.e. lowest — cycle
/// value. `(0, 0)` for an empty histogram.
fn modal_entry(hist: &[(u64, u32)]) -> (u64, u32) {
    let mut best = (0u64, 0u32);
    for &(cycles, count) in hist {
        if count > best.1 {
            best = (cycles, count);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnrollStrategy;
    use bhive_asm::parse_block;
    use bhive_uarch::Uarch;

    #[test]
    fn histogram_modal_prefers_count_then_lowest_cycles() {
        let mut hist = [(0u64, 0u32); 8];
        let mut len = 0usize;
        for v in [120u64, 100, 120, 110, 100, 90] {
            histogram_insert(&mut hist, &mut len, v);
        }
        assert_eq!(&hist[..len], &[(90, 1), (100, 2), (110, 1), (120, 2)]);
        // 100 and 120 both occur twice: the tie breaks to lower cycles,
        // matching the old `max_by_key((count, Reverse(cycles)))`.
        assert_eq!(modal_entry(&hist[..len]), (100, 2));
        assert_eq!(modal_entry(&hist[..0]), (0, 0));
    }

    fn hsw_profiler() -> Profiler {
        Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet())
    }

    #[test]
    fn profiles_register_only_block() {
        let block = parse_block("add rax, 1\nimul rbx, rcx").unwrap();
        let m = hsw_profiler().profile(&block).unwrap();
        assert!(m.throughput > 0.5, "throughput {}", m.throughput);
        assert_eq!(m.mapped_pages, 0);
    }

    #[test]
    fn profiles_the_updcrc_block() {
        let block = parse_block(
            "add rdi, 1\n\
             mov eax, edx\n\
             shr rdx, 8\n\
             xor al, byte ptr [rdi - 1]\n\
             movzx eax, al\n\
             xor rdx, qword ptr [8*rax + 0x41108]\n\
             cmp rdi, rcx",
        )
        .unwrap();
        let m = hsw_profiler().profile(&block).unwrap();
        assert!(m.throughput > 1.0);
        assert!(m.mapped_pages >= 2);
        assert!(m.hi.counters.is_clean());
    }

    #[test]
    fn agner_config_crashes_memory_blocks() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::agner().quiet());
        assert_eq!(profiler.profile(&block).unwrap_err().category(), "crash");
        // ...but register-only blocks still profile.
        let reg_block = parse_block("add rax, 1").unwrap();
        assert!(profiler.profile(&reg_block).is_ok());
    }

    #[test]
    fn naive_unroll_rejects_large_blocks_two_factor_accepts() {
        // ~320 instructions * ~7 bytes ≈ 2.2 KiB per copy; 100 copies
        // ≈ 220 KiB of code: the L1I (32 KiB) thrashes and the invariant
        // check rejects. The two-factor strategy shrinks the factors and
        // succeeds.
        let mut text = String::new();
        for i in 0..320 {
            text.push_str(&format!("add rax, {}\n", 0x1000 + i));
        }
        let block = parse_block(&text).unwrap();
        let naive = Profiler::new(
            Uarch::haswell(),
            ProfileConfig::with_page_mapping_only().quiet(),
        );
        assert_eq!(
            naive.profile(&block).unwrap_err().category(),
            "dirty-counters"
        );
        let full = hsw_profiler();
        let m = full.profile(&block).unwrap();
        assert!(m.hi.unroll < 100, "factors must shrink: {}", m.hi.unroll);
        // Dependent chain of 320 adds ≈ 320 cycles per iteration.
        assert!(
            (300.0..=360.0).contains(&m.throughput),
            "throughput {}",
            m.throughput
        );
    }

    #[test]
    fn misaligned_blocks_are_dropped() {
        // A load that straddles a cache line: [rbx + 0x3c] with rbx at a
        // page boundary (fill 0x12345600 is 64-byte... it is 0x...600,
        // which is line-aligned; offset 0x3c + 8 bytes crosses).
        let block = parse_block("mov rax, qword ptr [rbx + 0x3c]").unwrap();
        let err = hsw_profiler().profile(&block).unwrap_err();
        assert_eq!(err.category(), "misaligned");
        // With the filter off, the block measures (slowly) and reports.
        let lax = Profiler::new(
            Uarch::haswell(),
            ProfileConfig {
                drop_misaligned: false,
                ..ProfileConfig::bhive().quiet()
            },
        );
        let m = lax.profile(&block).unwrap();
        assert!(m.misaligned_refs > 0);
    }

    #[test]
    fn avx2_rejected_on_ivy_bridge() {
        let block = parse_block("vfmadd231ps ymm0, ymm1, ymm2").unwrap();
        let ivb = Profiler::new(Uarch::ivy_bridge(), ProfileConfig::bhive().quiet());
        assert_eq!(
            ivb.profile(&block).unwrap_err(),
            ProfileFailure::UnsupportedIsa
        );
        let hsw = hsw_profiler();
        assert!(hsw.profile(&block).is_ok());
    }

    #[test]
    fn empty_and_invalid_blocks() {
        let profiler = hsw_profiler();
        assert_eq!(
            profiler
                .profile(&BasicBlock::default())
                .unwrap_err()
                .category(),
            "invalid-block"
        );
        let bad = parse_block("jne -8\nadd rax, 1").unwrap();
        assert_eq!(
            profiler.profile(&bad).unwrap_err().category(),
            "invalid-block"
        );
    }

    #[test]
    fn zero_idiom_block_measures_fast() {
        // The paper's case study: vxorps xmm2, xmm2, xmm2 measures 0.25
        // cycles (four zero idioms rename per cycle).
        let block = parse_block("vxorps xmm2, xmm2, xmm2").unwrap();
        let m = hsw_profiler().profile(&block).unwrap();
        assert!(
            (0.2..=0.5).contains(&m.throughput),
            "zero idiom throughput {}",
            m.throughput
        );
    }

    #[test]
    fn division_block_matches_case_study_scale() {
        // Case-study block 1: xor edx,edx / div ecx / test edx,edx —
        // measured 21.62 cycles on Haswell.
        let block = parse_block("xor edx, edx\ndiv ecx\ntest edx, edx").unwrap();
        let m = hsw_profiler().profile(&block).unwrap();
        assert!(
            (18.0..=27.0).contains(&m.throughput),
            "div block throughput {}",
            m.throughput
        );
    }

    #[test]
    fn attempts_are_deterministic_and_escalate_trials() {
        let block = parse_block("add rax, 1\nimul rbx, rcx").unwrap();
        // Realistic noise: the trial vectors depend on the seed, which is
        // exactly what must reproduce per (block, attempt).
        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive());
        let mut m1 = Machine::new(Uarch::haswell(), 0);
        let mut m2 = Machine::new(Uarch::haswell(), 0);
        let a0 = profiler.profile_attempt(&block, &mut m1, 0).unwrap();
        let b0 = profiler.profile_attempt(&block, &mut m2, 0).unwrap();
        assert_eq!(a0, b0, "attempt 0 is bit-deterministic");
        assert_eq!(a0.attempt, 0);
        assert_eq!(a0.hi.cycles.len(), 16, "paper's base trial count");
        // Attempt 0 is exactly what a retry-free profile() produces.
        assert_eq!(profiler.profile(&block).unwrap(), a0);
        // Retries escalate the trial count and reseed the noise.
        let a1 = profiler.profile_attempt(&block, &mut m1, 1).unwrap();
        let b1 = profiler.profile_attempt(&block, &mut m2, 1).unwrap();
        assert_eq!(a1, b1, "attempt 1 is bit-deterministic too");
        assert_eq!(a1.attempt, 1);
        assert_eq!(a1.hi.cycles.len(), 32, "trials escalate 16 -> 32");
        let a2 = profiler.profile_attempt(&block, &mut m1, 2).unwrap();
        assert_eq!(a2.hi.cycles.len(), 64, "trials escalate 32 -> 64");
    }

    #[test]
    fn observed_attempt_is_bit_identical_and_reports_lifecycle() {
        let block = parse_block(
            "add rdi, 1\n\
             xor al, byte ptr [rdi - 1]\n\
             cmp rdi, rcx",
        )
        .unwrap();
        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive());
        let mut plain_machine = Machine::new(Uarch::haswell(), 0);
        let plain = profiler
            .profile_attempt(&block, &mut plain_machine, 0)
            .unwrap();
        let mut events = Vec::new();
        let mut machine = Machine::new(Uarch::haswell(), 0);
        let observed = profiler
            .profile_attempt_observed(&block, &mut machine, 0, &mut |e| events.push(e))
            .unwrap();
        assert_eq!(observed, plain, "observation must not perturb the result");
        let mapped = events
            .iter()
            .filter(|e| matches!(e, AttemptEvent::PageMapped { .. }))
            .count();
        assert_eq!(mapped as u32, observed.faults_serviced);
        let done: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                AttemptEvent::MappingDone {
                    faults,
                    mapped_pages,
                } => Some((*faults, *mapped_pages)),
                _ => None,
            })
            .collect();
        assert_eq!(
            done,
            vec![(observed.faults_serviced, observed.mapped_pages)],
            "exactly one MappingDone carrying the outcome's numbers"
        );
        let measures: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                AttemptEvent::MeasureDone {
                    unroll,
                    accepted_cycles,
                    ..
                } => Some((*unroll, *accepted_cycles)),
                _ => None,
            })
            .collect();
        assert!(
            measures.contains(&(observed.hi.unroll, observed.hi.accepted_cycles)),
            "the hi trial set is reported: {measures:?}"
        );
    }

    #[test]
    fn two_factor_equals_naive_for_small_blocks() {
        let block = parse_block("add rax, 1\nadd rbx, 1").unwrap();
        let full = hsw_profiler().profile(&block).unwrap();
        let naive = Profiler::new(
            Uarch::haswell(),
            ProfileConfig::bhive()
                .quiet()
                .with_unroll(UnrollStrategy::Naive { factor: 200 }),
        )
        .profile(&block)
        .unwrap();
        let diff = (full.throughput - naive.throughput).abs();
        assert!(
            diff <= 0.3,
            "strategies disagree: two-factor {} vs naive {}",
            full.throughput,
            naive.throughput
        );
    }
}
