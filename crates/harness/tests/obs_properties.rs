//! Property tests for the observability primitives: histogram quantile
//! accuracy (within one bucket width of the exact sorted quantile) and
//! metrics-merge associativity/commutativity across arbitrary worker
//! splits — the algebra the deterministic per-worker merge rests on.

use bhive_harness::{BucketLayout, Histogram, Metrics};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The exact sorted `q`-quantile under the histogram's rank rule.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[rank as usize - 1]
}

/// One metrics operation, as a worker would issue it. Names come from a
/// small fixed vocabulary so splits genuinely collide on shared keys.
#[derive(Debug, Clone)]
enum Op {
    Add(usize, u64),
    GaugeMax(usize, u64),
    Observe(usize, u64),
}

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
const LAYOUT: BucketLayout = BucketLayout::Linear {
    width: 8,
    buckets: 16,
};

fn apply(metrics: &mut Metrics, op: &Op) {
    match *op {
        Op::Add(name, v) => metrics.add(NAMES[name], v),
        Op::GaugeMax(name, v) => metrics.gauge_max(NAMES[name], v),
        Op::Observe(name, v) => metrics.observe(NAMES[name], LAYOUT, v),
    }
}

/// A seeded stream of `n` operations (proptest drives seed and length).
fn op_stream(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let name = rng.gen_range(0..NAMES.len());
            match rng.gen_range(0..3) {
                0 => Op::Add(name, rng.gen_range(0..1000)),
                1 => Op::GaugeMax(name, rng.gen_range(0..1000)),
                _ => Op::Observe(name, rng.gen_range(0..200)),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// p50/p95/p99 estimates are within one bucket width of the exact
    /// sorted quantiles for any sample set inside the covered range,
    /// and never *below* the exact value (estimates are upper bounds).
    #[test]
    fn linear_quantiles_are_within_one_bucket_width(
        values in proptest::collection::vec(0u64..=4096, 1..300),
        width in 1u64..=64,
    ) {
        let buckets = (4096 / width + 1) as usize;
        let layout = BucketLayout::Linear { width, buckets };
        let mut hist = Histogram::new(layout);
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, estimate) in [(0.50, hist.p50()), (0.95, hist.p95()), (0.99, hist.p99())] {
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                estimate >= exact,
                "q={}: estimate {} below exact {}", q, estimate, exact
            );
            prop_assert!(
                estimate - exact <= width,
                "q={}: estimate {} further than one bucket width ({}) from exact {}",
                q, estimate, width, exact
            );
        }
    }

    /// Splitting an operation stream across any number of workers and
    /// merging the per-worker registries — in any merge order, with any
    /// grouping — reproduces the registry a single sequential worker
    /// builds. This is why the pipeline's per-worker buffers merge into
    /// a thread-count-independent record.
    #[test]
    fn metrics_merge_is_split_invariant(
        seed in any::<u64>(),
        n_ops in 0usize..120,
        workers in 1usize..6,
        assignment_seed in any::<u64>(),
    ) {
        let ops = op_stream(seed, n_ops);

        // Sequential reference: one worker applies everything in order.
        let mut reference = Metrics::new();
        for op in &ops {
            apply(&mut reference, op);
        }

        // Deterministic arbitrary split: op i goes to a pseudo-random worker.
        let mut shards = vec![Metrics::new(); workers];
        let mut assign = SmallRng::seed_from_u64(assignment_seed);
        for op in &ops {
            apply(&mut shards[assign.gen_range(0..workers)], op);
        }

        // Left fold: ((s0 + s1) + s2) + ...
        let mut left = Metrics::new();
        for shard in &shards {
            left.merge(shard);
        }
        prop_assert_eq!(&left, &reference);

        // Right fold over reversed order: associativity + commutativity.
        let mut right = Metrics::new();
        for shard in shards.iter().rev() {
            let mut folded = shard.clone();
            folded.merge(&right);
            right = folded;
        }
        prop_assert_eq!(&right, &reference);
    }

    /// Histogram merge is bucket-wise addition: merging any split of the
    /// sample stream preserves totals, extrema, and every quantile.
    #[test]
    fn histogram_merge_matches_sequential_recording(
        values in proptest::collection::vec(0u64..=10_000, 1..200),
        split in 0usize..200,
    ) {
        let layout = BucketLayout::Exponential { first: 4, buckets: 12 };
        let split = split % values.len();
        let mut whole = Histogram::new(layout);
        for &v in &values {
            whole.record(v);
        }
        let (a, b) = values.split_at(split);
        let mut left = Histogram::new(layout);
        for &v in a {
            left.record(v);
        }
        let mut right = Histogram::new(layout);
        for &v in b {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.total(), whole.total());
        prop_assert_eq!(left.sum(), whole.sum());
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
        prop_assert_eq!(left.p50(), whole.p50());
        prop_assert_eq!(left.p95(), whole.p95());
        prop_assert_eq!(left.p99(), whole.p99());
    }
}
