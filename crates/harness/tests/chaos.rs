//! Chaos suite: every fault class the supervised pipeline claims to
//! contain is injected deterministically and shown to be contained.
//!
//! Fault classes (see `bhive_harness::chaos`):
//! * a panic mid-block — caught, the worker's machine quarantined, the
//!   block recovered on retry when a budget exists;
//! * a transient measurement failure — retried with escalating trials,
//!   reported cleanly when the budget is exhausted, never cached;
//! * a cache-write I/O error — degrades the run to cache-off instead of
//!   killing it;
//! * an environment-wide transient storm — trips the circuit breaker,
//!   which suspends retries and flags the run.
//!
//! Plus the supervision determinism claims: outcomes (including *which
//! attempt* succeeded and whether the breaker tripped) are bit-identical
//! at any thread count and cold or warm cache, and on a ≥1k-block corpus
//! under degraded-machine noise more than 10% of transiently failing
//! blocks recover within `--retries 3`.

use bhive_asm::{parse_block, BasicBlock};
use bhive_corpus::{Corpus, Scale};
use bhive_harness::{
    profile_corpus, profile_corpus_supervised, BreakerConfig, ChaosInjector, FaultPlan,
    MeasurementCache, ObsConfig, ProfileConfig, Profiler, Supervision, TraceEvent,
};
use bhive_sim::{Machine, NoiseConfig};
use bhive_uarch::{Uarch, UarchKind};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bhive-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `n` distinct, well-behaved blocks (distinct immediates → distinct
/// encodings → unique ids 0..n in order).
fn simple_blocks(n: usize) -> Vec<BasicBlock> {
    (0..n)
        .map(|i| parse_block(&format!("add rax, {}\nimul rbx, rcx", i + 1)).unwrap())
        .collect()
}

/// The measurement noise of a degraded machine: `mult` times the
/// realistic context-switch and interrupt rates.
fn degraded_noise(mult: f64) -> NoiseConfig {
    let base = NoiseConfig::realistic();
    NoiseConfig {
        ctx_switch_per_kcycle: base.ctx_switch_per_kcycle * mult,
        interrupt_per_kcycle: base.interrupt_per_kcycle * mult,
        ..base
    }
}

fn supervise(chaos: ChaosInjector) -> Supervision {
    Supervision::with_chaos(chaos)
}

#[test]
fn injected_panic_is_contained_and_machine_quarantined() {
    let blocks = simple_blocks(8);
    let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet());
    let baseline = profile_corpus(&profiler, &blocks, 1);

    let chaos = ChaosInjector::new(FaultPlan::new().panic_at(3, 0));
    let report = profile_corpus_supervised(&profiler, &blocks, 1, None, &supervise(chaos));

    // The victim fails with a categorized panic; nothing else is touched.
    match &report.results[3] {
        Err(f) => {
            assert_eq!(f.category(), "panic");
            assert!(f.to_string().contains("chaos"), "{f}");
        }
        other => panic!("victim must fail with the injected panic: {other:?}"),
    }
    for idx in (0..8).filter(|&i| i != 3) {
        assert_eq!(
            report.results[idx], baseline.results[idx],
            "block {idx} measured after the panic (same worker, one thread) \
             must be bit-identical to the no-panic run"
        );
    }
    assert_eq!(report.stats.panics, 1);
    assert_eq!(report.stats.quarantined(), 1, "machine rebuilt after panic");
    assert_eq!(report.stats.chaos.unwrap().injected_panics, 1);
    assert_eq!(report.stats.failures["panic"], 1);
}

#[test]
fn injected_panic_recovers_on_retry() {
    let blocks = simple_blocks(6);
    let config = ProfileConfig::bhive().with_retries(1);
    let profiler = Profiler::new(Uarch::haswell(), config);

    let chaos = ChaosInjector::new(FaultPlan::new().panic_at(2, 0));
    let report = profile_corpus_supervised(&profiler, &blocks, 2, None, &supervise(chaos));

    let recovered = report.results[2].as_ref().expect("victim must recover");
    assert_eq!(recovered.attempt, 1, "recovered on the first retry");
    assert!(recovered.recovered_on_retry());
    // The recovered measurement is exactly what a direct attempt-1
    // profile produces: recovery does not invent numbers.
    let mut machine = Machine::new(profiler.uarch(), 0);
    let reference = profiler
        .profile_attempt(&blocks[2], &mut machine, 1)
        .unwrap();
    assert_eq!(recovered, &reference);

    assert_eq!(report.stats.panics, 1);
    assert_eq!(report.stats.quarantined(), 1);
    assert_eq!(report.stats.retried_blocks, 1);
    assert_eq!(report.stats.recovered_blocks, 1);
    assert_eq!(report.stats.retry_attempts, 1);
    assert_eq!(report.successes(), 6, "nothing lost to the panic");
    let text = report.stats.to_string();
    assert!(text.contains("1 block recovered on retry"), "{text}");
}

#[test]
fn retry_exhaustion_reports_cleanly_and_is_not_cached() {
    let dir = temp_dir("exhaust");
    let blocks = simple_blocks(5);
    let config = ProfileConfig::bhive().quiet().with_retries(2);
    let profiler = Profiler::new(Uarch::haswell(), config.clone());

    // Attempts 0, 1, and 2 all forced transient: the budget is exhausted.
    let chaos = ChaosInjector::new(FaultPlan::new().transient_through(1, 2));
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let report =
        profile_corpus_supervised(&profiler, &blocks, 2, Some(&mut cache), &supervise(chaos));
    drop(cache);

    match &report.results[1] {
        Err(f) => {
            assert_eq!(f.category(), "unreproducible");
            assert!(f.is_transient());
        }
        other => panic!("exhausted victim must report its last failure: {other:?}"),
    }
    assert_eq!(report.stats.retried_blocks, 1);
    assert_eq!(report.stats.recovered_blocks, 0);
    assert_eq!(report.stats.retry_attempts, 2, "full budget spent");
    assert_eq!(report.successes(), 4);
    assert_eq!(report.stats.chaos.unwrap().forced_transients, 3);

    // The transient failure was not persisted: a later (chaos-free) run
    // re-attempts exactly that block and succeeds.
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    assert_eq!(cache.open_report().loaded, 4, "only the successes on disk");
    let rerun = profile_corpus_supervised(
        &profiler,
        &blocks,
        2,
        Some(&mut cache),
        &Supervision::default(),
    );
    let disk = rerun.stats.cache.unwrap();
    assert_eq!(disk.hits, 4);
    assert_eq!(disk.misses, 1, "the exhausted block is retried on rerun");
    assert_eq!(rerun.successes(), 5, "and succeeds without the fault plan");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_write_error_degrades_run_to_cache_off() {
    let dir = temp_dir("degrade");
    let blocks = simple_blocks(6);
    let config = ProfileConfig::bhive().quiet();
    let profiler = Profiler::new(Uarch::haswell(), config.clone());
    let baseline = profile_corpus(&profiler, &blocks, 2);

    // The very first cache write fails with an injected I/O error.
    let chaos = ChaosInjector::new(FaultPlan::new().cache_write_error_at(0));
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let report =
        profile_corpus_supervised(&profiler, &blocks, 2, Some(&mut cache), &supervise(chaos));
    drop(cache);

    // The run survives, complete and bit-identical to an uncached run.
    assert_eq!(report.results, baseline.results);
    assert_eq!(report.successes(), 6);
    let disk = report.stats.cache.expect("run started with a cache");
    assert_eq!(disk.write_errors, 1);
    assert!(disk.degraded, "first write error degrades to cache-off");
    assert_eq!(report.stats.chaos.unwrap().cache_write_errors, 1);
    let text = report.stats.to_string();
    assert!(text.contains("DEGRADED to cache-off"), "{text}");

    // Nothing was written after the degrade: the next run starts cold,
    // measures everything, and the cache becomes healthy again.
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    assert_eq!(cache.open_report().loaded, 0, "degraded run wrote nothing");
    let rerun = profile_corpus_supervised(
        &profiler,
        &blocks,
        2,
        Some(&mut cache),
        &Supervision::default(),
    );
    let disk = rerun.stats.cache.unwrap();
    assert_eq!(disk.misses, 6);
    assert!(!disk.degraded);
    assert_eq!(rerun.results, baseline.results);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_storm_trips_breaker_and_suspends_retries() {
    let blocks = simple_blocks(24);
    let config = ProfileConfig::bhive().quiet().with_retries(3);
    let profiler = Profiler::new(Uarch::haswell(), config);

    // The first 16 unique blocks are forced transient on attempt 0 — a
    // storm no per-block retry can fix.
    let mut plan = FaultPlan::new();
    for block in 0..16 {
        plan = plan.transient_at(block, 0);
    }
    let breaker = BreakerConfig {
        window: 8,
        min_samples: 8,
        threshold: 0.75,
    };

    let mut trips = Vec::new();
    for threads in [1, 4] {
        let supervision = Supervision {
            breaker,
            chaos: Some(ChaosInjector::new(plan.clone())),
            obs: ObsConfig::on(),
            ..Supervision::default()
        };
        let report = profile_corpus_supervised(&profiler, &blocks, threads, None, &supervision);
        let trip = report
            .stats
            .breaker
            .expect("an 8/8 transient window must trip the breaker");
        // The trip appears in the trace exactly once, with the same
        // submission ordinal the stats report.
        let obs = report.stats.obs.as_ref().expect("observed run");
        let trip_events: Vec<_> = obs
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BreakerTrip { .. }))
            .collect();
        assert_eq!(trip_events.len(), 1, "the latched breaker trips once");
        match trip_events[0] {
            TraceEvent::BreakerTrip {
                at_block,
                rate,
                window,
            } => {
                assert_eq!(*at_block, trip.at_block);
                assert_eq!(*rate, trip.rate);
                assert_eq!(*window, trip.window);
            }
            other => panic!("expected BreakerTrip, got {other:?}"),
        }
        assert_eq!(trip.at_block, 7, "trips the moment min_samples is met");
        assert!(trip.rate >= 0.75);
        assert_eq!(
            report.stats.retried_blocks, 0,
            "no retry budget burned after the trip"
        );
        assert_eq!(report.stats.retry_attempts, 0);
        assert_eq!(report.stats.failures["unreproducible"], 16);
        assert_eq!(report.successes(), 8, "untouched blocks still profile");
        assert!(report.stats.is_unhealthy());
        let text = report.stats.to_string();
        assert!(text.contains("BREAKER TRIPPED"), "{text}");
        trips.push(trip);
    }
    assert_eq!(trips[0], trips[1], "trip is thread-count independent");
}

#[test]
fn supervised_outcomes_are_thread_and_cache_deterministic() {
    let dir = temp_dir("determinism");
    let mut blocks = simple_blocks(40);
    // Sprinkle duplicates so dedup fan-out is exercised too.
    blocks.push(blocks[5].clone());
    blocks.push(blocks[0].clone());
    blocks.push(blocks[17].clone());
    let config = ProfileConfig {
        noise: degraded_noise(25.0),
        ..ProfileConfig::bhive()
    }
    .with_retries(2);
    let profiler = Profiler::new(Uarch::haswell(), config.clone());
    // A seeded storm of panics and transients across the corpus.
    let plan = FaultPlan::seeded(0xC0FFEE, 40, 0.1, 0.3);
    assert!(!plan.is_empty(), "the seeded plan must inject something");

    let run = |threads: usize, cache: Option<&mut MeasurementCache>| {
        let supervision = Supervision::with_chaos(ChaosInjector::new(plan.clone()));
        profile_corpus_supervised(&profiler, &blocks, threads, cache, &supervision)
    };

    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let serial_cold = run(1, Some(&mut cache));
    drop(cache);
    let parallel_uncached = run(4, None);
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let parallel_warm = run(4, Some(&mut cache));
    drop(cache);

    // Bit-identical outcomes — including `Measurement::attempt`, which
    // participates in equality — across 1 vs 4 threads and cold vs warm.
    assert_eq!(serial_cold.results, parallel_uncached.results);
    assert_eq!(serial_cold.results, parallel_warm.results);
    assert_eq!(
        serial_cold.stats.breaker, parallel_uncached.stats.breaker,
        "breaker verdict is schedule-independent"
    );
    // The plan recovered at least one block via retry, and which-attempt
    // bookkeeping agrees between the runs that measured.
    assert!(serial_cold.stats.recovered_blocks > 0);
    assert_eq!(
        serial_cold.stats.recovered_blocks,
        parallel_uncached.stats.recovered_blocks
    );
    assert_eq!(
        serial_cold.stats.retry_attempts,
        parallel_uncached.stats.retry_attempts
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every fault the plan injects leaves exactly one matching trace
/// event with the right `(unique, attempt)` (or write ordinal): panics
/// quarantine the machine and fail with category `panic`, forced
/// transients fail with class `transient`, the retry phase escalates
/// each victim exactly once with the doubled trial count, and the
/// injected cache-write error appears in the wall section flagged
/// `injected`.
#[test]
fn every_injected_fault_appears_in_the_trace_exactly_once() {
    let dir = temp_dir("obs");
    let blocks = simple_blocks(10);
    let config = ProfileConfig::bhive().quiet().with_retries(1);
    let profiler = Profiler::new(Uarch::haswell(), config.clone());
    let plan = FaultPlan::new()
        .panic_at(3, 0)
        .transient_at(1, 0)
        .cache_write_error_at(0);
    let supervision = Supervision {
        chaos: Some(ChaosInjector::new(plan.clone())),
        obs: ObsConfig::on(),
        ..Supervision::default()
    };
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let report = profile_corpus_supervised(&profiler, &blocks, 2, Some(&mut cache), &supervision);
    drop(cache);
    let obs = report.stats.obs.as_ref().expect("observed run");
    assert_eq!(obs.dropped_events, 0, "ring must not overflow");

    for (unique, attempt) in plan.panic_sites() {
        let quarantines = obs
            .events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Quarantine { unique: u, attempt: a }
                    if *u == unique && *a == attempt)
            })
            .count();
        assert_eq!(
            quarantines, 1,
            "one quarantine per injected panic at ({unique}, {attempt})"
        );
        let failures = obs
            .events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::AttemptFailed { unique: u, attempt: a, category, .. }
                    if *u == unique && *a == attempt && category == "panic")
            })
            .count();
        assert_eq!(failures, 1, "one panic failure at ({unique}, {attempt})");
    }
    for (unique, attempt) in plan.transient_sites() {
        let failures = obs
            .events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::AttemptFailed { unique: u, attempt: a, class, category }
                    if *u == unique && *a == attempt
                        && class == "transient" && category == "unreproducible")
            })
            .count();
        assert_eq!(
            failures, 1,
            "one transient failure at ({unique}, {attempt})"
        );
    }
    // Both victims failed transiently on attempt 0, so each enters the
    // retry phase exactly once, with the trial count doubled.
    for unique in [1usize, 3] {
        let escalations: Vec<(u32, u32)> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RetryEscalation {
                    unique: u,
                    attempt,
                    trials,
                } if *u == unique => Some((*attempt, *trials)),
                _ => None,
            })
            .collect();
        assert_eq!(
            escalations,
            vec![(1, config.trials * 2)],
            "block {unique} escalates once to doubled trials"
        );
    }
    for ordinal in plan.cache_error_sites() {
        let write_errors = obs
            .wall_events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::CacheWriteError { ordinal: o, injected, .. }
                    if *o == ordinal && *injected)
            })
            .count();
        assert_eq!(
            write_errors, 1,
            "one injected cache-write error at ordinal {ordinal}"
        );
    }
    // Both victims recovered on retry — fault containment end to end.
    assert_eq!(report.successes(), 10);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance bar (and the tier-1 noisy smoke): on a ≥1k-block
/// corpus measured under degraded-machine noise, retries recover more
/// than 10% of the blocks that fail as unreproducible single-shot, the
/// recovered count is surfaced in [`bhive_harness::ProfileStats`], and
/// the breaker stays quiet (the noise is bad, not hopeless).
#[test]
fn noisy_corpus_recovery_exceeds_ten_percent() {
    let corpus = Corpus::generate(Scale::PerApp(110), 1234);
    let blocks = corpus.basic_blocks();
    assert!(
        blocks.len() >= 1000,
        "need ≥1k blocks, got {}",
        blocks.len()
    );
    let noisy = ProfileConfig {
        noise: degraded_noise(25.0),
        ..ProfileConfig::bhive()
    };

    let single_shot = Profiler::new(Uarch::haswell(), noisy.clone());
    let baseline = profile_corpus(&single_shot, &blocks, 0);
    let unreproducible = *baseline
        .failure_breakdown()
        .get("unreproducible")
        .expect("degraded noise must produce transient failures");
    assert!(unreproducible > 0);

    let retrying = Profiler::new(Uarch::haswell(), noisy.with_retries(3));
    let supervised = profile_corpus(&retrying, &blocks, 0);
    let stats = &supervised.stats;
    assert!(stats.breaker.is_none(), "degraded ≠ hopeless: no trip");
    assert!(
        stats.retried_blocks > 0,
        "transient failures must enter retry escalation"
    );
    assert!(
        stats.recovered_blocks as f64 > 0.10 * stats.retried_blocks as f64,
        "recovered {}/{} retried — acceptance demands >10%",
        stats.recovered_blocks,
        stats.retried_blocks
    );
    assert!(
        supervised.successes() as f64 >= baseline.successes() as f64 + 0.10 * unreproducible as f64,
        "recovery must show up in end-to-end success counts: {} vs {}",
        supervised.successes(),
        baseline.successes()
    );
    let text = stats.to_string();
    assert!(text.contains("recovered on retry"), "{text}");
}
