//! Algebraic laws for cross-shard stats merging.
//!
//! The sharded supervisor folds per-worker [`ProfileStats`] together in
//! whatever order shard reports happen to be read, so the merge must be
//! commutative and associative — otherwise the summary depends on which
//! worker finished first, which is exactly the wall-clock dependence
//! the rest of the pipeline is built to exclude. These tests check the
//! laws on synthesized stats (proptest drives the seeds; the structures
//! come from a seeded generator, the repo's idiom for the minimal
//! vendored proptest) and split-invariance against a real
//! single-process run.

use bhive_harness::{
    cache_key, shard_of, BreakerTrip, CacheStats, ChaosStats, ProfileConfig, ProfileStats,
    Profiler, WorkerStats,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

const CATEGORIES: [&str; 4] = ["crash", "misaligned", "unreproducible", "dirty-counters"];

/// A synthesized stats record. Every field is exercised, including the
/// optional ones (present ~half the time so merges hit all four
/// `Some`/`None` combinations), and `blocks_per_sec` is set to garbage
/// on purpose: the merge must *recompute* it from merged totals, never
/// trust or average the stored value.
fn arb_stats(seed: u64) -> ProfileStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    let workers = (0..rng.gen_range(0..6))
        .map(|_| WorkerStats {
            profiled: rng.gen_range(0..500),
            busy: Duration::from_micros(rng.gen_range(0..5_000_000)),
            span: Duration::from_micros(rng.gen_range(1..10_000_000)),
            panics: rng.gen_range(0..3),
            quarantined: rng.gen_range(0..3),
        })
        .collect();
    let mut failures = BTreeMap::new();
    for _ in 0..rng.gen_range(0..4) {
        *failures
            .entry(CATEGORIES[rng.gen_range(0..CATEGORIES.len())])
            .or_insert(0) += rng.gen_range(1usize..20);
    }
    ProfileStats {
        total_blocks: rng.gen_range(0..100_000),
        unique_blocks: rng.gen_range(0..100_000),
        successful_blocks: rng.gen_range(0..100_000),
        cache_hits: rng.gen_range(0..10_000),
        threads: rng.gen_range(0..64),
        elapsed: Duration::from_micros(rng.gen_range(0..60_000_000)),
        blocks_per_sec: 123.456,
        panics: rng.gen_range(0..10),
        retried_blocks: rng.gen_range(0..1000),
        recovered_blocks: rng.gen_range(0..1000),
        retry_attempts: rng.gen_range(0..3000),
        breaker: rng.gen_bool(0.5).then(|| BreakerTrip {
            at_block: rng.gen_range(0..10_000),
            rate: rng.gen_range(0..=100) as f64 / 100.0,
            window: rng.gen_range(1..64),
        }),
        chaos: rng.gen_bool(0.5).then(|| ChaosStats {
            injected_panics: rng.gen_range(0..50),
            forced_transients: rng.gen_range(0..50),
            cache_write_errors: rng.gen_range(0..50),
            dropped_connections: rng.gen_range(0..50),
            slow_loris_stalls: rng.gen_range(0..50),
            burst_requests: rng.gen_range(0..50),
        }),
        interrupted: false,
        failures,
        workers,
        cache: rng.gen_bool(0.5).then(|| CacheStats {
            hits: rng.gen_range(0..1000),
            misses: rng.gen_range(0..1000),
            stale_evictions: rng.gen_range(0..100),
            write_errors: rng.gen_range(0..10),
            degraded: rng.gen_bool(0.5),
        }),
        obs: None,
    }
}

fn merged(a: &ProfileStats, b: &ProfileStats) -> ProfileStats {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(sa in any::<u64>(), sb in any::<u64>()) {
        let (a, b) = (arb_stats(sa), arb_stats(sb));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>()) {
        let (a, b, c) = (arb_stats(sa), arb_stats(sb), arb_stats(sc));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn merged_ratios_derive_from_totals(sa in any::<u64>(), sb in any::<u64>()) {
        let (a, b) = (arb_stats(sa), arb_stats(sb));
        let out = merged(&a, &b);
        // Throughput is recomputed from the merged totals (the stored
        // 123.456 garbage must never leak through or be averaged).
        let elapsed = out.elapsed.as_secs_f64();
        let expect = if elapsed > 0.0 { out.total_blocks as f64 / elapsed } else { 0.0 };
        prop_assert_eq!(out.blocks_per_sec, expect);
        // Utilization divides by each worker's own span, so a worker's
        // ratio survives merging someone else's stats in.
        let before: Vec<f64> = a.worker_utilization();
        let after = out.worker_utilization();
        for (w, util) in a.workers.iter().zip(&before) {
            prop_assert!(
                after.iter().any(|u| u == util),
                "worker {:?} utilization {} lost by merge: {:?}", w, util, after
            );
        }
        // Merged counts really add.
        prop_assert_eq!(out.total_blocks, a.total_blocks + b.total_blocks);
        prop_assert_eq!(out.elapsed, a.elapsed.max(b.elapsed));
        prop_assert_eq!(out.workers.len(), a.workers.len() + b.workers.len());
    }
}

/// Split-invariance against a real run: partition a corpus by content
/// key exactly as the sharder does, profile each part independently,
/// and the merged counters must equal the single-process run's on every
/// count-valued field. (Wall-clock fields — elapsed, throughput, worker
/// rows — legitimately differ between one run and two.)
#[test]
fn split_by_shard_matches_single_run_counts() {
    let profiler = Profiler::new(
        bhive_uarch::Uarch::haswell(),
        ProfileConfig::bhive().quiet(),
    );
    let uarch = profiler.uarch().kind;
    let fp = profiler.config().fingerprint();
    let mut blocks = Vec::new();
    for i in 0..20 {
        blocks.push(bhive_asm::parse_block(&format!("add rax, {}\nimul rbx, rcx", i + 1)).unwrap());
    }
    // Duplicates and a deterministic failure ride along: dedup hits and
    // failure counts must survive the split.
    blocks.push(blocks[3].clone());
    blocks.push(blocks[7].clone());
    blocks.push(bhive_asm::parse_block("mov rax, qword ptr [rbx + 0x3c]").unwrap());

    let whole = bhive_harness::profile_corpus(&profiler, &blocks, 2).stats;

    let part = |want: u32| -> Vec<bhive_asm::BasicBlock> {
        blocks
            .iter()
            .filter(|b| {
                let key = cache_key(&b.encode().unwrap(), uarch, fp);
                shard_of(key, 2) == want
            })
            .cloned()
            .collect()
    };
    let left = part(0);
    let right = part(1);
    assert!(!left.is_empty() && !right.is_empty(), "degenerate split");
    assert_eq!(left.len() + right.len(), blocks.len());

    let mut split = bhive_harness::profile_corpus(&profiler, &left, 2).stats;
    split.merge(&bhive_harness::profile_corpus(&profiler, &right, 1).stats);

    assert_eq!(split.total_blocks, whole.total_blocks);
    assert_eq!(split.unique_blocks, whole.unique_blocks);
    assert_eq!(split.successful_blocks, whole.successful_blocks);
    assert_eq!(
        split.cache_hits, whole.cache_hits,
        "duplicates share a key, so they share a shard and dedup identically"
    );
    assert_eq!(split.failures, whole.failures);
    assert_eq!(split.panics, whole.panics);
    assert_eq!(split.retried_blocks, whole.retried_blocks);
}
