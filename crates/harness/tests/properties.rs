//! Property tests for the measurement framework over generated blocks.

use bhive_corpus::{generate_block, Application};
use bhive_harness::{
    profile_corpus, profile_corpus_supervised, ChaosInjector, FaultPlan, ProfileConfig, Profiler,
    Supervision, UnrollStrategy,
};
use bhive_uarch::Uarch;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Profiling any generated block either succeeds with a positive
    /// throughput and clean counters, or fails with a categorized reason —
    /// never a panic, never a nonsensical measurement.
    #[test]
    fn profiling_is_total(seed in any::<u64>(), app_idx in 0usize..12) {
        let app = Application::ALL[app_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(app, &mut rng);
        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet());
        match profiler.profile(&block) {
            Ok(m) => {
                prop_assert!(m.throughput >= 0.0 && m.throughput.is_finite());
                prop_assert!(m.hi.counters.is_clean(), "accepted measurement must be clean");
                prop_assert!(m.hi.unroll >= m.lo.unroll);
                prop_assert!(m.hi.identical >= 8, "paper's 8-identical rule");
                // Steady-state inverse throughput can't beat the rename
                // width by much (eliminated uops aside).
                let lower = block.len() as f64 / 16.0;
                prop_assert!(m.throughput + 1e-9 >= lower.min(0.25), "{}", m.throughput);
            }
            Err(failure) => {
                // Categorized failure with a printable message.
                prop_assert!(!failure.category().is_empty());
                let _ = failure.to_string();
            }
        }
    }

    /// Profiling is deterministic, including the injected OS noise
    /// (the noise seed derives from the block).
    #[test]
    fn profiling_is_deterministic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(Application::Sqlite, &mut rng);
        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive());
        match (profiler.profile(&block), profiler.profile(&block)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.throughput, b.throughput);
                prop_assert_eq!(a.hi.cycles, b.hi.cycles, "trial-by-trial identical");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.category(), b.category()),
            other => prop_assert!(false, "non-deterministic outcome: {other:?}"),
        }
    }

    /// The two-unroll-factor estimate agrees with a large naive unroll for
    /// blocks small enough that naive unrolling is itself sound — the
    /// correctness claim behind the paper's Eq. 2.
    #[test]
    fn two_factor_agrees_with_naive_on_small_blocks(seed in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(Application::Gzip, &mut rng);
        if block.encoded_len().unwrap_or(usize::MAX) > 120 {
            return Ok(()); // only small blocks qualify
        }
        let two_factor = Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet());
        let naive = Profiler::new(
            Uarch::haswell(),
            ProfileConfig::bhive()
                .quiet()
                .with_unroll(UnrollStrategy::Naive { factor: 200 }),
        );
        if let (Ok(a), Ok(b)) = (two_factor.profile(&block), naive.profile(&block)) {
            let diff = (a.throughput - b.throughput).abs();
            let scale = b.throughput.max(1.0);
            prop_assert!(
                diff / scale < 0.15,
                "two-factor {} vs naive {} on\n{block}",
                a.throughput,
                b.throughput
            );
        }
    }

    /// The deduplicating, machine-reusing parallel pipeline agrees with
    /// uncached serial profiling measurement-for-measurement, on random
    /// corpora with random duplication and ordering and at a random
    /// thread count.
    #[test]
    fn dedup_parallel_agrees_with_uncached_serial(
        seed in any::<u64>(),
        n_unique in 1usize..6,
        threads in 1usize..5,
        dup_picks in proptest::collection::vec(proptest::num::u64::ANY, 0..8),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let apps = [Application::Gzip, Application::Sqlite, Application::OpenBlas];
        let unique: Vec<_> = (0..n_unique)
            .map(|i| generate_block(apps[i % apps.len()], &mut rng))
            .collect();
        // Duplicate and interleave: every unique block once, then extra
        // copies at positions chosen by the picks.
        let mut blocks = unique.clone();
        for (offset, pick) in dup_picks.iter().enumerate() {
            let which = (*pick as usize) % unique.len();
            let at = (offset * 3) % (blocks.len() + 1);
            blocks.insert(at, unique[which].clone());
        }
        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet());
        let report = profile_corpus(&profiler, &blocks, threads);
        prop_assert_eq!(report.stats.total_blocks, blocks.len());
        prop_assert_eq!(
            report.stats.cache_hits,
            blocks.len() - report.stats.unique_blocks
        );
        for (idx, block) in blocks.iter().enumerate() {
            let serial = profiler.profile(block);
            prop_assert_eq!(&report.results[idx], &serial, "block {}", idx);
        }
    }

    /// A poisoned machine stays contained: chaos-inject a panic into one
    /// unique block's first attempt on a random corpus at a random thread
    /// count, and every *other* block — including ones the panicking
    /// worker measures afterwards on its rebuilt machine — is bit-identical
    /// to a serial no-panic run. The victim fails as a categorized panic
    /// (no retry budget here), and exactly one machine is quarantined.
    #[test]
    fn injected_panic_never_poisons_other_blocks(
        seed in any::<u64>(),
        n_unique in 2usize..6,
        victim_pick in any::<u64>(),
        threads in 1usize..5,
        dup_picks in proptest::collection::vec(proptest::num::u64::ANY, 0..6),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let apps = [Application::Gzip, Application::Sqlite, Application::OpenBlas];
        let unique: Vec<_> = (0..n_unique)
            .map(|i| generate_block(apps[i % apps.len()], &mut rng))
            .collect();
        // Unique blocks first, duplicates appended after, so the unique id
        // of `blocks[i]` for i < n_unique is exactly i (first-occurrence
        // order) and the victim's fault site is addressable.
        let mut blocks = unique.clone();
        for pick in &dup_picks {
            blocks.push(unique[(*pick as usize) % unique.len()].clone());
        }
        let victim = (victim_pick as usize) % n_unique;
        let victim_bytes = unique[victim].encode().ok();

        let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet());
        let chaos = ChaosInjector::new(FaultPlan::new().panic_at(victim, 0));
        let supervision = Supervision::with_chaos(chaos);
        let report = profile_corpus_supervised(&profiler, &blocks, threads, None, &supervision);

        prop_assert_eq!(report.stats.panics, 1);
        prop_assert_eq!(report.stats.quarantined(), 1);
        for (idx, block) in blocks.iter().enumerate() {
            let is_victim = victim_bytes.is_some() && block.encode().ok() == victim_bytes;
            if is_victim {
                match &report.results[idx] {
                    Err(f) => prop_assert_eq!(f.category(), "panic"),
                    Ok(m) => prop_assert!(false, "victim must fail, measured {}", m.throughput),
                }
            } else {
                let serial = profiler.profile(block);
                prop_assert_eq!(&report.results[idx], &serial, "block {}", idx);
            }
        }
    }
}

#[test]
fn empty_corpus_spawns_no_worker_threads() {
    let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive().quiet());
    let report = profile_corpus(&profiler, &[], 8);
    assert!(report.results.is_empty());
    assert_eq!(report.stats.threads, 0);
    assert!(report.stats.workers.is_empty());
}
