//! Observability determinism: the deterministic trace section and the
//! run report are byte-identical at any thread count, observation never
//! perturbs a measurement (or a cache byte), and a torn trace tail is
//! truncated at open and noted — never poisoning a resumed run.

use bhive_corpus::{Corpus, Scale};
use bhive_harness::{
    profile_corpus_supervised, MeasurementCache, ObsConfig, ProfileConfig, Profiler, Supervision,
    TraceEvent, TraceLog,
};
use bhive_uarch::{Uarch, UarchKind};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bhive-obsdet-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole determinism claim on a ≥1k-block corpus: profiling the
/// same corpus at 1, 4, and 8 threads with observability on yields
/// byte-identical deterministic trace sections, byte-identical
/// `run_report.json` payloads, and bit-identical measurements.
#[test]
fn det_trace_and_report_are_bit_identical_across_thread_counts() {
    let corpus = Corpus::generate(Scale::PerApp(110), 1234);
    let blocks = corpus.basic_blocks();
    assert!(
        blocks.len() >= 1000,
        "need ≥1k blocks, got {}",
        blocks.len()
    );
    let config = ProfileConfig::bhive().quiet().with_retries(1);
    let profiler = Profiler::new(Uarch::haswell(), config);

    let mut sections = Vec::new();
    let mut reports = Vec::new();
    let mut results = Vec::new();
    for threads in [1usize, 4, 8] {
        let supervision = Supervision::with_obs(ObsConfig::on());
        let report = profile_corpus_supervised(&profiler, &blocks, threads, None, &supervision);
        let obs = report.stats.obs.as_ref().expect("observed run");
        assert_eq!(
            obs.dropped_events, 0,
            "ring must not overflow at {threads} threads"
        );
        let dir = temp_dir("threads");
        let path = dir.join("trace.jsonl");
        let mut log = TraceLog::open(&path).unwrap();
        log.append_run("Main/hsw", obs).unwrap();
        drop(log);
        sections.push(TraceLog::det_section(&path).unwrap());
        reports.push(
            report
                .stats
                .run_report("Main/hsw")
                .expect("observed run has a report")
                .to_json()
                .unwrap(),
        );
        results.push(report.results);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        sections[0].lines().count() > blocks.len(),
        "the det section traces every block's lifecycle"
    );
    assert_eq!(sections[0], sections[1], "det section: 1 vs 4 threads");
    assert_eq!(sections[0], sections[2], "det section: 1 vs 8 threads");
    assert_eq!(reports[0], reports[1], "run report: 1 vs 4 threads");
    assert_eq!(reports[0], reports[2], "run report: 1 vs 8 threads");
    assert_eq!(results[0], results[1], "measurements: 1 vs 4 threads");
    assert_eq!(results[0], results[2], "measurements: 1 vs 8 threads");
}

/// Observation must never change what a measurement is: results and the
/// measurement cache's on-disk bytes are bit-identical obs-on vs obs-off.
/// (One worker thread, because cache records land in completion order —
/// reproducible bytes require a deterministic completion order.)
#[test]
fn observation_never_perturbs_measurements_or_cache_bytes() {
    let corpus = Corpus::generate(Scale::PerApp(15), 77);
    let blocks = corpus.basic_blocks();
    let config = ProfileConfig::bhive().quiet().with_retries(1);
    let profiler = Profiler::new(Uarch::haswell(), config.clone());

    let run = |dir: &PathBuf, supervision: &Supervision| {
        let mut cache = MeasurementCache::open(dir, UarchKind::Haswell, &config).unwrap();
        profile_corpus_supervised(&profiler, &blocks, 1, Some(&mut cache), supervision)
    };
    let dir_off = temp_dir("off");
    let dir_on = temp_dir("on");
    let plain = run(&dir_off, &Supervision::default());
    let observed = run(&dir_on, &Supervision::with_obs(ObsConfig::on()));

    assert!(plain.stats.obs.is_none());
    assert!(observed.stats.obs.is_some());
    assert_eq!(plain.results, observed.results, "results are bit-identical");
    let file = format!("measurements-{}.jsonl", UarchKind::Haswell.short_name());
    let bytes_off = std::fs::read(dir_off.join(&file)).unwrap();
    let bytes_on = std::fs::read(dir_on.join(&file)).unwrap();
    assert!(!bytes_off.is_empty());
    assert_eq!(bytes_off, bytes_on, "cache bytes are bit-identical");
    let _ = std::fs::remove_dir_all(&dir_off);
    let _ = std::fs::remove_dir_all(&dir_on);
}

/// A crash mid-append leaves a torn final line. Opening the log
/// truncates exactly the torn tail (checksummed JSONL), reports the
/// recovery, and a resumed run records it as a `TraceRecovered`
/// preamble — both in its merged record and in the re-run's log.
#[test]
fn torn_trace_tail_is_truncated_and_noted_on_resume() {
    let dir = temp_dir("torn");
    let path = dir.join("trace.jsonl");
    let blocks = Corpus::generate(Scale::PerApp(3), 5).basic_blocks();
    let config = ProfileConfig::bhive().quiet();
    let profiler = Profiler::new(Uarch::haswell(), config);

    let first = profile_corpus_supervised(
        &profiler,
        &blocks,
        1,
        None,
        &Supervision::with_obs(ObsConfig::on()),
    );
    let mut log = TraceLog::open(&path).unwrap();
    assert_eq!(log.recovery(), None, "fresh log has nothing to recover");
    log.append_run("first", first.stats.obs.as_ref().unwrap())
        .unwrap();
    drop(log);
    let valid_len = std::fs::metadata(&path).unwrap().len();

    // Tear the tail: half a record, no newline, bad checksum territory.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(br#"{"sum":12345,"body":{"RunStart":{"label":"torn"#)
        .unwrap();
    drop(file);

    let log = TraceLog::open(&path).unwrap();
    let recovery = log.recovery().expect("torn tail must be reported");
    assert_eq!(recovery.dropped_records, 1);
    assert!(recovery.dropped_bytes > 0);
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        valid_len,
        "exactly the torn tail is truncated; valid lines survive"
    );
    let det = TraceLog::det_section(&path).unwrap();
    assert!(det.contains("first"), "the first run's section survives");

    // The resumed run notes the truncation as its preamble event.
    let resumed = profile_corpus_supervised(
        &profiler,
        &blocks,
        1,
        None,
        &Supervision::with_obs(ObsConfig {
            resume_note: Some(recovery),
            ..ObsConfig::on()
        }),
    );
    let obs = resumed.stats.obs.as_ref().unwrap();
    match obs.events.first() {
        Some(TraceEvent::TraceRecovered {
            dropped_records,
            dropped_bytes,
        }) => {
            assert_eq!(*dropped_records, recovery.dropped_records);
            assert_eq!(*dropped_bytes, recovery.dropped_bytes);
        }
        other => panic!("resume must lead with TraceRecovered, got {other:?}"),
    }
    let mut log = log;
    log.append_run("resumed", obs).unwrap();
    drop(log);
    let det = TraceLog::det_section(&path).unwrap();
    assert!(
        det.contains("TraceRecovered"),
        "the re-run's log notes the truncation"
    );
    // And apart from the preamble, the resumed run traced the same
    // lifecycle as the undamaged first run.
    assert_eq!(
        &obs.events[1..],
        &first.stats.obs.as_ref().unwrap().events[..]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
