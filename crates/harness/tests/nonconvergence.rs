//! Regression tests for the non-convergence valve: a schedule that
//! exhausts the timing model's cycle budget must surface as a permanent
//! [`ProfileFailure::NonConvergent`] — identically in debug and release
//! builds — and must never be persisted to the measurement cache as if
//! it were a valid measurement.
//!
//! The pathological schedule is constructed, not found: a Haswell clone
//! with a zero-entry reservation station can never rename a single uop,
//! so rename deadlocks with nothing in flight.

use bhive_asm::parse_block;
use bhive_harness::{
    profile_corpus_supervised, CachedOutcome, FailureClass, MeasurementCache, ObsConfig,
    ProfileConfig, ProfileFailure, Profiler, Supervision,
};
use bhive_uarch::{Uarch, UarchKind};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A Haswell variant whose reservation station holds zero uops: every
/// non-eliminated instruction deadlocks at rename.
fn starved_uarch() -> &'static Uarch {
    Box::leak(Box::new(Uarch {
        rs_size: 0,
        ..Uarch::haswell().clone()
    }))
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bhive-nonconv-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn nonconvergence_is_a_permanent_profile_failure() {
    let block = parse_block("add rax, 1\nadd rbx, 1").unwrap();
    let profiler = Profiler::new(starved_uarch(), ProfileConfig::bhive().quiet());
    let failure = profiler
        .profile(&block)
        .expect_err("a zero-entry RS must fail to converge");
    match &failure {
        ProfileFailure::NonConvergent {
            cycle_budget,
            retired,
            total_insts,
        } => {
            assert_eq!(*retired, 0, "nothing can retire without an RS");
            assert!(*total_insts > 0);
            assert!(*cycle_budget >= 1_000_000);
        }
        other => panic!("expected NonConvergent, got {other:?}"),
    }
    // The valve behaves identically in debug and release builds: this
    // test runs under both profiles in CI, asserting the same error —
    // no debug_assert-only path, no silently truncated TimingResult.
    assert_eq!(failure.class(), FailureClass::Permanent);
    assert_eq!(failure.category(), "non-convergent");
    assert!(failure.to_string().contains("failed to converge"));
}

#[test]
fn nonconvergent_blocks_are_never_cached_as_measurements() {
    let dir = temp_dir("cache");
    let config = ProfileConfig::bhive().quiet();
    let profiler = Profiler::new(starved_uarch(), config.clone());
    let blocks = vec![parse_block("add rax, 1").unwrap()];
    let encoded = blocks[0].encode().unwrap();

    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let report = profile_corpus_supervised(
        &profiler,
        &blocks,
        1,
        Some(&mut cache),
        &Supervision::default(),
    );
    assert!(report.results[0].is_err());

    // Permanent failures are cached — as errors. Under no circumstances
    // may a truncated simulation be stored as a Measurement.
    let key = cache.key_for(&encoded);
    match cache.get(key) {
        Some(CachedOutcome::Err(ProfileFailure::NonConvergent { .. })) => {}
        Some(CachedOutcome::Ok(_)) => {
            panic!("non-convergent block was cached as a valid measurement")
        }
        other => panic!("expected a cached NonConvergent error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nonconvergence_emits_trace_event_and_failure_counter() {
    let profiler = Profiler::new(starved_uarch(), ProfileConfig::bhive().quiet());
    let blocks = vec![parse_block("add rax, 1").unwrap()];
    let report = profile_corpus_supervised(
        &profiler,
        &blocks,
        1,
        None,
        &Supervision::with_obs(ObsConfig::on()),
    );
    let obs = report.stats.obs.expect("observability was on");
    let counts = obs.event_counts();
    assert!(counts.get("attempt-failed").copied().unwrap_or(0) >= 1);
    assert_eq!(obs.metrics.counter("failures.non-convergent"), 1);
    // The kernel-dispatch tier is recorded per attempt.
    let tier_attempts = obs.metrics.counter("sim.kernel.avx2")
        + obs.metrics.counter("sim.kernel.sse4.1")
        + obs.metrics.counter("sim.kernel.scalar");
    assert!(tier_attempts >= 1, "kernel tier counter missing");
}
