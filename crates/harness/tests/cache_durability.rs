//! Durability properties of the on-disk measurement cache: records
//! round-trip bit-for-bit (successes and every failure variant), a torn
//! tail is recovered from, stale fingerprints are evicted, and a warm
//! rerun of a ≥1k-block corpus is bit-identical to the cold run.

use bhive_asm::parse_block;
use bhive_corpus::{Corpus, Scale};
use bhive_harness::{
    profile_corpus, profile_corpus_cached, CachedOutcome, Measurement, MeasurementCache,
    ProfileConfig, ProfileFailure, Profiler, TrialSet,
};
use bhive_sim::PerfCounters;
use bhive_uarch::{Uarch, UarchKind};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bhive-durability-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A finite f64 from raw bits (the cache serializes through JSON, which
/// has no NaN/inf encoding — the profiler never produces them either).
fn finite_f64(bits: u64) -> f64 {
    let x = f64::from_bits(bits);
    if x.is_finite() {
        x
    } else {
        (bits >> 12) as f64 * 1e-3
    }
}

fn trial_set(unroll: u32, cycles: Vec<u64>, seed: u64) -> TrialSet {
    let accepted = cycles.first().copied().unwrap_or(seed);
    TrialSet {
        unroll,
        cycles,
        clean: (seed % 17) as u32,
        identical: (seed % 9) as u32,
        accepted_cycles: accepted,
        counters: PerfCounters {
            core_cycles: seed.rotate_left(1),
            instructions_retired: seed.rotate_left(2),
            uops_executed: seed.rotate_left(3),
            l1d_read_misses: seed % 5,
            l1d_write_misses: seed % 3,
            l1i_misses: seed % 2,
            context_switches: seed % 7,
            misaligned_mem_refs: seed % 11,
            subnormal_events: seed % 13,
        },
    }
}

/// One outcome per `variant`: 0 is a success, 1..=12 cover every
/// [`ProfileFailure`] variant.
fn outcome_for(variant: usize, a: u64, b: u64, cycles: Vec<u64>, bits: u64) -> CachedOutcome {
    let text = format!("payload-{a:x}-\"quoted\"-\n-newline");
    match variant {
        0 => CachedOutcome::Ok(Measurement {
            throughput: finite_f64(bits),
            lo: trial_set(a as u32 % 500, cycles.clone(), a),
            hi: trial_set(b as u32 % 500, cycles, b),
            mapped_pages: (a % 64) as usize,
            faults_serviced: b as u32 % 128,
            subnormal_events: a % 99,
            misaligned_refs: b % 99,
            attempt: b as u32 % 3,
        }),
        1 => CachedOutcome::Err(ProfileFailure::Crash { fault: text }),
        2 => CachedOutcome::Err(ProfileFailure::TooManyFaults { faults: a as u32 }),
        3 => CachedOutcome::Err(ProfileFailure::InvalidAddress { vaddr: a }),
        4 => CachedOutcome::Err(ProfileFailure::Unreproducible {
            clean: a as u32 % 100,
            identical: b as u32 % 100,
            required: 8,
        }),
        5 => CachedOutcome::Err(ProfileFailure::NegativeDelta {
            lo_cycles: a,
            hi_cycles: b,
            lo_unroll: a as u32 % 500,
            hi_unroll: b as u32 % 500,
        }),
        6 => CachedOutcome::Err(ProfileFailure::Panic { message: text }),
        7 => CachedOutcome::Err(ProfileFailure::DirtyCounters {
            counters: trial_set(1, vec![a], b).counters,
        }),
        8 => CachedOutcome::Err(ProfileFailure::Misaligned { count: a }),
        9 => CachedOutcome::Err(ProfileFailure::UnsupportedIsa),
        10 => CachedOutcome::Err(ProfileFailure::Encoding { message: text }),
        11 => CachedOutcome::Err(ProfileFailure::InvalidBlock { message: text }),
        _ => CachedOutcome::Err(ProfileFailure::NonConvergent {
            cycle_budget: a,
            retired: b % 1000,
            total_insts: b % 1000 + a % 1000,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any *persistable* record — a success with arbitrary finite
    /// numerics, or any permanent failure variant with arbitrary payloads
    /// — survives the full disk round trip (serialize, flush, reopen,
    /// checksum-validate, parse) bit-for-bit. Transient failure variants
    /// must instead be refused by the cache entirely: nothing stored,
    /// nothing written, so a rerun retries the block.
    #[test]
    fn cache_records_round_trip_through_disk(
        variant in 0usize..13,
        a in any::<u64>(),
        b in any::<u64>(),
        bits in any::<u64>(),
        cycles in proptest::collection::vec(proptest::num::u64::ANY, 0..20),
    ) {
        let dir = temp_dir("roundtrip");
        let config = ProfileConfig::bhive();
        let outcome = outcome_for(variant, a, b, cycles, bits);
        let key = a ^ b.rotate_left(17);
        {
            let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
            cache.insert(key, outcome.clone()).unwrap();
        }
        let cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
        prop_assert_eq!(cache.open_report().dropped_records, 0);
        if outcome.is_transient_failure() {
            prop_assert_eq!(cache.open_report().loaded, 0);
            prop_assert_eq!(cache.get(key), None);
        } else {
            prop_assert_eq!(cache.open_report().loaded, 1);
            prop_assert_eq!(cache.get(key), Some(&outcome));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncated_tail_recovers_and_resumes_only_missing_blocks() {
    let dir = temp_dir("truncate");
    let config = ProfileConfig::bhive().quiet();
    let profiler = Profiler::new(Uarch::haswell(), config.clone());
    let blocks: Vec<_> = (1..=24)
        .map(|i| parse_block(&format!("add rax, {i}\nimul rbx, rcx")).unwrap())
        .collect();

    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let cold = profile_corpus_cached(&profiler, &blocks, 2, Some(&mut cache));
    assert_eq!(cold.stats.cache.unwrap().misses, 24);
    drop(cache);

    // Chop the log mid-record, as a crash during a write would.
    let path = MeasurementCache::log_path(&dir, UarchKind::Haswell);
    let bytes = std::fs::read(&path).unwrap();
    let cut = bytes.len() - 10;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let report = cache.open_report();
    assert_eq!(report.loaded, 23, "all complete records survive");
    assert_eq!(report.dropped_records, 1, "only the torn record is lost");
    assert!(report.dropped_bytes > 0);

    // The resumed run re-measures exactly the one missing block …
    let warm = profile_corpus_cached(&profiler, &blocks, 2, Some(&mut cache));
    let disk = warm.stats.cache.unwrap();
    assert_eq!(disk.hits, 23);
    assert_eq!(disk.misses, 1);
    let measured: usize = warm.stats.workers.iter().map(|w| w.profiled).sum();
    assert_eq!(measured, 1, "resume must not re-measure completed blocks");
    // … and the combined results are still bit-identical to the cold run.
    assert_eq!(warm.results, cold.results);

    // The repaired log is fully healthy again.
    drop(cache);
    let cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    assert_eq!(cache.open_report().loaded, 24);
    assert_eq!(cache.open_report().dropped_records, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_fingerprints_are_evicted_and_compacted_away() {
    let dir = temp_dir("stale");
    let old_config = ProfileConfig::bhive().quiet();
    let new_config = ProfileConfig {
        trials: 17,
        ..ProfileConfig::bhive().quiet()
    };
    let blocks: Vec<_> = (1..=6)
        .map(|i| parse_block(&format!("add rax, {i}")).unwrap())
        .collect();

    let old_profiler = Profiler::new(Uarch::haswell(), old_config.clone());
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &old_config).unwrap();
    profile_corpus_cached(&old_profiler, &blocks, 2, Some(&mut cache));
    drop(cache);

    // A config change invalidates every record: all evicted, none served.
    let new_profiler = Profiler::new(Uarch::haswell(), new_config.clone());
    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &new_config).unwrap();
    assert_eq!(cache.open_report().stale_evictions, 6);
    assert_eq!(cache.open_report().loaded, 0);
    let report = profile_corpus_cached(&new_profiler, &blocks, 2, Some(&mut cache));
    let disk = report.stats.cache.unwrap();
    assert_eq!(disk.stale_evictions, 6);
    assert_eq!(disk.hits, 0);
    assert_eq!(disk.misses, 6);
    drop(cache);

    // The post-run compaction physically removed the stale records.
    let cache = MeasurementCache::open(&dir, UarchKind::Haswell, &new_config).unwrap();
    assert_eq!(cache.open_report().stale_evictions, 0);
    assert_eq!(cache.open_report().loaded, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance bar: a warm rerun of a ≥1k-block corpus serves ≥99% of
/// blocks from the cache, bit-identical to the cold run.
#[test]
fn warm_rerun_of_1k_corpus_is_bit_identical() {
    let dir = temp_dir("corpus1k");
    let config = ProfileConfig::bhive().quiet();
    let profiler = Profiler::new(Uarch::haswell(), config.clone());
    let corpus = Corpus::generate(Scale::PerApp(110), 1234);
    let blocks = corpus.basic_blocks();
    assert!(
        blocks.len() >= 1000,
        "need ≥1k blocks, got {}",
        blocks.len()
    );

    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let cold = profile_corpus_cached(&profiler, &blocks, 0, Some(&mut cache));
    drop(cache);

    let mut cache = MeasurementCache::open(&dir, UarchKind::Haswell, &config).unwrap();
    let warm = profile_corpus_cached(&profiler, &blocks, 0, Some(&mut cache));
    let disk = warm.stats.cache.unwrap();
    assert_eq!(disk.misses, 0, "warm run must not measure anything");
    assert_eq!(warm.stats.threads, 0, "no workers on a fully warm run");
    assert_eq!(warm.results, cold.results, "warm must be bit-identical");

    // ≥99% of blocks (dedup fan-out included) come from the cache; only
    // unencodable blocks, which never consume machine time, are outside
    // it.
    let uncacheable = warm
        .results
        .iter()
        .filter(|r| matches!(r, Err(f) if f.category() == "encoding"))
        .count();
    let served = blocks.len() - uncacheable;
    assert!(
        served as f64 >= 0.99 * blocks.len() as f64,
        "served {served}/{}",
        blocks.len()
    );

    // And the cache changes nothing vs. a plain uncached run.
    let uncached = profile_corpus(&profiler, &blocks, 0);
    assert_eq!(uncached.results, cold.results);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache *file* is byte-identical across runs: a cold single-thread
/// run over a ≥1.1k-block corpus writes exactly the same JSONL bytes in
/// a fresh directory every time, and a warm rerun appends nothing. This
/// pins the whole measurement stack — encoding, mapping, prepared-trace
/// simulation, retries, noise — to a byte-stable serialization.
#[test]
fn cache_file_bytes_are_reproducible() {
    let config = ProfileConfig::bhive().quiet().with_retries(2);
    let profiler = Profiler::new(Uarch::haswell(), config.clone());
    let corpus = Corpus::generate(Scale::PerApp(110), 99);
    let blocks = corpus.basic_blocks();
    assert!(blocks.len() >= 1100, "got {}", blocks.len());

    let bytes_of =
        |dir: &PathBuf| std::fs::read(MeasurementCache::log_path(dir, UarchKind::Haswell)).unwrap();

    let dir_a = temp_dir("bytes-a");
    let mut cache = MeasurementCache::open(&dir_a, UarchKind::Haswell, &config).unwrap();
    profile_corpus_cached(&profiler, &blocks, 1, Some(&mut cache));
    drop(cache);
    let cold_a = bytes_of(&dir_a);
    assert!(!cold_a.is_empty());

    // Warm rerun: nothing new to measure, the file must not change.
    let mut cache = MeasurementCache::open(&dir_a, UarchKind::Haswell, &config).unwrap();
    profile_corpus_cached(&profiler, &blocks, 1, Some(&mut cache));
    drop(cache);
    assert_eq!(bytes_of(&dir_a), cold_a, "warm rerun must append nothing");

    // A second cold run in a fresh directory reproduces the bytes.
    let dir_b = temp_dir("bytes-b");
    let mut cache = MeasurementCache::open(&dir_b, UarchKind::Haswell, &config).unwrap();
    profile_corpus_cached(&profiler, &blocks, 1, Some(&mut cache));
    drop(cache);
    assert_eq!(bytes_of(&dir_b), cold_a, "cold runs must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
