//! Experiment drivers — one per table and figure of the paper.
//!
//! Each driver returns a [`crate::Report`] whose rows mirror the paper's
//! artifact; where the paper printed a number, the report carries both
//! our measured value and the paper's for side-by-side comparison.

mod case_study;
mod census;
mod figures;
mod tables;

pub use case_study::{case_study, fig_schedule};
pub use census::filter_census;
pub use figures::{fig3, fig4, fig_app_err, fig_cluster_err, fig_google};
pub use tables::{table1, table2, table3, table4, table5, table6};

use crate::Pipeline;
use crate::Report;

/// Runs every experiment, in paper order.
pub fn all(pipeline: &Pipeline) -> Vec<Report> {
    vec![
        table1(pipeline),
        table2(pipeline),
        table3(pipeline),
        table4(pipeline),
        fig3(pipeline),
        fig4(pipeline),
        table5(pipeline),
        fig_app_err(pipeline, bhive_uarch::UarchKind::IvyBridge),
        fig_app_err(pipeline, bhive_uarch::UarchKind::Haswell),
        fig_app_err(pipeline, bhive_uarch::UarchKind::Skylake),
        fig_cluster_err(pipeline, bhive_uarch::UarchKind::IvyBridge),
        fig_cluster_err(pipeline, bhive_uarch::UarchKind::Haswell),
        fig_cluster_err(pipeline, bhive_uarch::UarchKind::Skylake),
        case_study(pipeline),
        fig_schedule(pipeline),
        fig_google(pipeline),
        table6(pipeline),
        filter_census(pipeline),
    ]
}
