//! The case-study blocks and the schedule-comparison figure.

use crate::report::{fmt_f, Report};
use crate::Pipeline;
use bhive_corpus::special;
use bhive_harness::{ProfileConfig, Profiler};
use bhive_uarch::UarchKind;

/// **Case-study table** — the three "interesting" Haswell blocks:
/// measured throughput vs. every model's prediction ("-" where the tool
/// fails, as OSACA does on the `updcrc` block).
pub fn case_study(pipeline: &Pipeline) -> Report {
    let blocks = [
        (
            "xor edx,edx; div ecx; test edx,edx",
            special::case_study_division(),
            "21.62 / 98.00 / 99.04 / 14.49 / 12.25",
        ),
        (
            "vxorps xmm2, xmm2, xmm2",
            special::case_study_zero_idiom(),
            "0.25 / 0.24 / 1.00 / 0.328 / 1.00",
        ),
        (
            "gzip updcrc (Fig. 1)",
            special::updcrc(),
            "8.25 / 8.00 / 13.04 / 2.13 / -",
        ),
    ];
    let models = pipeline.models(UarchKind::Haswell);
    let mut report = Report::new(
        "case-study",
        "Interesting blocks: measured vs. predicted inverse throughput, Haswell \
         (paper case-study figure)",
        {
            let mut cols = vec!["Basic Block".into(), "Measured".into()];
            cols.extend(models.iter().map(|m| m.name().to_string()));
            cols.push("Paper (meas/iaca/mca/ithemal/osaca)".into());
            cols
        },
    );
    let profiler = Profiler::new(UarchKind::Haswell.desc(), ProfileConfig::bhive().quiet());
    for (name, block, paper) in blocks {
        let measured = profiler
            .profile(&block)
            .map(|m| fmt_f(m.throughput))
            .unwrap_or_else(|e| format!("({e})"));
        let mut row = vec![name.to_string(), measured];
        for model in &models {
            row.push(
                model
                    .predict(&block)
                    .map(fmt_f)
                    .unwrap_or_else(|| "-".into()),
            );
        }
        row.push(paper.to_string());
        report.push_row(row);
    }
    report.note(
        "expected shapes: IACA/llvm-mca grossly overpredict the division (64/32-bit \
         confusion); llvm-mca/OSACA miss the zero idiom; llvm-mca overpredicts updcrc \
         (load-op collapse); OSACA fails to parse updcrc's byte-memory xor",
    );
    report
}

/// **Fig. scheduling** — the schedules IACA and llvm-mca predict for the
/// `updcrc` block, showing the mis-scheduled `xor al, [rdi-1]`.
pub fn fig_schedule(pipeline: &Pipeline) -> Report {
    let block = special::updcrc();
    let models = pipeline.models(UarchKind::Haswell);
    let mut report = Report::new(
        "fig-schedule",
        "Predicted schedules for the updcrc block (paper Fig. scheduling)",
        vec![
            "Model".into(),
            "Throughput".into(),
            "xor-al dispatch relative to shr-rdx".into(),
        ],
    );
    let mut rendered = Vec::new();
    for model in &models {
        let Some(schedule) = model.schedule(&block) else {
            continue;
        };
        // Instruction 3 is `xor al, byte ptr [rdi-1]`. The paper's point:
        // IACA knows it begins with an *independent load* micro-op, so it
        // dispatches well before the serial `shr rdx` chain (instruction
        // 2) produces; llvm-mca's collapsed uop must wait for the chain.
        let shr_dispatch = schedule.dispatch_cycle(2, 1).unwrap_or(0) as i64;
        let xor_dispatch = schedule.dispatch_cycle(3, 1).unwrap_or(0) as i64;
        report.push_row(vec![
            model.name().into(),
            fmt_f(schedule.throughput),
            format!("{:+}", xor_dispatch - shr_dispatch),
        ]);
        rendered.push(schedule.render(72));
    }
    for text in rendered {
        for line in text.lines() {
            report.note(line.to_string());
        }
    }
    report.note(
        "paper: the xorb is dispatched noticeably earlier in IACA's schedule; llvm-mca \
         delays it behind the xorq because it cannot split the load micro-op",
    );
    report
}
