//! Figures 3–10 and the Google-composition figure, as text series.

use crate::report::{fmt_f, fmt_pct, Report};
use crate::{Category, CorpusKind, EvalRun, Pipeline};
use bhive_corpus::Application;
use bhive_uarch::UarchKind;
use std::collections::BTreeMap;

/// **Fig. 3** — one example basic block per category.
pub fn fig3(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Main);
    let classifier = pipeline.classifier();
    let mut exemplars: BTreeMap<Category, String> = BTreeMap::new();
    for cb in corpus.blocks() {
        if exemplars.len() == Category::ALL.len() {
            break;
        }
        if cb.block.len() < 3 || cb.block.len() > 7 {
            continue;
        }
        let cat = classifier.classify(&cb.block);
        exemplars
            .entry(cat)
            .or_insert_with(|| cb.block.to_string().replace('\n', "; "));
    }
    let mut report = Report::new(
        "fig3",
        "Example basic blocks for each category (paper Fig. 3)",
        vec!["Category".into(), "Example block".into()],
    );
    for cat in Category::ALL {
        report.push_row(vec![
            cat.paper_name().into(),
            exemplars
                .get(&cat)
                .cloned()
                .unwrap_or_else(|| "(none sampled)".into()),
        ]);
    }
    report
}

/// **Fig. 4** — breakdown of applications by basic-block category.
pub fn fig4(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Main);
    let classifier = pipeline.classifier();
    let mut report = Report::new(
        "fig4",
        "Breakdown of applications by block category, % of blocks (paper Fig. 4)",
        std::iter::once("Application".to_string())
            .chain(Category::ALL.iter().map(|c| c.paper_name().to_string()))
            .collect(),
    );
    for app in Application::ALL.iter().filter(|a| !a.is_google()) {
        let mut counts = [0usize; 6];
        let mut total = 0usize;
        for cb in corpus.for_app(*app) {
            let cat = classifier.classify(&cb.block);
            let idx = Category::ALL.iter().position(|&c| c == cat).expect("known");
            counts[idx] += 1;
            total += 1;
        }
        if total == 0 {
            continue;
        }
        let mut row = vec![app.name().to_string()];
        for c in counts {
            row.push(fmt_pct(c as f64 / total as f64));
        }
        report.push_row(row);
    }
    report.note("expected shape: OpenBLAS/TensorFlow vector-heavy; SQLite/LLVM unvectorized; GZip/OpenSSL bit-manipulation (Category-5-leaning)");
    report
}

/// **Figs. 5–7** — per-application error for each model on one
/// microarchitecture, frequency-weighted as in the paper.
pub fn fig_app_err(pipeline: &Pipeline, uarch: UarchKind) -> Report {
    let classifier = pipeline.classifier();
    let data = pipeline.measured(CorpusKind::Main, uarch);
    let models = pipeline.models(uarch);
    let runs: Vec<EvalRun> = {
        let cats = EvalRun::classify_corpus(&data, &classifier);
        models
            .iter()
            .map(|m| EvalRun::evaluate_classified(m.as_ref(), &data, &cats))
            .collect()
    };
    let mut report = Report::new(
        format!("fig-app-err-{}", uarch.short_name()),
        format!(
            "Per-application error on {} (paper Fig. {})",
            uarch.name(),
            match uarch {
                UarchKind::IvyBridge => "5",
                UarchKind::Haswell => "6",
                UarchKind::Skylake => "7",
            }
        ),
        std::iter::once("Application".to_string())
            .chain(runs.iter().map(|r| r.model.clone()))
            .collect(),
    );
    let per_app: Vec<BTreeMap<Application, f64>> =
        runs.iter().map(|r| r.per_app_weighted_error()).collect();
    for app in Application::ALL.iter().filter(|a| !a.is_google()) {
        if per_app.iter().all(|m| !m.contains_key(app)) {
            continue;
        }
        let mut row = vec![app.name().to_string()];
        for m in &per_app {
            row.push(m.get(app).map(|&e| fmt_f(e)).unwrap_or_else(|| "-".into()));
        }
        report.push_row(row);
    }
    report.note("errors weighted by sampled block frequency, as in the paper's figures");
    report
}

/// **Figs. 8–10** — per-category (cluster) error for each model on one
/// microarchitecture.
pub fn fig_cluster_err(pipeline: &Pipeline, uarch: UarchKind) -> Report {
    let classifier = pipeline.classifier();
    let data = pipeline.measured(CorpusKind::Main, uarch);
    let models = pipeline.models(uarch);
    let runs: Vec<EvalRun> = {
        let cats = EvalRun::classify_corpus(&data, &classifier);
        models
            .iter()
            .map(|m| EvalRun::evaluate_classified(m.as_ref(), &data, &cats))
            .collect()
    };
    let mut report = Report::new(
        format!("fig-cluster-err-{}", uarch.short_name()),
        format!(
            "Per-category error on {} (paper Fig. {})",
            uarch.name(),
            match uarch {
                UarchKind::IvyBridge => "8",
                UarchKind::Haswell => "9",
                UarchKind::Skylake => "10",
            }
        ),
        std::iter::once("Category".to_string())
            .chain(runs.iter().map(|r| r.model.clone()))
            .collect(),
    );
    let per_cat: Vec<BTreeMap<Category, f64>> =
        runs.iter().map(|r| r.per_category_error()).collect();
    for cat in Category::ALL {
        let mut row = vec![cat.paper_name().to_string()];
        for m in &per_cat {
            row.push(m.get(&cat).map(|&e| fmt_f(e)).unwrap_or_else(|| "-".into()));
        }
        report.push_row(row);
    }
    report.note(
        "paper findings to compare against: store-dominated blocks (Category-4) easiest; \
         load-mixing and vectorized blocks (Categories 6/2) hardest; every model >30% on \
         vectorized numerical kernels",
    );
    report
}

/// **Fig. google-blocks** — category composition of Spanner and Dremel,
/// weighted by execution frequency.
pub fn fig_google(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Google);
    let classifier = pipeline.classifier();
    let mut report = Report::new(
        "fig-google",
        "Block composition of Spanner/Dremel, frequency-weighted (paper Fig. google-blocks)",
        std::iter::once("Application".to_string())
            .chain(Category::ALL.iter().map(|c| c.paper_name().to_string()))
            .collect(),
    );
    for app in [Application::Spanner, Application::Dremel] {
        let mut weights = [0f64; 6];
        let mut total = 0f64;
        for cb in corpus.for_app(app) {
            let cat = classifier.classify(&cb.block);
            let idx = Category::ALL.iter().position(|&c| c == cat).expect("known");
            weights[idx] += cb.weight;
            total += cb.weight;
        }
        if total == 0.0 {
            continue;
        }
        let mut row = vec![app.name().to_string()];
        for w in weights {
            row.push(fmt_pct(w / total));
        }
        report.push_row(row);
    }
    report.note(
        "paper: both services spend ~40-50% of time in load-dominated blocks (Category-6), \
         with more partially-vectorized code (Category-1) than the open-source general-purpose apps",
    );
    report
}
