//! Tables 1–6.

use crate::report::{fmt_f, fmt_pct, Report};
use crate::{Category, CorpusKind, EvalRun, Pipeline};
use bhive_corpus::{special, Application};
use bhive_harness::{profile_corpus, PageMapping, ProfileConfig, Profiler, UnrollStrategy};
use bhive_learn::stats;
use bhive_uarch::UarchKind;

/// **Table 1** — ablation of the measurement techniques: percentage of
/// the suite successfully profiled as techniques are added.
pub fn table1(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Main);
    let blocks = corpus.basic_blocks();
    let mut report = Report::new(
        "table1",
        "Ablation study: percent of basic blocks profiled (paper Table 1)",
        vec![
            "(Additional) Technique".into(),
            "Profiled".into(),
            "Paper".into(),
        ],
    );
    let configs = [
        ("None", ProfileConfig::agner(), "16.65%"),
        (
            "Mapping all accessed pages",
            ProfileConfig::with_page_mapping_only(),
            "91.28%",
        ),
        (
            "More intelligent unrolling",
            ProfileConfig::bhive(),
            "94.24%",
        ),
    ];
    for (name, config, paper) in configs {
        let profiler = Profiler::new(UarchKind::Haswell.desc(), config);
        let run = profile_corpus(&profiler, &blocks, pipeline.threads());
        report.push_row(vec![name.into(), fmt_pct(run.success_rate()), paper.into()]);
        report.note(format!("{name}: {}", run.stats));
    }
    report.note(format!(
        "{} blocks, Haswell, seed {}",
        blocks.len(),
        pipeline.seed()
    ));
    report
}

/// **Table 2** — incremental measurement optimizations on the large
/// vectorized TensorFlow CNN inner-loop block.
pub fn table2(_pipeline: &Pipeline) -> Report {
    let block = special::tensorflow_cnn_block();
    let mut report = Report::new(
        "table2",
        "Measured throughput of the TensorFlow CNN block as optimizations \
         are applied (paper Table 2)",
        vec![
            "(Additional) Optimizations".into(),
            "Measured Throughput".into(),
            "L1 D-Cache Misses".into(),
            "L1 I-Cache Misses".into(),
            "Paper".into(),
        ],
    );
    // Every row reports rather than rejects invariant violations, like
    // the paper's table.
    let base = ProfileConfig::bhive()
        .quiet()
        .without_invariant_enforcement()
        .with_unroll(UnrollStrategy::Naive { factor: 100 });
    let rows: [(&str, Option<ProfileConfig>, &str); 5] = [
        ("None", Some(ProfileConfig::agner().quiet()), "Crashed"),
        (
            "Page mapping",
            Some(
                base.clone()
                    .with_page_mapping(PageMapping::PerPage)
                    .with_gradual_underflow(),
            ),
            "6377.0",
        ),
        (
            "Single physical page",
            Some(base.clone().with_gradual_underflow()),
            "2273.7",
        ),
        ("Disabling gradual underflow", Some(base.clone()), "65.0"),
        (
            "Using smaller unroll factor",
            Some(
                ProfileConfig::bhive()
                    .quiet()
                    .without_invariant_enforcement(),
            ),
            "59.0",
        ),
    ];
    for (name, config, paper) in rows {
        let Some(config) = config else { continue };
        let profiler = Profiler::new(UarchKind::Haswell.desc(), config);
        match profiler.profile(&block) {
            Ok(m) => {
                let counters = m.hi.counters;
                report.push_row(vec![
                    name.into(),
                    format!("{:.1}", m.throughput),
                    (counters.l1d_read_misses + counters.l1d_write_misses).to_string(),
                    counters.l1i_misses.to_string(),
                    paper.into(),
                ]);
            }
            Err(failure) => {
                report.push_row(vec![
                    name.into(),
                    "Crashed".into(),
                    "N/A".into(),
                    "N/A".into(),
                    paper.into(),
                ]);
                report.note(format!("{name}: {failure}"));
            }
        }
    }
    report.note(
        "absolute cycle counts differ from the paper's Haswell silicon; \
         the shape (crash -> D-misses -> subnormal stalls -> I-misses -> clean) reproduces",
    );
    report
}

/// **Table 3** — source applications and block counts.
pub fn table3(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Main);
    let census = corpus.census();
    let mut report = Report::new(
        "table3",
        "Source applications of basic blocks (paper Table 3)",
        vec![
            "Application".into(),
            "Domain".into(),
            "# Basic Blocks".into(),
            "Paper".into(),
        ],
    );
    let mut total = 0usize;
    for app in Application::TABLE3 {
        let count = census.get(&app).copied().unwrap_or(0);
        total += count;
        report.push_row(vec![
            app.name().into(),
            app.domain().into(),
            count.to_string(),
            app.paper_block_count().unwrap_or(0).to_string(),
        ]);
    }
    report.push_row(vec![
        "Total".into(),
        String::new(),
        total.to_string(),
        "358561".into(),
    ]);
    report.note(format!(
        "scale {:?}; OpenSSL generated separately for the classification study",
        pipeline.scale()
    ));
    report
}

/// **Table 4** — the six LDA categories with block counts.
pub fn table4(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Main);
    let classifier = pipeline.classifier();
    let mut counts = std::collections::BTreeMap::new();
    for cb in corpus.blocks() {
        *counts
            .entry(classifier.classify(&cb.block))
            .or_insert(0usize) += 1;
    }
    let mut report = Report::new(
        "table4",
        "Basic-block categories from LDA over uop port combinations (paper Table 4)",
        vec![
            "Category".into(),
            "Description".into(),
            "# Basic Blocks".into(),
            "Paper".into(),
        ],
    );
    for cat in Category::ALL {
        report.push_row(vec![
            cat.paper_name().into(),
            cat.description().into(),
            counts.get(&cat).copied().unwrap_or(0).to_string(),
            cat.paper_count().to_string(),
        ]);
    }
    report.note(format!(
        "LDA: 8 topics mapped onto the paper's 6 categories, alpha=1/6, beta=1/{} over \
         the {}-combination Haswell port vocabulary (the paper: 6 topics over 13 combinations)",
        classifier.vocab().len(),
        classifier.vocab().len()
    ));
    report
}

/// **Table 5** — overall error of the four models on the three
/// microarchitectures.
pub fn table5(pipeline: &Pipeline) -> Report {
    let classifier = pipeline.classifier();
    let mut report = Report::new(
        "table5",
        "Overall error of evaluated models (paper Table 5)",
        vec![
            "Microarchitecture".into(),
            "Model".into(),
            "Average Error".into(),
            "Paper".into(),
        ],
    );
    let paper: &[(&str, &str, f64)] = &[
        ("Ivy Bridge", "iaca", 0.1693),
        ("Ivy Bridge", "llvm-mca", 0.1885),
        ("Ivy Bridge", "ithemal", 0.1180),
        ("Ivy Bridge", "osaca", 0.3277),
        ("Haswell", "iaca", 0.1798),
        ("Haswell", "llvm-mca", 0.1832),
        ("Haswell", "ithemal", 0.1253),
        ("Haswell", "osaca", 0.3916),
        ("Skylake", "iaca", 0.1578),
        ("Skylake", "llvm-mca", 0.2278),
        ("Skylake", "ithemal", 0.1191),
        ("Skylake", "osaca", 0.3768),
    ];
    for uarch in UarchKind::ALL {
        let data = pipeline.measured(CorpusKind::Main, uarch);
        let cats = EvalRun::classify_corpus(&data, &classifier);
        for model in pipeline.models(uarch) {
            let run = EvalRun::evaluate_classified(model.as_ref(), &data, &cats);
            let paper_val = paper
                .iter()
                .find(|(u, m, _)| *u == uarch.name() && *m == model.name())
                .map(|(_, _, v)| fmt_f(*v))
                .unwrap_or_default();
            report.push_row(vec![
                uarch.name().into(),
                model.name().into(),
                fmt_f(run.overall_error()),
                paper_val,
            ]);
        }
    }
    report.note("AVX2 blocks excluded on Ivy Bridge, as in the paper");
    report
}

/// **Table 6** — the Spanner/Dremel production case study: average error,
/// frequency-weighted error and Kendall's tau for IACA, llvm-mca and
/// Ithemal (OSACA excluded, as in the paper, for licensing reasons).
pub fn table6(pipeline: &Pipeline) -> Report {
    let classifier = pipeline.classifier();
    let data = pipeline.measured(CorpusKind::Google, UarchKind::Haswell);
    let mut report = Report::new(
        "table6",
        "Accuracy on Spanner and Dremel basic blocks, Haswell (paper Table 6)",
        vec![
            "Application".into(),
            "Model".into(),
            "Average Error".into(),
            "Weighted Error".into(),
            "Kendall's Tau".into(),
            "Paper (avg/weighted/tau)".into(),
        ],
    );
    let paper: &[(&str, &str, [f64; 3])] = &[
        ("Spanner", "iaca", [0.1892, 0.1659, 0.7786]),
        ("Spanner", "llvm-mca", [0.1764, 0.1519, 0.7623]),
        ("Spanner", "ithemal", [0.1629, 0.1414, 0.7799]),
        ("Dremel", "iaca", [0.1883, 0.1846, 0.7835]),
        ("Dremel", "llvm-mca", [0.1777, 0.1831, 0.7685]),
        ("Dremel", "ithemal", [0.1640, 0.1871, 0.7862]),
    ];
    for app in [Application::Spanner, Application::Dremel] {
        // Per-application slice of the measured corpus.
        let slice = crate::MeasuredCorpus {
            uarch: data.uarch,
            blocks: data
                .blocks
                .iter()
                .filter(|m| m.app == app)
                .cloned()
                .collect(),
            attempted: 0,
        };
        let cats = EvalRun::classify_corpus(&slice, &classifier);
        for model in pipeline.models(UarchKind::Haswell) {
            if model.name() == "osaca" {
                continue; // excluded "due to licensing issues"
            }
            let run = EvalRun::evaluate_classified(model.as_ref(), &slice, &cats);
            let paper_vals = paper
                .iter()
                .find(|(a, m, _)| *a == app.name() && *m == model.name())
                .map(|(_, _, v)| format!("{:.4}/{:.4}/{:.4}", v[0], v[1], v[2]))
                .unwrap_or_default();
            report.push_row(vec![
                app.name().into(),
                model.name().into(),
                fmt_f(run.overall_error()),
                fmt_f(run.weighted_error()),
                fmt_f(run.kendall_tau()),
                paper_vals,
            ]);
        }
    }
    report.note("blocks weighted by sampled execution frequency");
    report
}

/// Re-export used by `figures.rs` without a circular import.
pub(crate) fn _unused_stats_hook() {
    let _ = stats::mean(&[]);
}
