//! The §3 filter census: subnormal-affected and misalignment-dropped
//! block counts.

use crate::report::{fmt_pct, Report};
use crate::{CorpusKind, Pipeline};
use bhive_harness::{monitor, ProfileConfig, Profiler};
use bhive_sim::Machine;
use bhive_uarch::UarchKind;

/// **Filter census** — how many blocks would have been affected by
/// gradual underflow (paper: 334, 0.1 %) and how many are dropped by the
/// misalignment filter (paper: 553, 0.183 %).
pub fn filter_census(pipeline: &Pipeline) -> Report {
    let corpus = pipeline.corpus(CorpusKind::Main);
    let uarch = UarchKind::Haswell.desc();
    let config = ProfileConfig::bhive().quiet();
    // Detect gradual-underflow exposure by functional execution with
    // FTZ/DAZ left off.
    let gu_config = ProfileConfig {
        disable_gradual_underflow: false,
        ..config.clone()
    };
    let mut subnormal_blocks = 0usize;
    let mut checked = 0usize;
    for cb in corpus.blocks() {
        if cb.block.uses_avx2() && !uarch.supports_avx2 {
            continue;
        }
        let mut machine = Machine::new(uarch, 0);
        machine.set_ftz_daz(false);
        if let Ok(outcome) = monitor(&mut machine, cb.block.insts(), 8, &gu_config) {
            checked += 1;
            if outcome.trace.iter().any(|d| d.effects.subnormal) {
                subnormal_blocks += 1;
            }
        }
    }

    // Misalignment-dropped blocks via the real profiling path.
    let profiler = Profiler::new(uarch, config);
    let blocks = corpus.basic_blocks();
    let report_run = bhive_harness::profile_corpus(&profiler, &blocks, pipeline.threads());
    let misaligned = report_run
        .failure_breakdown()
        .get("misaligned")
        .copied()
        .unwrap_or(0);

    let mut report = Report::new(
        "filter-census",
        "Blocks caught by the subnormal and misalignment filters (paper §3)",
        vec![
            "Filter".into(),
            "Blocks".into(),
            "Fraction".into(),
            "Paper".into(),
        ],
    );
    report.push_row(vec![
        "Gradual underflow would distort timing".into(),
        subnormal_blocks.to_string(),
        fmt_pct(subnormal_blocks as f64 / checked.max(1) as f64),
        "334 (0.100%)".into(),
    ]);
    report.push_row(vec![
        "MISALIGNED_MEM_REFERENCE drop".into(),
        misaligned.to_string(),
        fmt_pct(misaligned as f64 / blocks.len().max(1) as f64),
        "553 (0.183%)".into(),
    ]);
    report.note(format!(
        "{checked} executable blocks checked for subnormal exposure"
    ));
    report.note(format!("profiling: {}", report_run.stats));
    report
}
