//! # bhive-eval
//!
//! Evaluation pipelines and experiment drivers: one driver per table and
//! figure of the paper, each returning a printable/serializable
//! [`Report`] whose rows mirror the paper's artifact (with the paper's
//! own numbers alongside for comparison — see EXPERIMENTS.md at the
//! repository root).
//!
//! The [`Pipeline`] caches the expensive shared artifacts — generated
//! corpora, measured ground truth per microarchitecture, the LDA
//! classifier, trained Ithemal models — so running every experiment in
//! one process (as the `bhive all` CLI command does) measures each corpus
//! once.
//!
//! # Example
//!
//! ```no_run
//! use bhive_eval::{experiments, Pipeline};
//! use bhive_corpus::Scale;
//!
//! let pipeline = Pipeline::new(Scale::PerApp(200), 42, 0);
//! let report = experiments::table1(&pipeline);
//! println!("{report}");
//! ```

mod classify;
mod dataset;
mod evalrun;
pub mod experiments;
mod report;

pub use classify::{block_document, Category, Classifier};
pub use dataset::{MeasuredBlock, MeasuredCorpus};
pub use evalrun::{EvalRun, Prediction};
pub use report::{fmt_f, fmt_pct, Report};

use bhive_corpus::{Corpus, Scale};
use bhive_harness::{ObsConfig, ProfileConfig, ProfileStats, Supervision};
use bhive_models::{IacaModel, IthemalConfig, IthemalModel, McaModel, OsacaModel, ThroughputModel};
use bhive_uarch::UarchKind;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::Mutex;

/// Which corpus an experiment wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusKind {
    /// The open-source benchmark suite (Table 3 applications + OpenSSL).
    Main,
    /// The Spanner/Dremel production corpora.
    Google,
    /// A disjoint corpus (different seed) used to train the learned model.
    Training,
}

impl CorpusKind {
    /// Stable lower-case name (the CLI's `--corpus` values, and the
    /// label baked into shard-report filenames).
    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Main => "main",
            CorpusKind::Google => "google",
            CorpusKind::Training => "training",
        }
    }

    /// Parses a [`CorpusKind::name`] (case-insensitive).
    pub fn parse(text: &str) -> Option<CorpusKind> {
        match text.to_ascii_lowercase().as_str() {
            "main" => Some(CorpusKind::Main),
            "google" => Some(CorpusKind::Google),
            "training" => Some(CorpusKind::Training),
            _ => None,
        }
    }
}

impl std::fmt::Display for CorpusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared context for the experiment drivers.
pub struct Pipeline {
    scale: Scale,
    seed: u64,
    threads: usize,
    retries: u32,
    cache_dir: Option<PathBuf>,
    obs: ObsConfig,
    corpora: Mutex<HashMap<CorpusKind, Arc<Corpus>>>,
    measured: Mutex<HashMap<(CorpusKind, UarchKind), Arc<MeasuredCorpus>>>,
    profile_stats: Mutex<Vec<(String, ProfileStats)>>,
    classifier: Mutex<Option<Arc<Classifier>>>,
    ithemal: Mutex<HashMap<UarchKind, Arc<IthemalModel>>>,
}

impl Pipeline {
    /// Creates a pipeline at a given corpus scale and seed;
    /// `threads = 0` means one worker per CPU.
    pub fn new(scale: Scale, seed: u64, threads: usize) -> Pipeline {
        Pipeline {
            scale,
            seed,
            threads,
            retries: 0,
            cache_dir: None,
            obs: ObsConfig::default(),
            corpora: Mutex::new(HashMap::new()),
            measured: Mutex::new(HashMap::new()),
            profile_stats: Mutex::new(Vec::new()),
            classifier: Mutex::new(None),
            ithemal: Mutex::new(HashMap::new()),
        }
    }

    /// Enables the on-disk measurement cache rooted at `dir`: every
    /// corpus measurement this pipeline performs first consults the
    /// cache and persists what it had to measure, so repeated experiment
    /// runs (and reruns after an interruption) are warm. Results are
    /// bit-identical with or without the cache.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The measurement-cache directory, when caching is enabled.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// Allows up to `retries` escalating re-attempts per transiently
    /// failed block (see [`bhive_harness::RetryPolicy`]). The budget is
    /// part of the profiling config — and therefore of its fingerprint —
    /// so cached measurements never cross retry budgets. Recovered and
    /// retried counts surface in [`Pipeline::profile_stats`].
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Pipeline {
        self.retries = retries;
        self
    }

    /// The retry budget per transiently failed block.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Enables observability on every corpus measurement: structured
    /// trace events and a metrics registry accumulate per worker and
    /// merge into each measurement's [`ProfileStats::obs`] record (read
    /// them back via [`Pipeline::profile_stats`]). Observation never
    /// perturbs results — measurements are bit-identical either way —
    /// and stays out of the cache fingerprint.
    #[must_use]
    pub fn with_observability(mut self, obs: ObsConfig) -> Pipeline {
        self.obs = obs;
        self
    }

    /// The observability configuration for corpus measurements.
    pub fn observability(&self) -> &ObsConfig {
        &self.obs
    }

    /// The corpus scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker thread count (0 = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The paper's full profiling configuration (with realistic OS noise;
    /// noise is deterministic per block and attempt, so every run
    /// reproduces), plus this pipeline's retry budget.
    pub fn profile_config(&self) -> ProfileConfig {
        ProfileConfig::bhive().with_retries(self.retries)
    }

    /// Returns (and caches) a corpus.
    pub fn corpus(&self, kind: CorpusKind) -> Arc<Corpus> {
        let mut corpora = self.corpora.lock().unwrap();
        corpora
            .entry(kind)
            .or_insert_with(|| {
                Arc::new(match kind {
                    CorpusKind::Main => Corpus::generate(self.scale, self.seed),
                    CorpusKind::Google => Corpus::google(self.scale, self.seed ^ 0x600_61E),
                    CorpusKind::Training => {
                        // The learned model gets a larger (disjoint)
                        // training corpus, as Ithemal trains on millions
                        // of blocks while evaluation uses a sample.
                        Corpus::generate(self.scale.times(3.0), self.seed.wrapping_add(0x7EA1))
                    }
                })
            })
            .clone()
    }

    /// Returns (and caches) the measured ground truth for a corpus on a
    /// microarchitecture.
    pub fn measured(&self, kind: CorpusKind, uarch: UarchKind) -> Arc<MeasuredCorpus> {
        if let Some(hit) = self.measured.lock().unwrap().get(&(kind, uarch)) {
            return hit.clone();
        }
        let corpus = self.corpus(kind);
        let (measured, stats) = MeasuredCorpus::measure_with_stats_supervised(
            &corpus,
            uarch,
            &self.profile_config(),
            self.threads,
            self.cache_dir.as_deref(),
            &Supervision::with_obs(self.obs.clone()),
        );
        let measured = Arc::new(measured);
        self.profile_stats
            .lock()
            .unwrap()
            .push((format!("{kind:?}/{}", uarch.short_name()), stats));
        self.measured
            .lock()
            .unwrap()
            .insert((kind, uarch), measured.clone());
        measured
    }

    /// Observability: one [`ProfileStats`] per corpus measured so far, in
    /// measurement order, labelled `"<corpus>/<uarch>"`. Cached hits do
    /// not add entries — each corpus/uarch pair is profiled once.
    pub fn profile_stats(&self) -> Vec<(String, ProfileStats)> {
        self.profile_stats.lock().unwrap().clone()
    }

    /// Returns (and caches) the LDA classifier, fitted on the main corpus
    /// with the paper's Haswell port vocabulary.
    pub fn classifier(&self) -> Arc<Classifier> {
        if let Some(hit) = self.classifier.lock().unwrap().as_ref() {
            return hit.clone();
        }
        // The classification is a property of the *full* suite: fit the
        // topics on a corpus with the paper's application proportions
        // (LLVM dominates at 59%), independent of the evaluation sample
        // size. ~11k blocks converge the Gibbs sampler comfortably.
        let train = Corpus::generate(Scale::Fraction(0.03), self.seed);
        let blocks: Vec<_> = train.blocks().iter().map(|b| b.block.clone()).collect();
        let classifier = Arc::new(Classifier::fit(&blocks, UarchKind::Haswell));
        *self.classifier.lock().unwrap() = Some(classifier.clone());
        classifier
    }

    /// Returns (and caches) the Ithemal model trained on the *training*
    /// corpus measured on `uarch` — a disjoint corpus, so evaluation is
    /// honest out-of-sample prediction.
    pub fn ithemal(&self, uarch: UarchKind) -> Arc<IthemalModel> {
        if let Some(hit) = self.ithemal.lock().unwrap().get(&uarch) {
            return hit.clone();
        }
        let data = self.measured(CorpusKind::Training, uarch);
        let model = Arc::new(IthemalModel::train(
            &data.training_pairs(),
            uarch,
            IthemalConfig::default(),
        ));
        self.ithemal.lock().unwrap().insert(uarch, model.clone());
        model
    }

    /// The paper's four models for one microarchitecture, in the paper's
    /// reporting order (IACA, llvm-mca, Ithemal, OSACA).
    pub fn models(&self, uarch: UarchKind) -> Vec<Box<dyn ThroughputModel>> {
        vec![
            Box::new(IacaModel::new(uarch)),
            Box::new(McaModel::new(uarch)),
            Box::new(IthemalArc(self.ithemal(uarch))),
            Box::new(OsacaModel::new(uarch)),
        ]
    }
}

/// Adapter so the cached Ithemal model can be boxed alongside the others.
struct IthemalArc(Arc<IthemalModel>);

impl ThroughputModel for IthemalArc {
    fn name(&self) -> &'static str {
        "ithemal"
    }

    fn uarch(&self) -> UarchKind {
        self.0.uarch()
    }

    fn predict(&self, block: &bhive_asm::BasicBlock) -> Option<f64> {
        self.0.predict(block)
    }
}
