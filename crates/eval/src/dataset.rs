//! Measured datasets: ground-truth throughputs for corpus blocks.

use bhive_asm::BasicBlock;
use bhive_corpus::{Application, Corpus};
use bhive_harness::{
    profile_corpus_supervised, MeasurementCache, ProfileConfig, ProfileStats, Profiler, Supervision,
};
use bhive_uarch::UarchKind;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One successfully profiled corpus block with its measured throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredBlock {
    /// Source application.
    pub app: Application,
    /// Execution-frequency weight.
    pub weight: f64,
    /// The block.
    pub block: BasicBlock,
    /// Measured steady-state cycles per iteration.
    pub throughput: f64,
}

/// A measured dataset on one microarchitecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredCorpus {
    /// Target microarchitecture.
    pub uarch: UarchKind,
    /// The measured blocks (profiling failures are dropped, as in the
    /// paper — only successfully profiled blocks are used for
    /// validation).
    pub blocks: Vec<MeasuredBlock>,
    /// Blocks attempted (for success-rate accounting).
    pub attempted: usize,
}

impl MeasuredCorpus {
    /// Profiles every block of `corpus` on `uarch` with the paper's full
    /// configuration (or a caller-supplied one) and keeps the successes.
    ///
    /// AVX2 blocks are skipped on Ivy Bridge, exactly as the paper
    /// excludes them from Ivy Bridge validation.
    pub fn measure(
        corpus: &Corpus,
        uarch: UarchKind,
        config: &ProfileConfig,
        threads: usize,
    ) -> MeasuredCorpus {
        MeasuredCorpus::measure_with_stats(corpus, uarch, config, threads).0
    }

    /// Like [`MeasuredCorpus::measure`], additionally returning the
    /// profiling pipeline's [`ProfileStats`] (dedup hit rate, worker
    /// utilization, failure mix) for observability.
    pub fn measure_with_stats(
        corpus: &Corpus,
        uarch: UarchKind,
        config: &ProfileConfig,
        threads: usize,
    ) -> (MeasuredCorpus, ProfileStats) {
        MeasuredCorpus::measure_with_stats_cached(corpus, uarch, config, threads, None)
    }

    /// Like [`MeasuredCorpus::measure_with_stats`], with an optional
    /// on-disk measurement cache rooted at `cache_dir`: warm blocks are
    /// served from disk (bit-identical to measuring them), cold blocks
    /// are measured and persisted as the run progresses, so an
    /// interrupted run resumes where it stopped.
    ///
    /// A cache directory that cannot be opened disables caching for the
    /// run (with a warning on stderr) rather than failing it.
    pub fn measure_with_stats_cached(
        corpus: &Corpus,
        uarch: UarchKind,
        config: &ProfileConfig,
        threads: usize,
        cache_dir: Option<&Path>,
    ) -> (MeasuredCorpus, ProfileStats) {
        MeasuredCorpus::measure_with_stats_supervised(
            corpus,
            uarch,
            config,
            threads,
            cache_dir,
            &Supervision::default(),
        )
    }

    /// Like [`MeasuredCorpus::measure_with_stats_cached`], with explicit
    /// [`Supervision`] — breaker tuning and observability. With
    /// [`Supervision::obs`] enabled the returned stats carry the merged
    /// deterministic run record ([`ProfileStats::obs`]); the measured
    /// blocks themselves are bit-identical to an unobserved run.
    pub fn measure_with_stats_supervised(
        corpus: &Corpus,
        uarch: UarchKind,
        config: &ProfileConfig,
        threads: usize,
        cache_dir: Option<&Path>,
        supervision: &Supervision,
    ) -> (MeasuredCorpus, ProfileStats) {
        let profiler = Profiler::new(uarch.desc(), config.clone());
        let blocks = corpus.basic_blocks();
        let mut cache =
            cache_dir.and_then(|dir| match MeasurementCache::open(dir, uarch, config) {
                Ok(cache) => Some(cache),
                Err(err) => {
                    eprintln!(
                        "warning: measurement cache at {} disabled: {err}",
                        dir.display()
                    );
                    None
                }
            });
        let report =
            profile_corpus_supervised(&profiler, &blocks, threads, cache.as_mut(), supervision);
        let mut measured = Vec::new();
        for (idx, result) in report.results.iter().enumerate() {
            if let Ok(m) = result {
                // Degenerate zero-throughput measurements are useless as
                // ground truth.
                if m.throughput > 1e-6 {
                    let cb = &corpus.blocks()[idx];
                    measured.push(MeasuredBlock {
                        app: cb.app,
                        weight: cb.weight,
                        block: cb.block.clone(),
                        throughput: m.throughput,
                    });
                }
            }
        }
        (
            MeasuredCorpus {
                uarch,
                blocks: measured,
                attempted: blocks.len(),
            },
            report.stats,
        )
    }

    /// Profiles the shard `spec` owns of `corpus` — one worker process
    /// of a sharded run ([`bhive_harness::profile_corpus_sharded`]) —
    /// into shard-suffixed cache logs under `cache_dir`, stealing from
    /// straggling siblings once its own sub-corpus is durable.
    ///
    /// Returns only the worker's [`ProfileStats`]: per-block results
    /// for the full corpus come from the supervisor's warm replay
    /// (an ordinary [`MeasuredCorpus::measure_with_stats_supervised`])
    /// after [`bhive_harness::merge_shard_caches`], which is what makes
    /// the final dataset bit-identical to an unsharded run.
    ///
    /// # Errors
    ///
    /// Fails when the shard cache cannot be opened — including lock
    /// contention when another live worker already owns this shard.
    pub fn measure_shard(
        corpus: &Corpus,
        uarch: UarchKind,
        config: &ProfileConfig,
        threads: usize,
        cache_dir: &Path,
        spec: bhive_harness::ShardSpec,
    ) -> std::io::Result<ProfileStats> {
        let profiler = Profiler::new(uarch.desc(), config.clone());
        let blocks = corpus.basic_blocks();
        let report = bhive_harness::profile_corpus_sharded(
            &profiler,
            &blocks,
            threads,
            cache_dir,
            &Supervision::default(),
            spec,
        )?;
        Ok(report.stats)
    }

    /// Fraction of attempted blocks that profiled successfully.
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        self.blocks.len() as f64 / self.attempted as f64
    }

    /// `(block, throughput)` pairs for model training.
    pub fn training_pairs(&self) -> Vec<(BasicBlock, f64)> {
        self.blocks
            .iter()
            .map(|m| (m.block.clone(), m.throughput))
            .collect()
    }

    /// Writes the dataset in the published BHive artifact style:
    /// `app,hex,weight,throughput` per line (the original release ships
    /// `hex,throughput` CSVs per microarchitecture).
    ///
    /// # Errors
    ///
    /// Returns an error when a block fails to encode or the writer fails.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "# uarch: {}", self.uarch.short_name())?;
        for m in &self.blocks {
            let hex = m.block.to_hex().map_err(std::io::Error::other)?;
            writeln!(
                writer,
                "{},{},{},{}",
                m.app.name(),
                hex,
                m.weight,
                m.throughput
            )?;
        }
        Ok(())
    }

    /// Reads a dataset written by [`MeasuredCorpus::write_csv`].
    ///
    /// General `#` comment lines are skipped anywhere; the `# uarch:`
    /// header is honored only *before* the first data row — a header
    /// after data rows would silently retag blocks already parsed under
    /// the old uarch, so it is rejected instead.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed lines, undecodable hex, or a
    /// `# uarch:` header that appears after data rows.
    pub fn read_csv<R: std::io::BufRead>(reader: R) -> std::io::Result<MeasuredCorpus> {
        let mut uarch = UarchKind::Haswell;
        let mut blocks: Vec<MeasuredBlock> = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let err = |msg: String| std::io::Error::other(format!("line {}: {msg}", lineno + 1));
            if line.trim_start().starts_with('#') {
                if let Some(rest) = line.trim_start().strip_prefix("# uarch:") {
                    if !blocks.is_empty() {
                        return Err(err(
                            "`# uarch:` header after data rows would retag parsed blocks".into(),
                        ));
                    }
                    uarch = UarchKind::parse(rest.trim())
                        .ok_or_else(|| err(format!("unknown uarch `{rest}`")))?;
                }
                // Any other comment line is annotation, not data.
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, ',').collect();
            if parts.len() != 4 {
                return Err(err("expected app,hex,weight,throughput".into()));
            }
            let app = Application::parse(parts[0])
                .ok_or_else(|| err(format!("unknown app `{}`", parts[0])))?;
            let block = BasicBlock::from_hex(parts[1]).map_err(|e| err(e.to_string()))?;
            let weight: f64 = parts[2]
                .parse()
                .map_err(|e| err(format!("bad weight: {e}")))?;
            let throughput: f64 = parts[3]
                .parse()
                .map_err(|e| err(format!("bad throughput: {e}")))?;
            blocks.push(MeasuredBlock {
                app,
                weight,
                block,
                throughput,
            });
        }
        let attempted = blocks.len();
        Ok(MeasuredCorpus {
            uarch,
            blocks,
            attempted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_corpus::Scale;

    #[test]
    fn dataset_csv_round_trip() {
        let corpus = Corpus::generate(Scale::PerApp(6), 2);
        let config = ProfileConfig::bhive().quiet();
        let measured = MeasuredCorpus::measure(&corpus, UarchKind::Skylake, &config, 2);
        let mut buf = Vec::new();
        measured.write_csv(&mut buf).unwrap();
        let read = MeasuredCorpus::read_csv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(read.uarch, UarchKind::Skylake);
        assert_eq!(read.blocks.len(), measured.blocks.len());
        for (a, b) in measured.blocks.iter().zip(&read.blocks) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.app, b.app);
            assert!((a.throughput - b.throughput).abs() < 1e-9);
        }
    }

    #[test]
    fn measures_a_small_corpus() {
        let corpus = Corpus::generate(Scale::PerApp(8), 11);
        let config = ProfileConfig::bhive().quiet();
        let measured = MeasuredCorpus::measure(&corpus, UarchKind::Haswell, &config, 2);
        assert_eq!(measured.attempted, corpus.len());
        assert!(measured.success_rate() > 0.7, "{}", measured.success_rate());
        assert!(measured.blocks.iter().all(|m| m.throughput > 0.0));
        // Training pairs align with blocks.
        assert_eq!(measured.training_pairs().len(), measured.blocks.len());
    }

    #[test]
    fn read_csv_skips_general_comments() {
        let corpus = Corpus::generate(Scale::PerApp(4), 5);
        let config = ProfileConfig::bhive().quiet();
        let measured = MeasuredCorpus::measure(&corpus, UarchKind::Skylake, &config, 2);
        let mut buf = Vec::new();
        measured.write_csv(&mut buf).unwrap();
        // Sprinkle annotations the way hand-edited artifacts have them.
        let annotated = format!(
            "# generated by a measurement run\n{}# trailing note\n",
            String::from_utf8(buf).unwrap()
        );
        let read = MeasuredCorpus::read_csv(std::io::Cursor::new(annotated)).unwrap();
        assert_eq!(read.uarch, UarchKind::Skylake);
        assert_eq!(read.blocks.len(), measured.blocks.len());
    }

    #[test]
    fn read_csv_rejects_uarch_header_after_data() {
        let corpus = Corpus::generate(Scale::PerApp(4), 5);
        let config = ProfileConfig::bhive().quiet();
        let measured = MeasuredCorpus::measure(&corpus, UarchKind::Haswell, &config, 2);
        let mut buf = Vec::new();
        measured.write_csv(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("# uarch: skl\n");
        let err = MeasuredCorpus::read_csv(std::io::Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("after data rows"), "{err}");
    }

    #[test]
    fn cached_measure_is_bit_identical_to_cold() {
        let dir = std::env::temp_dir().join(format!("bhive-dataset-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::generate(Scale::PerApp(5), 9);
        let config = ProfileConfig::bhive().quiet();
        let (cold, cold_stats) = MeasuredCorpus::measure_with_stats_cached(
            &corpus,
            UarchKind::Haswell,
            &config,
            2,
            Some(&dir),
        );
        let cold_cache = cold_stats.cache.expect("cache active");
        assert_eq!(cold_cache.hits, 0);
        assert!(cold_cache.misses > 0);
        let (warm, warm_stats) = MeasuredCorpus::measure_with_stats_cached(
            &corpus,
            UarchKind::Haswell,
            &config,
            2,
            Some(&dir),
        );
        let warm_cache = warm_stats.cache.expect("cache active");
        assert_eq!(warm_cache.misses, 0, "everything served from disk");
        assert_eq!(warm_cache.hits, cold_cache.misses);
        assert_eq!(warm.blocks.len(), cold.blocks.len());
        for (a, b) in cold.blocks.iter().zip(&warm.blocks) {
            assert_eq!(a, b, "warm result must be bit-identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ivb_excludes_avx2() {
        let corpus = Corpus::for_apps(&[Application::TensorFlow], Scale::PerApp(30), 3);
        let config = ProfileConfig::bhive().quiet();
        let measured = MeasuredCorpus::measure(&corpus, UarchKind::IvyBridge, &config, 2);
        assert!(measured.blocks.iter().all(|m| !m.block.uses_avx2()));
    }
}
