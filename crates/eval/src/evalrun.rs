//! Running a model against measured ground truth.

use crate::classify::{Category, Classifier};
use crate::dataset::MeasuredCorpus;
use bhive_corpus::Application;
use bhive_learn::stats;
use bhive_models::ThroughputModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One block's prediction record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Source application.
    pub app: Application,
    /// LDA category of the block.
    pub category: Category,
    /// Execution-frequency weight.
    pub weight: f64,
    /// Measured throughput (ground truth).
    pub measured: f64,
    /// Model prediction, or `None` when the tool failed on the block.
    pub predicted: Option<f64>,
}

/// A model's predictions over a measured corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRun {
    /// Model name.
    pub model: String,
    /// Per-block records.
    pub preds: Vec<Prediction>,
}

impl EvalRun {
    /// Classifies every block of a measured corpus once, for reuse
    /// across [`EvalRun::evaluate_classified`] calls — the category
    /// depends only on the block, not on the model being evaluated.
    pub fn classify_corpus(data: &MeasuredCorpus, classifier: &Classifier) -> Vec<Category> {
        data.blocks
            .iter()
            .map(|m| classifier.classify(&m.block))
            .collect()
    }

    /// Runs `model` on every measured block.
    ///
    /// Classifies each block as it goes; when evaluating several models
    /// on the same corpus, classify once with
    /// [`EvalRun::classify_corpus`] and use
    /// [`EvalRun::evaluate_classified`] instead.
    pub fn evaluate(
        model: &dyn ThroughputModel,
        data: &MeasuredCorpus,
        classifier: &Classifier,
    ) -> EvalRun {
        Self::evaluate_classified(model, data, &Self::classify_corpus(data, classifier))
    }

    /// Runs `model` on every measured block, reusing precomputed
    /// per-block categories.
    ///
    /// # Panics
    ///
    /// Panics if `categories` does not have one entry per block.
    pub fn evaluate_classified(
        model: &dyn ThroughputModel,
        data: &MeasuredCorpus,
        categories: &[Category],
    ) -> EvalRun {
        assert_eq!(
            categories.len(),
            data.blocks.len(),
            "one category per block"
        );
        let preds = data
            .blocks
            .iter()
            .zip(categories)
            .map(|(m, &category)| Prediction {
                app: m.app,
                category,
                weight: m.weight,
                measured: m.throughput,
                predicted: model.predict(&m.block),
            })
            .collect();
        EvalRun {
            model: model.name().to_string(),
            preds,
        }
    }

    fn predicted_pairs(&self) -> impl Iterator<Item = (&Prediction, f64)> {
        self.preds
            .iter()
            .filter_map(|p| p.predicted.map(|v| (p, v)))
    }

    /// Unweighted mean relative error over the blocks the model handled.
    pub fn overall_error(&self) -> f64 {
        stats::mean_relative_error(self.predicted_pairs().map(|(p, v)| (v, p.measured)))
    }

    /// Frequency-weighted mean relative error.
    pub fn weighted_error(&self) -> f64 {
        stats::weighted_relative_error(
            self.predicted_pairs()
                .map(|(p, v)| (v, p.measured, p.weight)),
        )
    }

    /// Kendall's tau between predictions and measurements.
    pub fn kendall_tau(&self) -> f64 {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for (p, v) in self.predicted_pairs() {
            a.push(v);
            b.push(p.measured);
        }
        stats::kendall_tau(&a, &b)
    }

    /// Fraction of blocks the tool produced a prediction for.
    pub fn coverage(&self) -> f64 {
        if self.preds.is_empty() {
            return 0.0;
        }
        self.preds.iter().filter(|p| p.predicted.is_some()).count() as f64 / self.preds.len() as f64
    }

    /// Frequency-weighted error per application (the per-application
    /// figures weight each block by its sampled frequency).
    pub fn per_app_weighted_error(&self) -> BTreeMap<Application, f64> {
        let mut grouped: BTreeMap<Application, Vec<(f64, f64, f64)>> = BTreeMap::new();
        for (p, v) in self.predicted_pairs() {
            grouped
                .entry(p.app)
                .or_default()
                .push((v, p.measured, p.weight));
        }
        grouped
            .into_iter()
            .map(|(app, triples)| (app, stats::weighted_relative_error(triples)))
            .collect()
    }

    /// Unweighted error per LDA category.
    pub fn per_category_error(&self) -> BTreeMap<Category, f64> {
        let mut grouped: BTreeMap<Category, Vec<(f64, f64)>> = BTreeMap::new();
        for (p, v) in self.predicted_pairs() {
            grouped.entry(p.category).or_default().push((v, p.measured));
        }
        grouped
            .into_iter()
            .map(|(cat, pairs)| (cat, stats::mean_relative_error(pairs)))
            .collect()
    }

    /// Number of handled blocks per category (for significance notes).
    pub fn per_category_count(&self) -> BTreeMap<Category, usize> {
        let mut out = BTreeMap::new();
        for (p, _) in self.predicted_pairs() {
            *out.entry(p.category).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_corpus::{Corpus, Scale};
    use bhive_harness::ProfileConfig;
    use bhive_models::BaselineTableModel;
    use bhive_uarch::UarchKind;

    #[test]
    fn end_to_end_evaluation() {
        let corpus = Corpus::generate(Scale::PerApp(6), 21);
        let data = crate::dataset::MeasuredCorpus::measure(
            &corpus,
            UarchKind::Haswell,
            &ProfileConfig::bhive().quiet(),
            2,
        );
        assert!(!data.blocks.is_empty());
        let classifier = crate::classify::Classifier::fit(
            &data
                .blocks
                .iter()
                .map(|m| m.block.clone())
                .collect::<Vec<_>>(),
            UarchKind::Haswell,
        );
        let model = BaselineTableModel::new(UarchKind::Haswell);
        let run = EvalRun::evaluate(&model, &data, &classifier);
        assert_eq!(run.preds.len(), data.blocks.len());
        assert!(run.coverage() > 0.95);
        let err = run.overall_error();
        assert!(err.is_finite() && err >= 0.0);
        let tau = run.kendall_tau();
        assert!(
            tau > 0.2,
            "even the baseline ranks better than chance: {tau}"
        );
        assert!(!run.per_app_weighted_error().is_empty());
    }
}
