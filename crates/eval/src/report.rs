//! Plain-text/serializable experiment reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The output of one experiment driver: an identified, titled table with
/// notes, printable as aligned ASCII and serializable as JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment identifier (`table1`, `fig4`, `case-study`, ...).
    pub id: String,
    /// Human title, naming the paper artifact being reproduced.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<String>) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; pads or truncates to the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none in practice).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.columns)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f(value: f64) -> String {
    if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.4}")
    }
}

/// Formats a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new(
            "table1",
            "Ablation",
            vec!["Technique".into(), "Profiled".into()],
        );
        r.push_row(vec!["None".into(), "16.65%".into()]);
        r.push_row(vec!["Mapping all accessed pages".into(), "91.28%".into()]);
        r.note("paper values");
        let text = r.to_string();
        assert!(text.contains("table1"));
        assert!(text.contains("| None"));
        assert!(text.contains("note: paper values"));
        // All data rows have equal length.
        let lines: Vec<&str> = text.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn row_padding() {
        let mut r = Report::new("x", "y", vec!["a".into(), "b".into(), "c".into()]);
        r.push_row(vec!["1".into()]);
        assert_eq!(r.rows[0].len(), 3);
    }

    #[test]
    fn json_round_trip() {
        let mut r = Report::new("t", "title", vec!["c".into()]);
        r.push_row(vec!["v".into()]);
        let json = r.to_json().unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.1693), "0.1693");
        assert_eq!(fmt_f(6377.0), "6377.0");
        assert_eq!(fmt_pct(0.9424), "94.24%");
    }
}
