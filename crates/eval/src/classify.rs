//! Basic-block classification by hardware-resource usage (paper §4.2).
//!
//! Each block becomes a "document" whose words are the port combinations
//! of its micro-ops (Haswell tables, per the paper); a 6-topic LDA with
//! α = 1/6 and β = 1/|vocab| clusters the corpus; each block's category
//! is the most common topic of its micro-ops. Topics are then matched to
//! the paper's six manually-labeled categories by their port profiles.

use bhive_asm::BasicBlock;
use bhive_learn::lda::{self, LdaConfig, LdaFit};
use bhive_uarch::{decompose, port_vocabulary, PortSet, Uarch, UarchKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's six block categories (Table 4), in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Category-1: mix of scalar and vectorized arithmetic.
    MixedScalarVector,
    /// Category-2: purely vector instructions.
    PureVector,
    /// Category-3: mix of loads and stores.
    LoadStoreMix,
    /// Category-4: mostly stores.
    MostlyStores,
    /// Category-5: ALU ops sprinkled with loads and stores.
    AluWithMemory,
    /// Category-6: mostly loads.
    MostlyLoads,
}

impl Category {
    /// All six categories, Table 4 order.
    pub const ALL: [Category; 6] = [
        Category::MixedScalarVector,
        Category::PureVector,
        Category::LoadStoreMix,
        Category::MostlyStores,
        Category::AluWithMemory,
        Category::MostlyLoads,
    ];

    /// The paper's `Category-N` name.
    pub fn paper_name(self) -> &'static str {
        match self {
            Category::MixedScalarVector => "Category-1",
            Category::PureVector => "Category-2",
            Category::LoadStoreMix => "Category-3",
            Category::MostlyStores => "Category-4",
            Category::AluWithMemory => "Category-5",
            Category::MostlyLoads => "Category-6",
        }
    }

    /// The paper's description column.
    pub fn description(self) -> &'static str {
        match self {
            Category::MixedScalarVector => "Mix of Scalar and Vectorized arithmetic",
            Category::PureVector => "Purely Vector instructions",
            Category::LoadStoreMix => "Mix of loads and stores",
            Category::MostlyStores => "Mostly stores",
            Category::AluWithMemory => "ALU ops sprinkled with loads and stores",
            Category::MostlyLoads => "Mostly loads",
        }
    }

    /// The paper's Table 4 block count for this category.
    pub fn paper_count(self) -> u64 {
        match self {
            Category::MixedScalarVector => 7_710,
            Category::PureVector => 1_267,
            Category::LoadStoreMix => 58_540,
            Category::MostlyStores => 55_879,
            Category::AluWithMemory => 85_208,
            Category::MostlyLoads => 121_412,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A fitted classifier: LDA topics matched to the six paper categories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classifier {
    uarch: UarchKind,
    vocab: Vec<PortSet>,
    fit: LdaFit,
    /// `topic_category[t]` = the Category assigned to LDA topic `t`.
    topic_category: Vec<Category>,
    /// Categories of the training documents, in input order.
    train_categories: Vec<Category>,
}

/// The resource bucket a port combination belongs to (Haswell notation,
/// the uarch the paper classifies on). Used both to anchor the Gibbs
/// sampler and to label the fitted topics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    /// `p23` — loads.
    Load,
    /// `p237`, `p4` — stores.
    Store,
    /// `p0156`, `p06`, `p6` — scalar ALU (vector code never uses these).
    ScalarAlu,
    /// `p5`, `p01`, `p015` — vector-leaning units.
    Vector,
    /// `p0`, `p15` — packed-integer units.
    VecInt,
    /// `p1` and friends — shared between scalar and vector.
    Shared,
}

fn bucket_of(combo: PortSet) -> Bucket {
    match combo.mask() {
        0b0000_1100 => Bucket::Load,
        0b1000_1100 | 0b0001_0000 => Bucket::Store,
        0b0110_0011 | 0b0100_0001 | 0b0100_0000 => Bucket::ScalarAlu,
        0b0010_0000 | 0b0000_0011 | 0b0010_0011 => Bucket::Vector,
        0b0000_0001 | 0b0010_0010 => Bucket::VecInt,
        _ => Bucket::Shared,
    }
}

/// Converts a block into its port-combination document.
pub fn block_document(block: &BasicBlock, uarch: &Uarch, vocab: &[PortSet]) -> Vec<usize> {
    let mut doc = Vec::new();
    for inst in block.iter() {
        let recipe = decompose(inst, uarch);
        for uop in &recipe.uops {
            if let Some(word) = vocab.iter().position(|&v| v == uop.ports) {
                doc.push(word);
            }
        }
    }
    doc
}

impl Classifier {
    /// Fits the classifier to a training corpus of blocks, using the
    /// paper's LDA hyper-parameters on the given uarch's port vocabulary
    /// (the paper uses Haswell).
    pub fn fit(blocks: &[BasicBlock], uarch: UarchKind) -> Classifier {
        let desc = uarch.desc();
        let vocab = port_vocabulary(desc);
        let docs: Vec<Vec<usize>> = blocks
            .iter()
            .map(|b| block_document(b, desc, &vocab))
            .collect();
        // The paper fits 6 topics on its 13-combination Haswell
        // vocabulary. Our tables produce 12 combinations and a slightly
        // different corpus mix, under which 6 topics conflate pure-load
        // blocks with load-feeding vector kernels; 8 topics resolve all
        // six of the paper's categories, onto which the topics are then
        // mapped (several topics may share a label). The sampler is
        // anchor-initialized by resource bucket so the topic structure is
        // stable across corpus revisions.
        let anchors: Vec<usize> = vocab
            .iter()
            .map(|&combo| match bucket_of(combo) {
                Bucket::Load => 0,
                Bucket::Store => 1,
                Bucket::ScalarAlu => 2,
                Bucket::Vector => 3,
                Bucket::VecInt => 4,
                Bucket::Shared => 5,
            })
            .collect();
        let config = LdaConfig {
            topics: 8,
            anchors: Some(anchors),
            ..LdaConfig::paper(vocab.len())
        };
        let fit = lda::fit(&docs, vocab.len(), config);
        let topic_category = assign_labels(&fit, &vocab);
        let train_categories = fit
            .categories()
            .iter()
            .map(|&t| topic_category[t])
            .collect();
        Classifier {
            uarch,
            vocab,
            fit,
            topic_category,
            train_categories,
        }
    }

    /// The category of training document `idx`.
    pub fn train_category(&self, idx: usize) -> Category {
        self.train_categories[idx]
    }

    /// Categories of all training documents.
    pub fn train_categories(&self) -> &[Category] {
        &self.train_categories
    }

    /// Classifies an unseen block.
    ///
    /// The block's tokens are folded into the topic model and each token
    /// mapped to its topic's category; the majority category wins. A
    /// block whose tokens split between the load and store categories is
    /// the definition of Category-3 ("mix of loads and stores"), so a
    /// substantial presence of both yields that category even when
    /// neither holds a majority alone.
    pub fn classify(&self, block: &BasicBlock) -> Category {
        let doc = block_document(block, self.uarch.desc(), &self.vocab);
        if doc.is_empty() {
            return self.topic_category[self.fit.classify(&doc)];
        }
        let assignments = self.fit.fold_in(&doc);
        let mut shares = std::collections::BTreeMap::new();
        for &topic in &assignments {
            *shares.entry(self.topic_category[topic]).or_insert(0usize) += 1;
        }
        let n = doc.len();
        let share = |cat: Category| shares.get(&cat).copied().unwrap_or(0) as f64 / n as f64;
        if share(Category::MostlyLoads) >= 0.25 && share(Category::MostlyStores) >= 0.25 {
            return Category::LoadStoreMix;
        }
        shares
            .into_iter()
            .max_by_key(|&(_, count)| count)
            .map(|(cat, _)| cat)
            .expect("non-empty document")
    }

    /// The uarch whose port tables the classifier uses.
    pub fn uarch(&self) -> UarchKind {
        self.uarch
    }

    /// The port-combination vocabulary.
    pub fn vocab(&self) -> &[PortSet] {
        &self.vocab
    }

    /// Per-topic `(category, top port combinations)` summary.
    pub fn topic_summary(&self) -> Vec<(Category, Vec<PortSet>)> {
        (0..self.fit.topics)
            .map(|t| {
                let words = self.fit.top_words(t, 3);
                (
                    self.topic_category[t],
                    words.iter().map(|&w| self.vocab[w]).collect(),
                )
            })
            .collect()
    }
}

/// Labels each LDA topic with one of the paper's six categories by its
/// port profile — the automated analogue of the paper's manual topic
/// inspection ("we have manually labelled the categories"). Several
/// topics may share a label; Table 4 aggregates per label.
fn assign_labels(fit: &LdaFit, vocab: &[PortSet]) -> Vec<Category> {
    (0..fit.topics)
        .map(|t| {
            // Bucket the topic's probability mass by resource kind.
            // p23 loads; p237/p4 stores; p0156/p06/p6 scalar ALU (vector
            // code never uses them); p5/p01/p015 vector-leaning;
            // p0/p1/p15 shared between scalar and vector units.
            let mut load = 0.0;
            let mut store = 0.0;
            let mut vec_share = 0.0;
            let mut alu = 0.0;
            let mut vec_int = 0.0;
            for (w, &combo) in vocab.iter().enumerate() {
                let p = fit.topic_word[t][w];
                match bucket_of(combo) {
                    Bucket::Load => load += p,
                    Bucket::Store => store += p,
                    Bucket::ScalarAlu => alu += p,
                    Bucket::Vector => vec_share += p,
                    Bucket::VecInt => vec_int += p,
                    Bucket::Shared => {}
                }
            }
            if vec_share + vec_int >= 0.42 && alu < 0.12 && store < 0.15 && load < 0.30 {
                Category::PureVector
            } else if vec_share >= 0.15 {
                Category::MixedScalarVector
            } else if load >= 0.40 && store <= 0.12 {
                Category::MostlyLoads
            } else if store >= 0.60 {
                Category::MostlyStores
            } else if load >= 0.20 && store >= 0.17 {
                Category::LoadStoreMix
            } else if load >= 0.45 {
                Category::MostlyLoads
            } else {
                Category::AluWithMemory
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    fn synthetic_corpus() -> Vec<BasicBlock> {
        let mut blocks = Vec::new();
        for i in 0..40 {
            let r = 8 + i % 4;
            // Load-heavy.
            blocks.push(
                parse_block(&format!(
                    "mov rax, qword ptr [rbx]\nmov rcx, qword ptr [rsi + 8]\nmov rdx, qword ptr [rdi]\nadd r{r}, 1"
                ))
                .unwrap(),
            );
            // Store-heavy.
            blocks.push(
                parse_block(&format!(
                    "mov qword ptr [rbx], rax\nmov qword ptr [rsi + 8], rcx\nmov dword ptr [rdi], edx\nadd r{r}, 1"
                ))
                .unwrap(),
            );
            // Pure vector.
            blocks.push(
                parse_block(
                    "mulps xmm0, xmm1\naddps xmm2, xmm3\nmulps xmm4, xmm5\nsubps xmm6, xmm7",
                )
                .unwrap(),
            );
            // ALU with some memory.
            blocks.push(
                parse_block(&format!(
                    "add rax, rbx\nxor rcx, rdx\nimul r{r}, rax\nmov rsi, qword ptr [rdi]\nsub r12, 5"
                ))
                .unwrap(),
            );
        }
        blocks
    }

    #[test]
    fn separates_load_store_vector_blocks() {
        let blocks = synthetic_corpus();
        let classifier = Classifier::fit(&blocks, UarchKind::Haswell);
        // The four block families should land in at least 3 distinct
        // categories, with loads/stores separated.
        let load_cat = classifier.train_category(0);
        let store_cat = classifier.train_category(1);
        let vec_cat = classifier.train_category(2);
        assert_ne!(load_cat, store_cat, "loads vs stores");
        assert_ne!(vec_cat, load_cat, "vector vs loads");
        // Consistency across repeats of the same family.
        let consistent = (0..blocks.len())
            .filter(|&i| classifier.train_category(i) == classifier.train_category(i % 4))
            .count();
        // A 6-topic model over 4 families splits some families across
        // sibling topics; demand coherence, not perfection.
        assert!(
            consistent >= blocks.len() * 7 / 10,
            "{consistent}/{}",
            blocks.len()
        );
    }

    #[test]
    fn classify_agrees_with_training() {
        let blocks = synthetic_corpus();
        let classifier = Classifier::fit(&blocks, UarchKind::Haswell);
        let agree = blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| classifier.classify(b) == classifier.train_category(*i))
            .count();
        assert!(agree >= blocks.len() * 6 / 10, "{agree}/{}", blocks.len());
    }

    #[test]
    fn document_extraction() {
        let uarch = UarchKind::Haswell.desc();
        let vocab = port_vocabulary(uarch);
        let block = parse_block("mov rax, qword ptr [rbx]\nadd rcx, rdx").unwrap();
        let doc = block_document(&block, uarch, &vocab);
        assert_eq!(doc.len(), 2, "one load uop + one alu uop");
        // Zero idioms contribute no uops.
        let block = parse_block("xor eax, eax").unwrap();
        assert!(block_document(&block, uarch, &vocab).is_empty());
    }

    #[test]
    fn categories_metadata() {
        let total: u64 = Category::ALL.iter().map(|c| c.paper_count()).sum();
        // Table 4 counts sum to 330 016 (the successfully classified
        // subset of the suite).
        assert_eq!(total, 330_016);
        assert_eq!(Category::PureVector.paper_name(), "Category-2");
    }
}
