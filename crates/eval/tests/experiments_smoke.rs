//! Smoke tests: every experiment driver produces a well-formed report at
//! tiny scale (shape checks; the numeric assertions live in the
//! repository-level integration tests).

use bhive_corpus::Scale;
use bhive_eval::{experiments, Pipeline, Report};
use bhive_uarch::UarchKind;

fn pipeline() -> Pipeline {
    Pipeline::new(Scale::PerApp(8), 5, 0)
}

fn check_report(report: &Report, expected_rows: Option<usize>) {
    assert!(!report.id.is_empty());
    assert!(!report.columns.is_empty());
    assert!(!report.rows.is_empty(), "{} has no rows", report.id);
    for row in &report.rows {
        assert_eq!(row.len(), report.columns.len(), "{} row arity", report.id);
    }
    if let Some(n) = expected_rows {
        assert_eq!(report.rows.len(), n, "{} row count", report.id);
    }
    // Text and JSON renderings both work.
    let text = report.to_string();
    assert!(text.contains(&report.id));
    let json = report.to_json().expect("serializable");
    let back: Report = serde_json::from_str(&json).expect("parseable");
    assert_eq!(&back, report);
}

#[test]
fn table_reports_are_well_formed() {
    let p = pipeline();
    check_report(&experiments::table1(&p), Some(3));
    check_report(&experiments::table2(&p), None);
    check_report(&experiments::table3(&p), Some(10)); // 9 apps + total
    check_report(&experiments::table4(&p), Some(6));
    check_report(&experiments::table6(&p), Some(6)); // 2 apps x 3 models
}

#[test]
fn table5_covers_all_uarch_model_pairs() {
    let p = pipeline();
    let report = experiments::table5(&p);
    check_report(&report, Some(12));
    // Every row's error parses as a finite number.
    for row in &report.rows {
        let err: f64 = row[2]
            .parse()
            .unwrap_or_else(|_| panic!("bad error cell {row:?}"));
        assert!(err.is_finite() && err >= 0.0);
    }
}

#[test]
fn figure_reports_are_well_formed() {
    let p = pipeline();
    check_report(&experiments::fig3(&p), Some(6));
    check_report(&experiments::fig4(&p), None);
    check_report(&experiments::fig_google(&p), Some(2));
    check_report(&experiments::fig_app_err(&p, UarchKind::Haswell), None);
    check_report(
        &experiments::fig_cluster_err(&p, UarchKind::Haswell),
        Some(6),
    );
    check_report(&experiments::case_study(&p), Some(3));
    check_report(&experiments::fig_schedule(&p), Some(2));
    check_report(&experiments::filter_census(&p), Some(2));
}

#[test]
fn fig4_rows_sum_to_one() {
    let p = pipeline();
    let report = experiments::fig4(&p);
    for row in &report.rows {
        let total: f64 = row[1..]
            .iter()
            .map(|cell| cell.trim_end_matches('%').parse::<f64>().unwrap_or(0.0))
            .sum();
        assert!(
            (total - 100.0).abs() < 1.0,
            "{} percentages sum to {total}",
            row[0]
        );
    }
}
