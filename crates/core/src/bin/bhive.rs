//! The `bhive` command-line tool: one subcommand per paper experiment,
//! plus block-level profiling/prediction utilities.

use bhive::corpus::{Corpus, Family, FamilyCounts, Scale};
use bhive::eval::{experiments, CorpusKind, MeasuredCorpus, Pipeline, Report};
use bhive::harness::shard::{
    shard_report_path, stats_for_display, ShardRunReport, ShardSpec, ShardStats,
    SHARD_REPORT_SCHEMA,
};
use bhive::harness::{
    corpus_fingerprint, corpus_keys, merge_shard_caches, ObsConfig, ProfileConfig, ProfileStats,
    Profiler, TraceLog,
};
use bhive::uarch::UarchKind;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "\
bhive — BHive-rs experiment driver

USAGE:
    bhive <command> [options]

EXPERIMENTS (one per paper table/figure):
    table1            Ablation: % of suite profiled per technique
    table2            CNN-block measurement-optimization ablation
    table3            Suite census per application
    table4            LDA block categories
    table5            Overall model error per microarchitecture
    table6            Spanner/Dremel accuracy (avg/weighted/tau)
    fig1              Print the motivating updcrc block
    fig3              Example block per category
    fig4              Per-application category breakdown
    fig-app-err       Per-application model error (--uarch ivb|hsw|skl)
    fig-cluster-err   Per-category model error (--uarch ivb|hsw|skl)
    fig-schedule      IACA vs llvm-mca schedules for updcrc
    fig-google        Spanner/Dremel category composition
    case-study        The three interesting blocks
    filter-census     Subnormal / misalignment filter counts
    all               Run every experiment in paper order

UTILITIES:
    profile           Profile a block (asm text on stdin) on --uarch
    predict           Run all models on a block (asm text on stdin)
    corpus            Dump the generated corpus as CSV to stdout
    classify          Classify a block (asm text on stdin) into its category
    measure           Dump the measured dataset CSV (app,hex,weight,tp)
    exegesis          Measure per-opcode latency/rTP tables on --uarch
    serve             Run the throughput-prediction daemon on --listen:
                      answers warm hits from the measurement cache and
                      schedules misses onto the profiling worker pool
                      (line-delimited JSON, protocol bhive-serve/v1);
                      SIGTERM/SIGINT drains in-flight work and exits
    calibrate         Measure the targeted probe battery on --uarch,
                      fit candidate latency/port tables, and write a
                      deterministic diff-report against the shipped
                      tables (byte-identical at any --threads count
                      and across kill/resume of a --cache'd run)

OPTIONS:
    --scale N         Blocks per application (default 150)
    --fraction F      Fraction of paper-scale counts instead of --scale
    --paper-scale     Full paper-scale corpus (358k+ blocks; slow)
    --scale-family F=N  Blocks per application for every application in
                      generator family F (general|bitops|numeric|media|
                      google); repeatable, unlisted families stay at the
                      150 default. Unlike --paper-scale this is uncapped,
                      so six-figure corpora are one flag away
    --corpus C        Which corpus `measure` profiles: main | google |
                      training (default main)
    --workers N       measure: shard the corpus by content-hash prefix
                      across N worker processes (requires a cache
                      directory), merge their shard caches, then replay
                      the run warm in-process for the canonical CSV and
                      observability. Resumable: re-running after any
                      worker dies (even kill -9) re-profiles only the
                      missing shards and yields bit-identical output
    --shard i/N       measure: run as shard worker i of N (what
                      --workers spawns), writing only this shard's cache
                      log and completion report; no CSV on stdout
    --seed S          Corpus/noise seed (default 42)
    --threads T       Worker threads (default: all cores)
    --retries N       Retry transiently failed blocks up to N times with
                      escalating trial counts (default 0; deterministic)
    --uarch U         ivb | hsw | skl (default hsw)
    --tables FILE     measure/serve/profile/predict: load fitted tables
                      (bhive-tables/v1 JSON from `calibrate --out`) and
                      run with them instead of the shipped tables; the
                      file's uarch must match --uarch. Incompatible
                      with --workers/--shard (worker processes would
                      not inherit the loaded tables)
    --json            Emit reports as JSON
    --cache DIR       Persist measurements under DIR and resume from them
                      (also via the BHIVE_CACHE environment variable)
    --no-cache        Disable the measurement cache, overriding --cache
                      and BHIVE_CACHE
    --trace FILE      Append a structured event trace (checksummed JSONL)
                      for every corpus measurement to FILE and write a
                      deterministic run_report.json next to it; the
                      deterministic section is bit-identical at any
                      --threads count, and measurements are unchanged
    --metrics         Print the merged metrics registry (counters,
                      gauges, histogram quantiles) to stderr after the
                      command; implies observability even without --trace
    -h, --help        Print this usage summary and exit

CALIBRATE OPTIONS (calibrate command only; --uarch/--threads/--cache/
--no-cache/--trace/--metrics are honored too):
    --quick           Use the reduced probe battery (smoke tests)
    --report FILE     Where to write the diff-report JSON
                      (default calibration_report.json)
    --out FILE        Also write the fitted tables as bhive-tables/v1
                      JSON, loadable via --tables
    --diff            Print drifted entries to stdout and exit 3 when
                      the fitted tables differ from the shipped ones

SERVE OPTIONS (serve command only; --uarch/--cache/--retries/--threads
are honored too, with --threads sizing the profiling worker pool):
    --listen A        unix:/path/to.sock or tcp:host:port
                      (default unix:bhive.sock; tcp:127.0.0.1:0 picks a
                      free port and prints it)
    --queue N         Bound on queued miss-work before load-shedding
                      with queue-full rejections (default 64)
    --rate R          Per-client token-bucket refill, requests/second
                      (default 64)
    --burst B         Per-client token-bucket burst size (default 64)
    --deadline-ms N   Default per-request budget when the request does
                      not carry deadline_ms (default 10000)
    --read-timeout-ms N  Socket read deadline; mid-line stalls longer
                      than this are cut as slow-loris (default 250)
    --drain-ms N      How long shutdown waits for queued work before
                      cancelling it (default 5000)

EXIT STATUS:
    0                 Success (for serve: clean drain)
    1                 I/O or runtime error
    3                 calibrate --diff: fitted tables drifted from the
                      shipped ones
    2                 Usage error (bad flags or combinations), or run
                      unhealthy: the run-health circuit breaker tripped
                      (environment degraded), no block profiled
                      successfully, or the serve run ended degraded
    130               Interrupted: SIGINT/SIGTERM cut a batch run short;
                      completed work is flushed to the cache and the run
                      report carries a partial-run note
";

#[derive(Debug)]
struct Options {
    scale: Scale,
    seed: u64,
    threads: usize,
    retries: u32,
    uarch: UarchKind,
    corpus: CorpusKind,
    workers: Option<u32>,
    shard: Option<ShardSpec>,
    json: bool,
    cache: Option<std::path::PathBuf>,
    no_cache: bool,
    trace: Option<std::path::PathBuf>,
    metrics: bool,
    tables: Option<std::path::PathBuf>,
    help: bool,
    serve: ServeOptions,
    calibrate: CalibrateOptions,
}

/// Calibrate-only flags, kept `Option`/default so their *presence* can
/// be rejected on other commands instead of being silently ignored.
#[derive(Debug, Default)]
struct CalibrateOptions {
    quick: bool,
    report: Option<std::path::PathBuf>,
    out: Option<std::path::PathBuf>,
    diff: bool,
}

impl CalibrateOptions {
    /// The first calibrate-only flag that was given, for the
    /// "calibrate flags need the calibrate command" usage error.
    fn given(&self) -> Option<&'static str> {
        [
            ("--quick", self.quick),
            ("--report", self.report.is_some()),
            ("--out", self.out.is_some()),
            ("--diff", self.diff),
        ]
        .into_iter()
        .find_map(|(name, given)| given.then_some(name))
    }
}

/// Serve-only flags, kept `Option` so their *presence* can be rejected
/// on non-serve commands instead of being silently ignored.
#[derive(Debug, Default)]
struct ServeOptions {
    listen: Option<String>,
    queue: Option<usize>,
    rate: Option<f64>,
    burst: Option<u32>,
    deadline_ms: Option<u64>,
    read_timeout_ms: Option<u64>,
    drain_ms: Option<u64>,
}

impl ServeOptions {
    /// The first serve-only flag that was given, for the "serve flags
    /// need the serve command" usage error.
    fn given(&self) -> Option<&'static str> {
        [
            ("--listen", self.listen.is_some()),
            ("--queue", self.queue.is_some()),
            ("--rate", self.rate.is_some()),
            ("--burst", self.burst.is_some()),
            ("--deadline-ms", self.deadline_ms.is_some()),
            ("--read-timeout-ms", self.read_timeout_ms.is_some()),
            ("--drain-ms", self.drain_ms.is_some()),
        ]
        .into_iter()
        .find_map(|(name, given)| given.then_some(name))
    }
}

impl Options {
    /// Resolves the measurement-cache directory: `--no-cache` beats
    /// `--cache`, which beats the `BHIVE_CACHE` environment variable.
    fn cache_dir(&self) -> Option<std::path::PathBuf> {
        if self.no_cache {
            return None;
        }
        self.cache
            .clone()
            .or_else(|| std::env::var_os("BHIVE_CACHE").map(std::path::PathBuf::from))
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::PerApp(150),
        seed: 42,
        threads: 0,
        retries: 0,
        uarch: UarchKind::Haswell,
        corpus: CorpusKind::Main,
        workers: None,
        shard: None,
        json: false,
        cache: None,
        no_cache: false,
        trace: None,
        metrics: false,
        tables: None,
        help: false,
        serve: ServeOptions::default(),
        calibrate: CalibrateOptions::default(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = Scale::PerApp(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                );
            }
            "--fraction" => {
                opts.scale = Scale::Fraction(
                    value("--fraction")?
                        .parse()
                        .map_err(|e| format!("--fraction: {e}"))?,
                );
            }
            "--paper-scale" => opts.scale = Scale::Paper,
            "--scale-family" => {
                let text = value("--scale-family")?;
                let (name, count) = text
                    .split_once('=')
                    .ok_or_else(|| format!("--scale-family expects family=N, got `{text}`"))?;
                let family = Family::parse(name).ok_or_else(|| {
                    format!("unknown family `{name}` (general|bitops|numeric|media|google)")
                })?;
                let count: usize = count
                    .parse()
                    .map_err(|e| format!("--scale-family {name}: {e}"))?;
                // Repeatable: later flags layer onto earlier ones;
                // a prior --scale/--fraction is replaced wholesale.
                let counts = match opts.scale {
                    Scale::PerFamily(counts) => counts,
                    _ => FamilyCounts::default(),
                };
                opts.scale = Scale::PerFamily(counts.with(family, count));
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--retries" => {
                opts.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--uarch" => {
                let text = value("--uarch")?;
                opts.uarch =
                    UarchKind::parse(&text).ok_or_else(|| format!("unknown uarch `{text}`"))?;
            }
            "--corpus" => {
                let text = value("--corpus")?;
                opts.corpus = CorpusKind::parse(&text)
                    .ok_or_else(|| format!("unknown corpus `{text}` (main|google|training)"))?;
            }
            "--workers" => {
                let workers: u32 = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
                opts.workers = Some(workers);
            }
            "--shard" => {
                opts.shard = Some(
                    ShardSpec::parse(&value("--shard")?).map_err(|e| format!("--shard: {e}"))?,
                );
            }
            "--json" => opts.json = true,
            "--listen" => {
                let text = value("--listen")?;
                // Parse eagerly so a bad address is a flag error, not a
                // bind-time surprise.
                bhive::serve::BindAddr::parse(&text).map_err(|e| format!("--listen: {e}"))?;
                opts.serve.listen = Some(text);
            }
            "--queue" => {
                opts.serve.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}"))?,
                );
            }
            "--rate" => {
                let rate: f64 = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
                if !rate.is_finite() || rate < 0.0 {
                    return Err(format!(
                        "--rate must be a finite non-negative number, got {rate}"
                    ));
                }
                opts.serve.rate = Some(rate);
            }
            "--burst" => {
                let burst: u32 = value("--burst")?
                    .parse()
                    .map_err(|e| format!("--burst: {e}"))?;
                if burst == 0 {
                    return Err("--burst must be at least 1".into());
                }
                opts.serve.burst = Some(burst);
            }
            "--deadline-ms" => {
                opts.serve.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--read-timeout-ms must be at least 1 \
                                (a zero read deadline would cut every connection)"
                        .into());
                }
                opts.serve.read_timeout_ms = Some(ms);
            }
            "--drain-ms" => {
                opts.serve.drain_ms = Some(
                    value("--drain-ms")?
                        .parse()
                        .map_err(|e| format!("--drain-ms: {e}"))?,
                );
            }
            "--cache" => opts.cache = Some(value("--cache")?.into()),
            "--no-cache" => opts.no_cache = true,
            "--trace" => opts.trace = Some(value("--trace")?.into()),
            "--metrics" => opts.metrics = true,
            "--tables" => opts.tables = Some(value("--tables")?.into()),
            "--quick" => opts.calibrate.quick = true,
            "--report" => opts.calibrate.report = Some(value("--report")?.into()),
            "--out" => opts.calibrate.out = Some(value("--out")?.into()),
            "--diff" => opts.calibrate.diff = true,
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.workers.is_some() && opts.shard.is_some() {
        return Err("--workers (supervisor) and --shard (worker) are mutually exclusive".into());
    }
    if opts.tables.is_some() && (opts.workers.is_some() || opts.shard.is_some()) {
        return Err(
            "--tables is incompatible with --workers/--shard: worker processes \
             would run on the shipped tables, not the loaded ones"
                .into(),
        );
    }
    Ok(opts)
}

fn emit(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json().expect("report serializes"));
    } else {
        println!("{report}");
    }
}

fn read_stdin_block() -> Result<bhive::asm::BasicBlock, String> {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .map_err(|e| format!("reading stdin: {e}"))?;
    bhive::asm::parse_block(&text).map_err(|e| e.to_string())
}

/// CLI failures, split so `main` can exit 2 (with a usage hint) on bad
/// invocations and 1 on runtime/I/O errors. The `From<String>` impl
/// defaults `?`-propagated strings to runtime errors; usage errors are
/// tagged explicitly at the sites that detect them.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Runtime(message)
    }
}

fn run() -> Result<ExitCode, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    let opts = parse_options(&args[1..]).map_err(CliError::Usage)?;
    // `--help` anywhere (e.g. `bhive table1 --help`) prints usage and
    // exits 0 instead of dying on "unknown option".
    if opts.help {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    if (opts.workers.is_some() || opts.shard.is_some()) && command != "measure" {
        return Err(CliError::Usage(
            "--workers/--shard apply to the `measure` command only".into(),
        ));
    }
    if command != "serve" {
        if let Some(flag) = opts.serve.given() {
            return Err(CliError::Usage(format!(
                "{flag} applies to the `serve` command only"
            )));
        }
    }
    if command != "calibrate" {
        if let Some(flag) = opts.calibrate.given() {
            return Err(CliError::Usage(format!(
                "{flag} applies to the `calibrate` command only"
            )));
        }
    }
    if let Some(path) = &opts.tables {
        if !matches!(
            command.as_str(),
            "measure" | "serve" | "profile" | "predict"
        ) {
            return Err(CliError::Usage(
                "--tables applies to the measure/serve/profile/predict commands only".into(),
            ));
        }
        install_fitted_tables(path, opts.uarch)?;
    }
    if command == "serve" {
        return run_serve(&opts).map_err(CliError::Runtime);
    }
    if command == "calibrate" {
        return run_calibrate(&opts);
    }
    let mut pipeline =
        Pipeline::new(opts.scale, opts.seed, opts.threads).with_retries(opts.retries);
    if let Some(dir) = opts.cache_dir() {
        pipeline = pipeline.with_cache_dir(dir);
    }
    // Open the trace log before measuring so a torn tail left by an
    // interrupted run is recorded as this run's recovery preamble.
    let mut trace_log = match &opts.trace {
        Some(path) => Some(
            TraceLog::open(path)
                .map_err(|e| format!("opening trace log {}: {e}", path.display()))?,
        ),
        None => None,
    };
    if trace_log.is_some() || opts.metrics {
        let obs = ObsConfig {
            resume_note: trace_log.as_ref().and_then(|log| log.recovery()),
            ..ObsConfig::on()
        };
        pipeline = pipeline.with_observability(obs);
    }

    match command.as_str() {
        "help" | "--help" | "-h" => print!("{USAGE}"),
        "table1" => emit(&experiments::table1(&pipeline), opts.json),
        "table2" => emit(&experiments::table2(&pipeline), opts.json),
        "table3" => emit(&experiments::table3(&pipeline), opts.json),
        "table4" => emit(&experiments::table4(&pipeline), opts.json),
        "table5" => emit(&experiments::table5(&pipeline), opts.json),
        "table6" => emit(&experiments::table6(&pipeline), opts.json),
        "fig3" => emit(&experiments::fig3(&pipeline), opts.json),
        "fig4" => emit(&experiments::fig4(&pipeline), opts.json),
        "fig-app-err" => emit(&experiments::fig_app_err(&pipeline, opts.uarch), opts.json),
        "fig-cluster-err" => emit(
            &experiments::fig_cluster_err(&pipeline, opts.uarch),
            opts.json,
        ),
        "fig-schedule" => emit(&experiments::fig_schedule(&pipeline), opts.json),
        "fig-google" => emit(&experiments::fig_google(&pipeline), opts.json),
        "case-study" => emit(&experiments::case_study(&pipeline), opts.json),
        "filter-census" => emit(&experiments::filter_census(&pipeline), opts.json),
        "all" => {
            for report in experiments::all(&pipeline) {
                emit(&report, opts.json);
                println!();
            }
            for (label, stats) in pipeline.profile_stats() {
                eprintln!("profiling {label}: {stats}");
            }
        }
        "fig1" => {
            let block = bhive::corpus::special::updcrc();
            println!("# Gzip updcrc inner-loop body (paper Fig. 1)");
            println!("# AT&T (as printed in the paper):");
            println!("{}", block.to_att_string());
            println!("# Intel:");
            println!("{block}");
        }
        "exegesis" => {
            // Long tabular output routinely gets piped into `head`; use
            // the EPIPE-tolerant writer like the CSV commands.
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let write_table = |out: &mut dyn std::io::Write| -> std::io::Result<()> {
                writeln!(
                    out,
                    "# per-opcode latency / reciprocal throughput on {} (llvm-exegesis style)",
                    opts.uarch.name()
                )?;
                writeln!(out, "{:<14} {:>9} {:>9}", "opcode", "latency", "rTP")?;
                for p in bhive::harness::exegesis::profile_isa(opts.uarch.desc()) {
                    writeln!(
                        out,
                        "{:<14} {:>9.2} {:>9.2}",
                        p.mnemonic.name(),
                        p.latency,
                        p.reciprocal_throughput
                    )?;
                }
                Ok(())
            };
            write_table(&mut out).or_else(ignore_epipe)?;
        }
        "profile" => {
            let block = read_stdin_block()?;
            let config = ProfileConfig::bhive().with_retries(opts.retries);
            let profiler = Profiler::new(opts.uarch.desc(), config);
            match profiler.profile(&block) {
                Ok(m) => {
                    println!(
                        "throughput: {:.2} cycles/iteration ({} on {})",
                        m.throughput,
                        if m.hi.counters.is_clean() {
                            "clean"
                        } else {
                            "polluted"
                        },
                        opts.uarch.name()
                    );
                    println!(
                        "unroll factors {}x/{}x, {} pages mapped, {} faults serviced",
                        m.lo.unroll, m.hi.unroll, m.mapped_pages, m.faults_serviced
                    );
                    if m.recovered_on_retry() {
                        println!(
                            "recovered on retry attempt {} ({} trials)",
                            m.attempt,
                            m.hi.cycles.len()
                        );
                    }
                }
                Err(failure) => println!("failed to profile ({}): {failure}", failure.class()),
            }
        }
        "predict" => {
            let block = read_stdin_block()?;
            println!("{:<10} {:>12}", "model", "prediction");
            for model in pipeline.models(opts.uarch) {
                let text = model
                    .predict(&block)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into());
                println!("{:<10} {:>12}", model.name(), text);
            }
        }
        "measure" => {
            // SIGINT/SIGTERM during a long batch run should flush what
            // was measured (the cache writes per record), leave the
            // remainder re-measurable, note the partial run in the run
            // report, and exit 130 — not die mid-write.
            bhive::harness::interrupt::install();
            if let Some(spec) = opts.shard {
                // Worker mode: profile only this shard (plus steals) into
                // the shard-suffixed cache, write the completion report,
                // and exit — the supervisor owns the canonical output.
                let stats = run_shard_worker(&pipeline, &opts, spec)?;
                let unhealthy = stats.breaker.is_some()
                    || (stats.total_blocks > 0 && stats.successful_blocks == 0);
                return Ok(if unhealthy {
                    ExitCode::from(2)
                } else if stats.interrupted {
                    ExitCode::from(130)
                } else {
                    ExitCode::SUCCESS
                });
            }
            if let Some(workers) = opts.workers {
                // Supervisor mode: drive the worker fleet to completion
                // and merge their caches, then fall through to the normal
                // (now fully warm) in-process run, so the CSV, trace, and
                // run report are produced by exactly the same code path —
                // and are therefore bit-identical to a serial run.
                run_sharded_supervisor(&pipeline, &opts, workers)?;
            }
            let data = pipeline.measured(opts.corpus, opts.uarch);
            let stdout = std::io::stdout();
            data.write_csv(stdout.lock()).or_else(ignore_epipe)?;
            // Pipeline observability goes to stderr so the CSV on stdout
            // stays machine-readable.
            for (label, stats) in pipeline.profile_stats() {
                eprintln!("profiling {label}: {stats}");
            }
        }
        "classify" => {
            let block = read_stdin_block()?;
            let classifier = pipeline.classifier();
            let category = classifier.classify(&block);
            println!("{}: {}", category, category.description());
        }
        "corpus" => {
            let corpus = Corpus::generate(opts.scale, opts.seed);
            let stdout = std::io::stdout();
            corpus.write_csv(stdout.lock()).or_else(ignore_epipe)?;
        }
        other => {
            return Err(CliError::Usage(format!("unknown command `{other}`")));
        }
    }
    emit_observability(&pipeline, trace_log.as_mut(), opts.metrics)?;
    Ok(run_health(&pipeline))
}

/// The `serve` command: build a [`ServeConfig`](bhive::serve::ServeConfig)
/// from the flags, bind, and run until SIGINT/SIGTERM, then drain.
/// Exits 0 on a clean drain; a run that ended degraded (breaker tripped
/// or cache write-off) exits 2 like an unhealthy batch run.
fn run_serve(opts: &Options) -> Result<ExitCode, String> {
    use std::time::Duration;
    let listen = opts.serve.listen.as_deref().unwrap_or("unix:bhive.sock");
    let addr = bhive::serve::BindAddr::parse(listen).map_err(|e| format!("--listen: {e}"))?;
    let defaults = bhive::serve::ServeConfig::default();
    let workers = if opts.threads == 0 {
        defaults.workers
    } else {
        opts.threads
    };
    let cfg = bhive::serve::ServeConfig {
        uarch: opts.uarch,
        config: ProfileConfig::bhive().with_retries(opts.retries),
        cache_dir: opts.cache_dir(),
        workers,
        queue_capacity: opts.serve.queue.unwrap_or(defaults.queue_capacity),
        rate_burst: opts.serve.burst.unwrap_or(defaults.rate_burst),
        rate_per_sec: opts.serve.rate.unwrap_or(defaults.rate_per_sec),
        default_deadline: opts
            .serve
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(defaults.default_deadline),
        read_timeout: opts
            .serve
            .read_timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(defaults.read_timeout),
        drain_timeout: opts
            .serve
            .drain_ms
            .map(Duration::from_millis)
            .unwrap_or(defaults.drain_timeout),
        ..defaults
    };
    // SIGINT/SIGTERM flip the interrupt flag; the accept loop polls it
    // and turns it into a bounded drain.
    bhive::harness::interrupt::install();
    let server =
        bhive::serve::Server::bind(cfg, &addr).map_err(|e| format!("binding {addr}: {e}"))?;
    eprintln!(
        "bhive serve: listening on {} ({} on {} worker(s), cache {})",
        server.local_addr(),
        opts.uarch.name(),
        workers,
        opts.cache_dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "off (memory only)".into()),
    );
    let summary = server.run().map_err(|e| format!("serving: {e}"))?;
    eprintln!("bhive serve: {summary}");
    Ok(if summary.breaker_tripped || summary.cache_degraded {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

/// Loads a `bhive-tables/v1` file and installs it process-wide, so
/// every subsequent `UarchKind::desc()` — the profiler, the models,
/// the serve daemon — resolves to the fitted tables.
fn install_fitted_tables(path: &std::path::Path, uarch: UarchKind) -> Result<(), CliError> {
    let (kind, overrides) = bhive::uarch::FittedTables::load(path)
        .map_err(|e| CliError::Runtime(format!("loading --tables {}: {e}", path.display())))?;
    if kind != uarch {
        return Err(CliError::Usage(format!(
            "--tables {} is fitted for {}, but --uarch is {}; pass --uarch {}",
            path.display(),
            kind.short_name(),
            uarch.short_name(),
            kind.short_name()
        )));
    }
    bhive::uarch::install_tables(kind, overrides);
    Ok(())
}

/// The `calibrate` command: measure the probe battery, fit tables,
/// write the diff-report (and optionally the fitted tables), and with
/// `--diff` print drifted entries and exit 3 when any entry drifted.
fn run_calibrate(opts: &Options) -> Result<ExitCode, CliError> {
    // SIGINT/SIGTERM interrupt the measurement phase; completed probes
    // are already flushed to the cache, so a rerun resumes.
    bhive::harness::interrupt::install();
    let mut trace_log = match &opts.trace {
        Some(path) => Some(
            TraceLog::open(path)
                .map_err(|e| format!("opening trace log {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let obs = if trace_log.is_some() || opts.metrics {
        ObsConfig {
            resume_note: trace_log.as_ref().and_then(|log| log.recovery()),
            ..ObsConfig::on()
        }
    } else {
        ObsConfig::default()
    };
    let calib_opts = bhive::learn::CalibrationOptions {
        threads: opts.threads,
        cache_dir: opts.cache_dir(),
        quick: opts.calibrate.quick,
        obs,
        stop: None,
    };
    let outcome = match bhive::learn::calibrate(bhive::uarch::builtin(opts.uarch), &calib_opts) {
        Ok(outcome) => outcome,
        Err(bhive::learn::CalibrationError::Interrupted) => {
            eprintln!("calibrate: interrupted; rerun with the same --cache to resume");
            return Ok(ExitCode::from(130));
        }
        Err(err) => return Err(CliError::Runtime(format!("calibrate: {err}"))),
    };
    let report = &outcome.report;

    let report_path = opts
        .calibrate
        .report
        .clone()
        .unwrap_or_else(|| "calibration_report.json".into());
    std::fs::write(&report_path, report.to_json() + "\n")
        .map_err(|e| format!("writing report {}: {e}", report_path.display()))?;
    if let Some(out) = &opts.calibrate.out {
        bhive::uarch::FittedTables::new(opts.uarch, outcome.overrides.clone())
            .save(out)
            .map_err(|e| format!("writing fitted tables {}: {e}", out.display()))?;
    }

    if let (Some(log), Some(obs)) = (trace_log.as_mut(), outcome.obs.as_ref()) {
        log.append_run("calibrate", obs)
            .map_err(|e| format!("writing trace log {}: {e}", log.path().display()))?;
        // The documented --trace contract: a deterministic
        // run_report.json next to the trace. Swap the merged obs (with
        // the calib.* section) into the measurement stats so the report
        // carries the calibration counters too.
        let mut stats = outcome.stats.clone();
        stats.obs = Some(obs.clone());
        if let Some(run_report) = stats.run_report("calibrate") {
            let run_report_path = log.path().with_file_name("run_report.json");
            let body = format!(
                "[\n{}\n]\n",
                run_report
                    .to_json()
                    .map_err(|e| format!("run report: {e}"))?
            );
            std::fs::write(&run_report_path, body)
                .map_err(|e| format!("writing {}: {e}", run_report_path.display()))?;
        }
    }
    if opts.metrics {
        if let Some(obs) = &outcome.obs {
            eprintln!("metrics calibrate:");
            for (name, value) in obs.metrics.counters() {
                eprintln!("  counter  {name} = {value}");
            }
        }
    }
    eprintln!(
        "calibrate {}: {} probes ({} measured, {} failed), {} simulations, \
         {} entries, {} drifted; report {}",
        opts.uarch.name(),
        report.probe_count,
        report.measured_probes,
        report.failed_probes,
        report.simulations,
        report.entries.len(),
        report.drift_count,
        report_path.display(),
    );

    if opts.calibrate.diff {
        if report.has_drift() {
            for (key, entry) in report.entries.iter().filter(|(_, e)| e.drift) {
                println!(
                    "drift {key}: latency {} -> {}, ports {:#04x} -> {:#04x} (class {:?})",
                    entry.shipped_latency,
                    entry.fitted_latency,
                    entry.shipped_ports,
                    entry.canonical_ports,
                    entry.port_class,
                );
            }
            return Ok(ExitCode::from(3));
        }
        println!(
            "no drift: shipped {} tables match the fitted ones on all {} entries",
            opts.uarch.name(),
            report.entries.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Reconstructs the CLI flags that reproduce a [`Scale`] in a child
/// process. `f64::to_string` prints the shortest round-tripping decimal,
/// so a `--fraction` forwarded this way parses back to the same bits.
fn scale_args(scale: Scale) -> Vec<String> {
    match scale {
        Scale::PerApp(n) => vec!["--scale".into(), n.to_string()],
        Scale::Fraction(f) => vec!["--fraction".into(), f.to_string()],
        Scale::Paper => vec!["--paper-scale".into()],
        Scale::PerFamily(counts) => Family::ALL
            .into_iter()
            .flat_map(|family| {
                [
                    "--scale-family".into(),
                    format!("{}={}", family.name(), counts.get(family)),
                ]
            })
            .collect(),
    }
}

/// How many threads each of `workers` worker processes gets: an explicit
/// `--threads` budget is split evenly; `0` (auto) splits the machine's
/// cores so the fleet does not oversubscribe.
fn threads_per_worker(threads: usize, workers: u32) -> usize {
    let budget = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    (budget / workers as usize).max(1)
}

/// Worker mode (`measure --shard i/N`): profiles this shard's slice of
/// the corpus (plus anything stolen from stragglers) into the
/// shard-suffixed cache log, then atomically writes the completion
/// report the supervisor looks for. Emits no CSV — the supervisor's
/// warm replay produces the canonical output.
fn run_shard_worker(
    pipeline: &Pipeline,
    opts: &Options,
    spec: ShardSpec,
) -> Result<ProfileStats, String> {
    let dir = opts
        .cache_dir()
        .ok_or("--shard needs a cache directory (--cache DIR or BHIVE_CACHE)")?;
    let corpus = pipeline.corpus(opts.corpus);
    let config = pipeline.profile_config();
    let stats =
        MeasuredCorpus::measure_shard(&corpus, opts.uarch, &config, opts.threads, &dir, spec)
            .map_err(|e| format!("shard {spec}: {e}"))?;
    if stats.interrupted {
        // An interrupted shard must not certify completion: everything
        // measured so far is already flushed to the shard cache, and
        // withholding the report makes the next supervisor round
        // re-profile exactly the remainder.
        eprintln!(
            "shard {spec} {}/{}: interrupted; completion report withheld so a \
             rerun resumes the remainder",
            opts.corpus,
            opts.uarch.short_name()
        );
        return Ok(stats);
    }
    // The report binds to the exact corpus and config, so a stale report
    // from a different run can never satisfy a resume.
    let profiler = Profiler::new(opts.uarch.desc(), config.clone());
    let keys = corpus_keys(&profiler, &corpus.basic_blocks());
    let report = ShardRunReport {
        schema: SHARD_REPORT_SCHEMA.to_string(),
        shard: spec,
        corpus: opts.corpus.name().to_string(),
        corpus_len: keys.len(),
        corpus_fp: corpus_fingerprint(&keys),
        config_fp: config.fingerprint(),
        uarch: opts.uarch,
        stats: ShardStats::from(&stats),
    };
    let path = shard_report_path(&dir, opts.corpus.name(), opts.uarch, spec);
    report
        .write(&path)
        .map_err(|e| format!("writing shard report {}: {e}", path.display()))?;
    eprintln!(
        "shard {spec} {}/{}: {stats}",
        opts.corpus,
        opts.uarch.short_name()
    );
    Ok(stats)
}

/// Supervisor mode (`measure --workers N`): spawns one `--shard i/N`
/// re-invocation of this binary per shard whose completion report is
/// missing or stale, waits for the fleet, re-runs stragglers for a
/// bounded number of rounds, and finally merges every shard cache into
/// the canonical main log. Shards already certified by a previous
/// (interrupted) run are *not* re-run — that is the resume path.
fn run_sharded_supervisor(pipeline: &Pipeline, opts: &Options, workers: u32) -> Result<(), String> {
    const MAX_ROUNDS: usize = 3;
    let dir = opts
        .cache_dir()
        .ok_or("--workers needs a cache directory (--cache DIR or BHIVE_CACHE)")?;
    let corpus = pipeline.corpus(opts.corpus);
    let config = pipeline.profile_config();
    let profiler = Profiler::new(opts.uarch.desc(), config.clone());
    let keys = corpus_keys(&profiler, &corpus.basic_blocks());
    let corpus_fp = corpus_fingerprint(&keys);
    let config_fp = config.fingerprint();
    let specs: Vec<ShardSpec> = (0..workers)
        .map(|i| ShardSpec::new(i, workers).expect("index < count"))
        .collect();
    let certified = |spec: ShardSpec| -> Result<Option<ShardRunReport>, String> {
        let path = shard_report_path(&dir, opts.corpus.name(), opts.uarch, spec);
        let report = ShardRunReport::read(&path)
            .map_err(|e| format!("reading shard report {}: {e}", path.display()))?;
        Ok(report
            .filter(|r| r.certifies(spec, opts.corpus.name(), corpus_fp, config_fp, opts.uarch)))
    };
    let exe = std::env::current_exe().map_err(|e| format!("locating the bhive executable: {e}"))?;
    let threads = threads_per_worker(opts.threads, workers);
    for round in 0..MAX_ROUNDS {
        let mut pending = Vec::new();
        for &spec in &specs {
            if certified(spec)?.is_none() {
                pending.push(spec);
            }
        }
        if pending.is_empty() {
            break;
        }
        eprintln!(
            "supervisor: round {}: {} of {workers} shard(s) to run",
            round + 1,
            pending.len()
        );
        let mut children = Vec::new();
        for &spec in &pending {
            let child = std::process::Command::new(&exe)
                .arg("measure")
                .arg("--shard")
                .arg(spec.to_string())
                .args(scale_args(opts.scale))
                .args(["--seed", &opts.seed.to_string()])
                .args(["--threads", &threads.to_string()])
                .args(["--retries", &opts.retries.to_string()])
                .args(["--uarch", opts.uarch.short_name()])
                .args(["--corpus", opts.corpus.name()])
                .arg("--cache")
                .arg(&dir)
                .stdout(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("spawning shard worker {spec}: {e}"))?;
            children.push((spec, child));
        }
        for (spec, mut child) in children {
            let status = child
                .wait()
                .map_err(|e| format!("waiting for shard worker {spec}: {e}"))?;
            if !status.success() {
                // The completion report, not the exit status, decides
                // whether the shard's work is durable; a crashed worker
                // simply stays pending for the next round.
                eprintln!("supervisor: shard worker {spec} exited with {status}");
            }
        }
    }
    let mut merged: Option<ShardStats> = None;
    for &spec in &specs {
        let report = certified(spec)?.ok_or_else(|| {
            format!("shard {spec} did not complete after {MAX_ROUNDS} rounds; rerun to resume")
        })?;
        match &mut merged {
            Some(stats) => stats.merge(&report.stats),
            None => merged = Some(report.stats),
        }
    }
    let merge = merge_shard_caches(&dir, opts.uarch, &config, workers)
        .map_err(|e| format!("merging shard caches: {e}"))?;
    eprintln!(
        "supervisor: merged {} shard log(s) and {} steal segment(s) into {} cached record(s)",
        merge.shard_logs, merge.steal_segments, merge.records
    );
    if let Some(stats) = merged {
        eprintln!(
            "sharded {}/{} across {workers} worker(s): {}",
            opts.corpus,
            opts.uarch.short_name(),
            stats_for_display(&stats)
        );
    }
    Ok(())
}

/// Post-command observability fan-out: appends every observed corpus
/// measurement to the trace log, writes the deterministic
/// `run_report.json` next to it, and (with `--metrics`) prints the
/// merged registries to stderr. A command that measured nothing (e.g.
/// `corpus`, `fig1`) emits nothing.
fn emit_observability(
    pipeline: &Pipeline,
    log: Option<&mut TraceLog>,
    metrics: bool,
) -> Result<(), String> {
    let observed: Vec<(String, ProfileStats)> = pipeline
        .profile_stats()
        .into_iter()
        .filter(|(_, stats)| stats.obs.is_some())
        .collect();
    if observed.is_empty() {
        return Ok(());
    }
    if let Some(log) = log {
        for (label, stats) in &observed {
            let obs = stats.obs.as_ref().expect("filtered to observed runs");
            log.append_run(label, obs)
                .map_err(|e| format!("writing trace log {}: {e}", log.path().display()))?;
        }
        // One deterministic report per measurement, as a JSON array next
        // to the trace (bit-identical at any thread count).
        let mut reports = Vec::new();
        for (label, stats) in &observed {
            if let Some(report) = stats.run_report(label) {
                reports.push(report.to_json().map_err(|e| format!("run report: {e}"))?);
            }
        }
        let report_path = log.path().with_file_name("run_report.json");
        let body = format!("[\n{}\n]\n", reports.join(",\n"));
        std::fs::write(&report_path, body)
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
    }
    if metrics {
        for (label, stats) in &observed {
            let obs = stats.obs.as_ref().expect("filtered to observed runs");
            eprintln!("metrics {label}:");
            for (name, value) in obs.metrics.counters() {
                eprintln!("  counter  {name} = {value}");
            }
            for (name, value) in obs.metrics.gauges() {
                eprintln!("  gauge    {name} = {value}");
            }
            for (name, hist) in obs.metrics.histograms() {
                let q = bhive::harness::Quantiles::of(hist);
                eprintln!(
                    "  hist     {name}: n={} p50={} p95={} p99={}",
                    hist.total(),
                    q.p50,
                    q.p95,
                    q.p99
                );
            }
            // Wall-section histograms (latencies) are real observations
            // but not deterministic; mark them so nobody diffs them.
            for (name, hist) in obs.wall_metrics.histograms() {
                let q = bhive::harness::Quantiles::of(hist);
                eprintln!(
                    "  hist     {name}: n={} p50={} p95={} p99={} (wall, non-deterministic)",
                    hist.total(),
                    q.p50,
                    q.p95,
                    q.p99
                );
            }
            if obs.dropped_events > 0 {
                eprintln!(
                    "  warning: {} events DROPPED by ring overflow",
                    obs.dropped_events
                );
            }
        }
    }
    Ok(())
}

/// Post-command health check over every corpus the pipeline measured:
/// a tripped circuit breaker (environment degraded) or a run where no
/// block profiled successfully exits 2, so scripted callers cannot
/// mistake a wasted run for a good one.
fn run_health(pipeline: &Pipeline) -> ExitCode {
    let mut unhealthy = false;
    let mut interrupted = false;
    for (label, stats) in pipeline.profile_stats() {
        interrupted |= stats.interrupted;
        if let Some(trip) = &stats.breaker {
            unhealthy = true;
            eprintln!(
                "error: {label}: circuit breaker tripped at block {} \
                 ({:.0}% transient over {} blocks) — environment degraded",
                trip.at_block,
                trip.rate * 100.0,
                trip.window
            );
        } else if stats.total_blocks > 0 && stats.successful_blocks == 0 {
            unhealthy = true;
            eprintln!(
                "error: {label}: none of {} blocks profiled successfully",
                stats.total_blocks
            );
        }
    }
    if unhealthy {
        ExitCode::from(2)
    } else if interrupted {
        // Completed work is flushed and the run report carries the
        // partial-run note; the conventional 128+SIGINT code tells
        // scripted callers the dataset is resumable, not complete.
        ExitCode::from(130)
    } else {
        ExitCode::SUCCESS
    }
}

/// Piping into `head` closes stdout early; exiting loudly on EPIPE is
/// un-Unix-like.
fn ignore_epipe(err: std::io::Error) -> Result<(), String> {
    if err.kind() == std::io::ErrorKind::BrokenPipe {
        Ok(())
    } else {
        Err(format!("writing output: {err}"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("run `bhive --help` for usage");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&args)
    }

    #[test]
    fn help_flags_parse_instead_of_erroring() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
        // `--help` mixed with other options still parses.
        assert!(parse(&["--uarch", "skl", "--help"]).unwrap().help);
        assert!(!parse(&["--uarch", "skl"]).unwrap().help);
    }

    #[test]
    fn cache_flags_resolve_with_no_cache_winning() {
        let opts = parse(&["--cache", "/tmp/bhive-cache"]).unwrap();
        assert_eq!(
            opts.cache_dir(),
            Some(std::path::PathBuf::from("/tmp/bhive-cache"))
        );
        let opts = parse(&["--cache", "/tmp/bhive-cache", "--no-cache"]).unwrap();
        assert_eq!(opts.cache_dir(), None, "--no-cache overrides --cache");
        assert!(parse(&["--cache"]).is_err(), "--cache needs a value");
    }

    #[test]
    fn usage_covers_every_flag_the_parser_accepts() {
        for flag in [
            "--scale",
            "--fraction",
            "--paper-scale",
            "--scale-family",
            "--seed",
            "--threads",
            "--retries",
            "--uarch",
            "--corpus",
            "--workers",
            "--shard",
            "--json",
            "--cache",
            "--no-cache",
            "--trace",
            "--metrics",
            "--listen",
            "--queue",
            "--rate",
            "--burst",
            "--deadline-ms",
            "--read-timeout-ms",
            "--drain-ms",
            "--tables",
            "--quick",
            "--report",
            "--out",
            "--diff",
            "--help",
            "-h",
        ] {
            assert!(USAGE.contains(flag), "usage text must document {flag}");
        }
    }

    #[test]
    fn serve_flags_parse_and_validate_eagerly() {
        let opts = parse(&[
            "--listen",
            "tcp:127.0.0.1:7777",
            "--queue",
            "16",
            "--rate",
            "8.5",
            "--burst",
            "32",
            "--deadline-ms",
            "500",
            "--read-timeout-ms",
            "100",
            "--drain-ms",
            "1000",
        ])
        .unwrap();
        assert_eq!(opts.serve.listen.as_deref(), Some("tcp:127.0.0.1:7777"));
        assert_eq!(opts.serve.queue, Some(16));
        assert_eq!(opts.serve.rate, Some(8.5));
        assert_eq!(opts.serve.burst, Some(32));
        assert_eq!(opts.serve.deadline_ms, Some(500));
        assert_eq!(opts.serve.read_timeout_ms, Some(100));
        assert_eq!(opts.serve.drain_ms, Some(1000));
        assert_eq!(opts.serve.given(), Some("--listen"));

        // Bad values are rejected at parse time, not at bind time.
        assert!(parse(&["--listen", "carrier-pigeon:coop"]).is_err());
        assert!(parse(&["--rate", "-1"]).is_err(), "negative rate");
        assert!(parse(&["--rate", "inf"]).is_err(), "non-finite rate");
        assert!(parse(&["--burst", "0"]).is_err(), "burst must admit one");
        assert!(parse(&["--read-timeout-ms", "0"]).is_err(), "zero timeout");
    }

    #[test]
    fn calibrate_and_tables_flags_parse_and_validate() {
        let opts = parse(&["--quick", "--report", "r.json", "--out", "t.json", "--diff"]).unwrap();
        assert!(opts.calibrate.quick);
        assert_eq!(
            opts.calibrate.report,
            Some(std::path::PathBuf::from("r.json"))
        );
        assert_eq!(opts.calibrate.out, Some(std::path::PathBuf::from("t.json")));
        assert!(opts.calibrate.diff);
        assert_eq!(opts.calibrate.given(), Some("--quick"));
        assert_eq!(parse(&[]).unwrap().calibrate.given(), None);

        let opts = parse(&["--tables", "t.json"]).unwrap();
        assert_eq!(opts.tables, Some(std::path::PathBuf::from("t.json")));
        // Worker processes would run on the shipped tables, so the
        // combination is rejected at parse time.
        assert!(parse(&["--tables", "t.json", "--workers", "2"]).is_err());
        assert!(parse(&["--tables", "t.json", "--shard", "0/2"]).is_err());
        assert!(parse(&["--report"]).is_err(), "--report needs a value");
    }

    #[test]
    fn workers_and_shard_flags_parse_and_exclude_each_other() {
        let opts = parse(&["--workers", "4"]).unwrap();
        assert_eq!(opts.workers, Some(4));
        assert_eq!(opts.shard, None);
        let opts = parse(&["--shard", "2/4"]).unwrap();
        assert_eq!(opts.shard, Some(ShardSpec::new(2, 4).unwrap()));
        assert!(parse(&["--workers", "0"]).is_err(), "zero workers");
        assert!(parse(&["--shard", "4/4"]).is_err(), "index out of range");
        assert!(parse(&["--shard", "banana"]).is_err());
        let err = parse(&["--workers", "2", "--shard", "0/2"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn corpus_flag_parses() {
        assert_eq!(parse(&[]).unwrap().corpus, CorpusKind::Main);
        assert_eq!(
            parse(&["--corpus", "google"]).unwrap().corpus,
            CorpusKind::Google
        );
        assert_eq!(
            parse(&["--corpus", "TRAINING"]).unwrap().corpus,
            CorpusKind::Training
        );
        assert!(parse(&["--corpus", "bogus"]).is_err());
    }

    #[test]
    fn scale_family_flags_accumulate() {
        let opts = parse(&[
            "--scale-family",
            "numeric=1000",
            "--scale-family",
            "google=25",
        ])
        .unwrap();
        let expected = FamilyCounts::default()
            .with(Family::Numeric, 1000)
            .with(Family::Google, 25);
        assert_eq!(opts.scale, Scale::PerFamily(expected));
        assert!(parse(&["--scale-family", "numeric"]).is_err(), "needs =N");
        assert!(parse(&["--scale-family", "martian=3"]).is_err());
    }

    #[test]
    fn scale_args_round_trip_through_the_parser() {
        for scale in [
            Scale::PerApp(37),
            Scale::Fraction(0.1),
            Scale::Paper,
            Scale::PerFamily(FamilyCounts::uniform(9).with(Family::Media, 4)),
        ] {
            let args = scale_args(scale);
            let args: Vec<&str> = args.iter().map(String::as_str).collect();
            assert_eq!(parse(&args).unwrap().scale, scale, "{args:?}");
        }
    }

    #[test]
    fn threads_split_evenly_without_starving_workers() {
        assert_eq!(threads_per_worker(8, 4), 2);
        assert_eq!(threads_per_worker(2, 4), 1, "never zero threads");
        assert!(threads_per_worker(0, 2) >= 1, "auto splits the machine");
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        let opts = parse(&["--trace", "/tmp/run.jsonl", "--metrics"]).unwrap();
        assert_eq!(opts.trace, Some(std::path::PathBuf::from("/tmp/run.jsonl")));
        assert!(opts.metrics);
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.trace, None, "tracing is opt-in");
        assert!(!opts.metrics, "metrics are opt-in");
        assert!(parse(&["--trace"]).is_err(), "--trace needs a value");
    }

    #[test]
    fn unknown_options_still_error() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn retries_parse_and_default_to_zero() {
        assert_eq!(parse(&[]).unwrap().retries, 0);
        assert_eq!(parse(&["--retries", "3"]).unwrap().retries, 3);
        assert!(parse(&["--retries"]).is_err(), "--retries needs a value");
        assert!(parse(&["--retries", "many"]).is_err());
    }
}
