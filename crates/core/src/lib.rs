//! # bhive
//!
//! A Rust reproduction of **BHive: A Benchmark Suite and Measurement
//! Framework for Validating x86-64 Basic Block Performance Models**
//! (IISWC 2019).
//!
//! This facade crate re-exports the full public surface of the suite:
//!
//! | Crate | Role |
//! |---|---|
//! | [`asm`] | x86-64 subset: parser, printer, encoder, decoder, [`asm::BasicBlock`] |
//! | [`uarch`] | Ivy Bridge / Haswell / Skylake port tables and uop recipes |
//! | [`sim`] | the simulated machine measurements are taken on |
//! | [`harness`] | the measurement framework (page-mapping monitor, two-factor unrolling, clean-trial filters) |
//! | [`corpus`] | the benchmark-suite generators and the paper's fixed blocks |
//! | [`models`] | the four throughput predictors under validation |
//! | [`learn`] | LDA, SGD regression, evaluation statistics |
//! | [`eval`] | experiment drivers — one per paper table/figure |
//! | [`serve`] | the `bhive serve` daemon: warm-cache throughput answers over a socket |
//!
//! The `bhive` binary exposes every experiment as a subcommand; run
//! `bhive help` for the list.
//!
//! # Quickstart
//!
//! ```
//! use bhive::harness::{ProfileConfig, Profiler};
//! use bhive::models::{IacaModel, ThroughputModel};
//! use bhive::uarch::{Uarch, UarchKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = bhive::asm::parse_block("xor edx, edx\ndiv ecx\ntest edx, edx")?;
//!
//! // Measure on the simulated Haswell.
//! let profiler = Profiler::new(Uarch::haswell(), ProfileConfig::bhive());
//! let measured = profiler.profile(&block)?.throughput;
//!
//! // Ask the IACA-like model.
//! let predicted = IacaModel::new(UarchKind::Haswell).predict(&block).unwrap();
//!
//! // The paper's case study: measured ~21.6, IACA predicts ~98.
//! assert!(predicted > 2.0 * measured);
//! # Ok(())
//! # }
//! ```

pub use bhive_asm as asm;
pub use bhive_corpus as corpus;
pub use bhive_eval as eval;
pub use bhive_harness as harness;
pub use bhive_learn as learn;
pub use bhive_models as models;
pub use bhive_serve as serve;
pub use bhive_sim as sim;
pub use bhive_uarch as uarch;
