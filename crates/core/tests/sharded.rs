//! End-to-end tests of sharded multi-process profiling: a ~1.1k-block
//! corpus sharded four ways survives `kill -9` of a worker mid-run, and
//! the resumed, merged run is bit-identical — CSV, cache bytes, and
//! deterministic run report — to a clean one-process run.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

/// ~1.1k blocks across the applications of the main corpus.
const SCALE: &str = "110";
const SEED: &str = "7";

fn bhive(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bhive"))
        .args(args)
        .env_remove("BHIVE_CACHE")
        .output()
        .expect("bhive binary runs")
}

fn spawn_shard_worker(index: u32, count: u32, cache: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_bhive"))
        .args([
            "measure",
            "--shard",
            &format!("{index}/{count}"),
            "--scale",
            SCALE,
            "--seed",
            SEED,
            "--threads",
            "1",
            "--cache",
            cache,
        ])
        .env_remove("BHIVE_CACHE")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("shard worker spawns")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bhive-sharded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read(path: &PathBuf) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn killed_worker_resumes_bit_identical_to_clean_run() {
    let clean = temp_dir("clean");
    let crashed = temp_dir("crashed");
    let clean_arg = clean.to_str().unwrap();
    let crashed_arg = crashed.to_str().unwrap();

    // Reference: a clean one-process sharded run (worker + merge + warm
    // audit replay all in sequence), with tracing for the run report.
    let clean_trace = clean.join("trace.jsonl");
    let reference = bhive(&[
        "measure",
        "--workers",
        "1",
        "--scale",
        SCALE,
        "--seed",
        SEED,
        "--threads",
        "2",
        "--cache",
        clean_arg,
        "--trace",
        clean_trace.to_str().unwrap(),
    ]);
    assert!(
        reference.status.success(),
        "clean run failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert!(!reference.stdout.is_empty(), "clean run emitted no CSV");

    // Crash scenario: four shard workers (what `--workers 4` spawns),
    // one SIGKILLed mid-run. The survivors finish their own shards and
    // steal from the corpse; the killed shard never writes its report.
    let mut workers: Vec<(u32, Child)> = (0..4)
        .map(|i| (i, spawn_shard_worker(i, 4, crashed_arg)))
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(150));
    let (victim, mut corpse) = workers.remove(2);
    corpse.kill().expect("SIGKILL delivered"); // SIGKILL on Unix
    corpse.wait().expect("corpse reaped");
    for (index, mut worker) in workers {
        let status = worker.wait().expect("worker reaped");
        assert!(status.success(), "surviving shard {index}/4 failed");
    }
    let victim_report = crashed.join(format!("shard-report-main-hsw-{victim}of4.json"));
    assert!(
        !victim_report.exists(),
        "a kill -9'd worker must not have certified its shard"
    );

    // Resume: the supervisor re-runs only the missing shard, merges
    // every shard log and steal segment, and replays warm.
    let crashed_trace = crashed.join("trace.jsonl");
    let resumed = bhive(&[
        "measure",
        "--workers",
        "4",
        "--scale",
        SCALE,
        "--seed",
        SEED,
        "--threads",
        "2",
        "--cache",
        crashed_arg,
        "--trace",
        crashed_trace.to_str().unwrap(),
    ]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("1 of 4 shard(s) to run"),
        "resume must re-run exactly the killed shard:\n{stderr}"
    );

    // The three pillars of the resumability guarantee: identical eval
    // tables (CSV), identical canonical cache bytes, identical
    // deterministic run report.
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resumed CSV differs from the clean run"
    );
    assert_eq!(
        read(&crashed.join("measurements-hsw.jsonl")),
        read(&clean.join("measurements-hsw.jsonl")),
        "merged cache bytes differ from the clean run"
    );
    assert_eq!(
        read(&crashed.join("run_report.json")),
        read(&clean.join("run_report.json")),
        "deterministic run report differs from the clean run"
    );

    // And both match a plain unsharded, uncached run: sharding is an
    // execution strategy, never a result change.
    let serial = bhive(&[
        "measure",
        "--scale",
        SCALE,
        "--seed",
        SEED,
        "--threads",
        "2",
        "--no-cache",
    ]);
    assert!(serial.status.success());
    assert_eq!(
        serial.stdout, reference.stdout,
        "sharded CSV differs from a plain serial run"
    );

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&crashed);
}

#[test]
fn supervisor_is_idempotent_once_all_shards_certify() {
    let dir = temp_dir("idempotent");
    let dir_arg = dir.to_str().unwrap();
    let args = |workers: &'static str| {
        vec![
            "measure",
            "--workers",
            workers,
            "--scale",
            "6",
            "--seed",
            SEED,
            "--threads",
            "2",
            "--cache",
            dir_arg,
        ]
    };
    let first = bhive(&args("2"));
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    // Every shard already certified: no workers spawn, the merge is a
    // no-op rewrite, and the output is bit-identical.
    let second = bhive(&args("2"));
    assert!(second.status.success());
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        !stderr.contains("shard(s) to run"),
        "no shard should re-run once certified:\n{stderr}"
    );
    assert_eq!(second.stdout, first.stdout);

    // A different worker count is a different partition: stale reports
    // do not certify it, but the merged main log keeps the run warm.
    let third = bhive(&args("3"));
    assert!(third.status.success());
    assert_eq!(third.stdout, first.stdout);

    let _ = std::fs::remove_dir_all(&dir);
}
