//! End-to-end tests of `bhive calibrate` and `--tables`: the calibrate
//! command produces a report and a fitted-table file, `--diff` encodes
//! drift in the exit status, and a fitted table loaded back through
//! `--tables` drives a measure run byte-identical to the shipped one
//! (the shipped tables have zero drift, so the fitted canonical picks
//! equal them).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bhive(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bhive"))
        .args(args)
        .env_remove("BHIVE_CACHE")
        .output()
        .expect("bhive binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bhive-calib-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn calibrate_writes_report_and_tables_and_reports_no_drift() {
    let dir = temp_dir("report");
    let report = dir.join("report.json");
    let tables = dir.join("tables.json");
    let out = bhive(&[
        "calibrate",
        "--uarch",
        "ivb",
        "--quick",
        "--no-cache",
        "--report",
        report.to_str().unwrap(),
        "--out",
        tables.to_str().unwrap(),
        "--diff",
    ]);
    // Shipped tables are drift-free (see the uarch table audit), so
    // --diff exits 0.
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no drift"), "{stdout}");

    let report_json = std::fs::read_to_string(&report).expect("report written");
    assert!(
        report_json.contains("bhive-calibration-report/v1"),
        "{report_json}"
    );
    let tables_json = std::fs::read_to_string(&tables).expect("tables written");
    assert!(tables_json.contains("bhive-tables/v1"), "{tables_json}");

    // A fitted, drift-free table swapped in via --tables must leave a
    // measure run byte-identical to the shipped tables.
    let with_tables = bhive(&[
        "measure",
        "--uarch",
        "ivb",
        "--scale",
        "3",
        "--no-cache",
        "--tables",
        tables.to_str().unwrap(),
    ]);
    assert!(with_tables.status.success(), "{with_tables:?}");
    let shipped = bhive(&["measure", "--uarch", "ivb", "--scale", "3", "--no-cache"]);
    assert!(shipped.status.success(), "{shipped:?}");
    assert_eq!(
        with_tables.stdout, shipped.stdout,
        "fitted tables must reproduce the shipped measure run"
    );

    // The fitted file is pinned to its uarch: loading it under another
    // --uarch is a usage error.
    let mismatched = bhive(&[
        "measure",
        "--uarch",
        "skl",
        "--scale",
        "3",
        "--no-cache",
        "--tables",
        tables.to_str().unwrap(),
    ]);
    assert_eq!(mismatched.status.code(), Some(2), "{mismatched:?}");
    let stderr = String::from_utf8_lossy(&mismatched.stderr);
    assert!(stderr.contains("fitted for"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calibrate_flags_are_rejected_on_other_commands() {
    let out = bhive(&["measure", "--scale", "3", "--diff"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--diff"), "{stderr}");
}
