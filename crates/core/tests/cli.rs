//! End-to-end tests of the `bhive` binary: exit codes, help output, and
//! the measurement cache's warm/cold bit-identity as seen from the CLI.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bhive(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bhive"))
        .args(args)
        .env_remove("BHIVE_CACHE")
        .output()
        .expect("bhive binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bhive-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn help_flag_exits_zero_with_usage() {
    for args in [
        &["--help"][..],
        &["-h"][..],
        &["help"][..],
        // The historical failure: --help after a command was rejected
        // with "unknown option `--help`".
        &["table3", "--help"][..],
        &["measure", "-h"][..],
    ] {
        let out = bhive(args);
        assert!(out.status.success(), "{args:?}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("USAGE:"), "{args:?}: {stdout}");
        assert!(stdout.contains("--no-cache"), "{args:?}: {stdout}");
    }
}

#[test]
fn unknown_option_fails_loudly() {
    let out = bhive(&["table3", "--bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bogus"), "{stderr}");
}

#[test]
fn measure_with_cache_is_warm_and_bit_identical() {
    let dir = temp_dir("measure-cache");
    let dir_arg = dir.to_str().unwrap();
    let args = [
        "measure",
        "--scale",
        "3",
        "--threads",
        "2",
        "--cache",
        dir_arg,
    ];

    let cold = bhive(&args);
    assert!(cold.status.success(), "{cold:?}");
    let cold_stderr = String::from_utf8_lossy(&cold.stderr);
    assert!(cold_stderr.contains("disk cache:"), "{cold_stderr}");

    let warm = bhive(&args);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm CSV must be byte-identical to the cold run"
    );
    let warm_stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(warm_stderr.contains("0 misses"), "{warm_stderr}");

    // --no-cache measures from scratch and still agrees.
    let uncached = bhive(&["measure", "--scale", "3", "--threads", "2", "--no-cache"]);
    assert!(uncached.status.success(), "{uncached:?}");
    assert_eq!(cold.stdout, uncached.stdout);
    let uncached_stderr = String::from_utf8_lossy(&uncached.stderr);
    assert!(
        !uncached_stderr.contains("disk cache:"),
        "{uncached_stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
