//! The static out-of-order port scheduler shared by the IACA-like and
//! llvm-mca-like models.
//!
//! Unlike the ground-truth machine in `bhive-sim`, a static analyzer has
//! no operand values: loads always cost the L1 latency, division costs a
//! fixed table value, memory never aliases, and there are no caches or
//! measurement noise. Those assumptions are exactly the modeling gaps the
//! paper quantifies.

use crate::schedule::{Schedule, ScheduledUop};
use bhive_asm::{BasicBlock, Inst};
use bhive_uarch::{macro_fuses, Recipe, Uarch, UopKind};
use std::collections::HashMap;

/// Behavioural switches that differ between the modeled tools.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StaticParams {
    /// Model `cmp`/`test` + `jcc` macro-fusion.
    pub macro_fusion: bool,
}

impl Default for StaticParams {
    fn default() -> Self {
        StaticParams { macro_fusion: true }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DepKey {
    Gpr(u8),
    Vec(u8),
    Flags,
}

const NO_UOP: u32 = u32::MAX;

struct DynUop {
    ports: u8,
    latency: u32,
    blocking: u32,
    deps: Vec<u32>,
    inst_idx: usize,
    iteration: u32,
}

// NOTE: the dependency-tracking pre-pass below intentionally mirrors the
// one in `bhive-sim::timing` rather than sharing code with it — the
// static analyzers are a deliberately *independent twin* of the hardware
// (same pipeline skeleton, different and imperfect inputs), and models
// must not depend on the simulator crate. Flag semantics, however, are
// instruction facts and come from `bhive-asm`.
fn writes_flags(inst: &Inst) -> bool {
    inst.writes_flags()
}

fn reads_flags(inst: &Inst) -> bool {
    inst.reads_flags()
}

/// Simulates the block in a loop and returns `(throughput, schedule)`.
///
/// `recipes` must be parallel to `block.insts()` — each model supplies
/// its own (possibly perturbed or structurally wrong) recipes.
pub(crate) fn steady_state(
    block: &BasicBlock,
    recipes: &[Recipe],
    uarch: &Uarch,
    params: StaticParams,
    model_name: &str,
) -> (f64, Schedule) {
    let insts = block.insts();
    let n_insts = insts.len().max(1);
    // Iteration counts: a warm-up window, then two measured windows.
    let window = (2048 / n_insts).clamp(4, 24) as u32;
    let warmup = window / 2 + 2;
    let total_iters = warmup + 2 * window;

    // Macro-fusion: a fused branch consumes no extra slot.
    let mut fused = vec![false; insts.len()];
    if params.macro_fusion {
        for i in 1..insts.len() {
            if macro_fuses(&insts[i - 1], &insts[i], uarch) {
                fused[i] = true;
            }
        }
    }

    // ---- Build the dynamic uop stream with register dependencies ----
    let mut uops: Vec<DynUop> = Vec::with_capacity(total_iters as usize * n_insts);
    // (first, last, slots, eliminated) per dynamic instruction.
    let mut inst_meta: Vec<(u32, u32, u32, bool)> = Vec::new();
    let mut producers: HashMap<DepKey, u32> = HashMap::new();

    for iteration in 0..total_iters {
        for (inst_idx, inst) in insts.iter().enumerate() {
            let recipe = &recipes[inst_idx];
            let first = uops.len() as u32;
            let slots = if fused[inst_idx] {
                0
            } else {
                recipe.frontend_slots
            };

            if recipe.eliminated {
                if inst.is_zero_idiom() {
                    for reg in inst.gpr_writes() {
                        producers.remove(&DepKey::Gpr(reg.number()));
                    }
                    for vec in inst.vec_writes() {
                        producers.remove(&DepKey::Vec(vec.number()));
                    }
                    // Scalar idioms (`xor r, r`) also set flags at rename:
                    // consumers must not wait on the previous flag writer.
                    if !inst.mnemonic().is_sse() {
                        producers.remove(&DepKey::Flags);
                    }
                } else {
                    // Eliminated move: alias the destination to the source.
                    let gpr_alias = inst
                        .gpr_writes()
                        .first()
                        .copied()
                        .zip(inst.gpr_reads().first().copied());
                    if let Some((dst, src)) = gpr_alias {
                        match producers.get(&DepKey::Gpr(src.number())).copied() {
                            Some(p) => producers.insert(DepKey::Gpr(dst.number()), p),
                            None => producers.remove(&DepKey::Gpr(dst.number())),
                        };
                    } else if let Some((dst, src)) = inst
                        .vec_writes()
                        .first()
                        .copied()
                        .zip(inst.vec_reads().first().copied())
                    {
                        match producers.get(&DepKey::Vec(src.number())).copied() {
                            Some(p) => producers.insert(DepKey::Vec(dst.number()), p),
                            None => producers.remove(&DepKey::Vec(dst.number())),
                        };
                    }
                }
                inst_meta.push((first, first, slots, true));
                continue;
            }

            let addr_deps: Vec<u32> = inst
                .mem_operand()
                .map(|m| {
                    m.address_regs()
                        .filter_map(|r| producers.get(&DepKey::Gpr(r.number())).copied())
                        .collect()
                })
                .unwrap_or_default();
            let mut reg_deps: Vec<u32> = Vec::new();
            for reg in inst.gpr_reads() {
                if let Some(&p) = producers.get(&DepKey::Gpr(reg.number())) {
                    reg_deps.push(p);
                }
            }
            for vec in inst.vec_reads() {
                if let Some(&p) = producers.get(&DepKey::Vec(vec.number())) {
                    reg_deps.push(p);
                }
            }
            if reads_flags(inst) {
                if let Some(&p) = producers.get(&DepKey::Flags) {
                    reg_deps.push(p);
                }
            }

            let mut load_uop = NO_UOP;
            let mut last_compute = NO_UOP;
            for uop in &recipe.uops {
                let mut deps: Vec<u32> = Vec::new();
                match uop.kind {
                    UopKind::Load => deps.extend_from_slice(&addr_deps),
                    UopKind::Compute => {
                        deps.extend_from_slice(&reg_deps);
                        if load_uop != NO_UOP {
                            deps.push(load_uop);
                        }
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        }
                    }
                    UopKind::StoreAddr => deps.extend_from_slice(&addr_deps),
                    UopKind::StoreData => {
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        } else if load_uop != NO_UOP {
                            deps.push(load_uop);
                        } else {
                            deps.extend_from_slice(&reg_deps);
                        }
                    }
                }
                deps.sort_unstable();
                deps.dedup();
                let id = uops.len() as u32;
                uops.push(DynUop {
                    ports: uop.ports.mask(),
                    latency: uop.latency,
                    blocking: uop.blocking,
                    deps,
                    inst_idx,
                    iteration,
                });
                match uop.kind {
                    UopKind::Load => load_uop = id,
                    UopKind::Compute => last_compute = id,
                    _ => {}
                }
            }

            let result_uop = if last_compute != NO_UOP {
                last_compute
            } else {
                load_uop
            };
            if result_uop != NO_UOP {
                for reg in inst.gpr_writes() {
                    producers.insert(DepKey::Gpr(reg.number()), result_uop);
                }
                for vec in inst.vec_writes() {
                    producers.insert(DepKey::Vec(vec.number()), result_uop);
                }
                if writes_flags(inst) {
                    producers.insert(DepKey::Flags, result_uop);
                }
            }
            inst_meta.push((first, uops.len() as u32, slots, false));
        }
    }

    // ---- Cycle loop (rename / issue / retire) ----
    let total_insts = inst_meta.len();
    let mut completion = vec![u64::MAX; uops.len()];
    let mut start_cycle = vec![0u64; uops.len()];
    let mut assigned_port = vec![255u8; uops.len()];
    let mut waiting: Vec<u32> = Vec::new();
    let mut port_free = [0u64; 8];
    let mut next_rename = 0usize;
    let mut next_retire = 0usize;
    let mut rob_used = 0u32;
    let mut rs_used = 0u32;
    let mut rename_cycle = vec![0u64; total_insts];
    let mut retire_cycle = vec![0u64; total_insts];
    let mut cycle = 0u64;
    let max_cycles = 500_000u64 + uops.len() as u64 * 96;

    while next_retire < total_insts {
        let mut retired = 0;
        while next_retire < total_insts && retired < uarch.retire_width {
            let (first, last, _slots, eliminated) = inst_meta[next_retire];
            let done = next_retire < next_rename
                && (eliminated || (first..last).all(|u| completion[u as usize] <= cycle));
            if !done {
                break;
            }
            retire_cycle[next_retire] = cycle;
            rob_used = rob_used.saturating_sub(inst_meta[next_retire].2.max(1));
            next_retire += 1;
            retired += 1;
        }

        let mut still_waiting: Vec<u32> = Vec::with_capacity(waiting.len());
        for &uid in &waiting {
            let u = &uops[uid as usize];
            let ready = u.deps.iter().all(|&d| completion[d as usize] <= cycle);
            if !ready {
                still_waiting.push(uid);
                continue;
            }
            let mut best: Option<usize> = None;
            for p in 0..8 {
                if u.ports & (1 << p) != 0 && port_free[p] <= cycle {
                    best = match best {
                        Some(b) if port_free[b] <= port_free[p] => Some(b),
                        _ => Some(p),
                    };
                }
            }
            let Some(port) = best else {
                still_waiting.push(uid);
                continue;
            };
            start_cycle[uid as usize] = cycle;
            completion[uid as usize] = cycle + u64::from(u.latency.max(1));
            assigned_port[uid as usize] = port as u8;
            port_free[port] = cycle + u64::from(u.blocking.max(1));
            rs_used = rs_used.saturating_sub(1);
        }
        waiting = still_waiting;

        let mut slots_left = uarch.issue_width;
        while next_rename < total_insts && slots_left > 0 {
            let (first, last, slots, eliminated) = inst_meta[next_rename];
            let uop_count = last - first;
            if rob_used + slots.max(1) > uarch.rob_size
                || rs_used + uop_count > uarch.rs_size
                || slots > slots_left
            {
                break;
            }
            rename_cycle[next_rename] = cycle;
            rob_used += slots.max(1);
            if !eliminated {
                for uid in first..last {
                    waiting.push(uid);
                }
                rs_used += uop_count;
            }
            slots_left -= slots.min(slots_left);
            next_rename += 1;
        }

        cycle += 1;
        if cycle > max_cycles {
            break;
        }
    }

    // Throughput: difference of window-end retire times over the window.
    let iter_end = |iteration: u32| -> u64 {
        let last_inst = ((iteration + 1) as usize) * n_insts - 1;
        retire_cycle[last_inst.min(total_insts - 1)]
    };
    let w1_end = iter_end(warmup + window - 1);
    let w2_end = iter_end(warmup + 2 * window - 1);
    let throughput = (w2_end.saturating_sub(w1_end)) as f64 / f64::from(window);

    // Schedule window: two steady-state iterations.
    let sched_iters = [warmup + window, warmup + window + 1];
    let mut sched_uops: Vec<ScheduledUop> = Vec::new();
    for (uid, u) in uops.iter().enumerate() {
        if sched_iters.contains(&u.iteration) {
            sched_uops.push(ScheduledUop {
                inst_idx: u.inst_idx,
                iteration: u.iteration - sched_iters[0],
                start: start_cycle[uid],
                end: completion[uid],
                port: assigned_port[uid],
            });
        }
    }
    // Include eliminated instructions as zero-width marks at rename.
    for (dyn_idx, &(first, last, _, eliminated)) in inst_meta.iter().enumerate() {
        if eliminated && first == last {
            let iteration = (dyn_idx / n_insts) as u32;
            if sched_iters.contains(&iteration) {
                sched_uops.push(ScheduledUop {
                    inst_idx: dyn_idx % n_insts,
                    iteration: iteration - sched_iters[0],
                    start: rename_cycle[dyn_idx],
                    end: rename_cycle[dyn_idx],
                    port: 255,
                });
            }
        }
    }
    sched_uops.sort_by_key(|u| (u.iteration, u.inst_idx, u.start));

    let schedule = Schedule {
        model: model_name.to_string(),
        throughput,
        uops: sched_uops,
        inst_texts: insts.iter().map(|i| i.to_string()).collect(),
    };
    (throughput, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;
    use bhive_uarch::{decompose, Uarch};

    fn tp(text: &str) -> f64 {
        let block = parse_block(text).unwrap();
        let uarch = Uarch::haswell();
        let recipes: Vec<Recipe> = block.iter().map(|i| decompose(i, uarch)).collect();
        steady_state(&block, &recipes, uarch, StaticParams::default(), "test").0
    }

    #[test]
    fn throughput_bounds() {
        // Four independent adds: port bound ~1/iter.
        let t = tp("add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rsi, 1");
        assert!((0.9..=1.3).contains(&t), "{t}");
        // Dependent chain: latency bound ~4/iter.
        let t = tp("add rax, 1\nadd rax, 1\nadd rax, 1\nadd rax, 1");
        assert!((3.7..=4.3).contains(&t), "{t}");
        // imul chain: 3/iter.
        let t = tp("imul rax, rbx");
        assert!((2.7..=3.3).contains(&t), "{t}");
    }

    #[test]
    fn zero_idiom_with_hardware_tables() {
        let t = tp("vxorps xmm2, xmm2, xmm2");
        assert!(t <= 0.5, "eliminated idiom: {t}");
    }

    #[test]
    fn schedule_window_is_steady() {
        let block = parse_block("add rax, 1\nimul rbx, rax").unwrap();
        let uarch = Uarch::haswell();
        let recipes: Vec<Recipe> = block.iter().map(|i| decompose(i, uarch)).collect();
        let (tp, sched) = steady_state(&block, &recipes, uarch, StaticParams::default(), "t");
        assert!(tp > 0.0);
        // Both iterations of both instructions present.
        for inst in 0..2 {
            for it in 0..2 {
                assert!(
                    sched.dispatch_cycle(inst, it).is_some(),
                    "missing inst {inst} iter {it}"
                );
            }
        }
        // Iteration 1 dispatches after iteration 0.
        assert!(sched.dispatch_cycle(0, 1) >= sched.dispatch_cycle(0, 0));
    }
}
