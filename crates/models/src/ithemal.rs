//! The Ithemal-like learned throughput predictor.

use crate::features::{block_features, FEATURE_DIMS};
use crate::{isa_unsupported, ThroughputModel};
use bhive_asm::BasicBlock;
use bhive_learn::regress::{SgdConfig, SgdRegressor};
use bhive_uarch::UarchKind;
use serde::{Deserialize, Serialize};

/// Training configuration for the learned model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IthemalConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Seed for shuffling/initialization.
    pub seed: u64,
}

impl Default for IthemalConfig {
    fn default() -> Self {
        IthemalConfig {
            epochs: 400,
            learning_rate: 0.12,
            seed: 0x17E3,
        }
    }
}

/// A learned basic-block throughput predictor in the spirit of Ithemal:
/// trained end-to-end on *measured* data, producing one number per block
/// with no interpretable schedule.
///
/// Like the original — whose authors attribute its weakness on vectorized
/// blocks to training-set imbalance — this model is only as good as the
/// measured corpus it was fitted to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IthemalModel {
    kind: UarchKind,
    /// A small bagged ensemble; predictions are averaged in log space.
    regressors: Vec<SgdRegressor>,
    trained_on: usize,
}

impl IthemalModel {
    /// Trains on `(block, measured_throughput)` pairs.
    ///
    /// The target is log-throughput, which makes the squared loss a
    /// relative-error surrogate (Ithemal trains the same way).
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or contains non-positive
    /// throughputs.
    pub fn train(
        data: &[(BasicBlock, f64)],
        kind: UarchKind,
        config: IthemalConfig,
    ) -> IthemalModel {
        assert!(!data.is_empty(), "empty training set");
        let mut xs = Vec::with_capacity(data.len());
        let mut ys = Vec::with_capacity(data.len());
        for (block, tp) in data {
            assert!(*tp > 0.0, "non-positive measured throughput {tp}");
            xs.push(block_features(block, kind));
            ys.push(tp.ln());
        }
        // Bagged ensemble: the same data, different shuffle orders.
        let regressors = (0..5)
            .map(|k| {
                SgdRegressor::train(
                    &xs,
                    &ys,
                    SgdConfig {
                        epochs: config.epochs,
                        learning_rate: config.learning_rate,
                        l2: 1e-6,
                        seed: config.seed.wrapping_add(k * 0x9E37),
                    },
                )
            })
            .collect();
        IthemalModel {
            kind,
            regressors,
            trained_on: data.len(),
        }
    }

    /// Number of training examples the model was fitted to.
    pub fn training_set_size(&self) -> usize {
        self.trained_on
    }
}

impl ThroughputModel for IthemalModel {
    fn name(&self) -> &'static str {
        "ithemal"
    }

    fn uarch(&self) -> UarchKind {
        self.kind
    }

    fn predict(&self, block: &BasicBlock) -> Option<f64> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        let features = block_features(block, self.kind);
        debug_assert_eq!(features.len(), FEATURE_DIMS);
        let mean_log = self
            .regressors
            .iter()
            .map(|r| r.predict(&features))
            .sum::<f64>()
            / self.regressors.len() as f64;
        // Sanity envelope: a linear model extrapolates badly far off its
        // training distribution, but no throughput predictor would report
        // values wildly outside the analytic port/chain bounds.
        let max_bound = features[21].max(0.25);
        let lo = (max_bound / 8.0).max(0.2).ln();
        let hi = (max_bound * 8.0 + 4.0).ln();
        Some(mean_log.clamp(lo, hi).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    /// A toy "measured" corpus with simple analytic throughputs.
    fn toy_training_set() -> Vec<(BasicBlock, f64)> {
        let mut data = Vec::new();
        for n in 1..=6 {
            // n independent adds: throughput ~ n/4.
            let text = (0..n)
                .map(|i| format!("add r{}, 1", 8 + i))
                .collect::<Vec<_>>()
                .join("\n");
            data.push((parse_block(&text).unwrap(), (n as f64 / 4.0).max(0.25)));
            // n dependent imuls: throughput ~ 3n.
            let text = (0..n)
                .map(|_| "imul rax, rax".to_string())
                .collect::<Vec<_>>()
                .join("\n");
            data.push((parse_block(&text).unwrap(), 3.0 * n as f64));
        }
        data
    }

    #[test]
    fn learns_the_toy_corpus() {
        let data = toy_training_set();
        let config = IthemalConfig {
            epochs: 800,
            learning_rate: 0.2,
            seed: 1,
        };
        let model = IthemalModel::train(&data, UarchKind::Haswell, config);
        for (block, measured) in &data {
            let predicted = model.predict(block).unwrap();
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.6,
                "block\n{block}\npredicted {predicted:.2}, measured {measured:.2}"
            );
        }
        assert_eq!(model.training_set_size(), data.len());
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_training_set();
        let a = IthemalModel::train(&data, UarchKind::Haswell, IthemalConfig::default());
        let b = IthemalModel::train(&data, UarchKind::Haswell, IthemalConfig::default());
        let block = parse_block("add rax, 1").unwrap();
        assert_eq!(a.predict(&block), b.predict(&block));
    }

    #[test]
    fn no_schedule_output() {
        let data = toy_training_set();
        let model = IthemalModel::train(&data, UarchKind::Haswell, IthemalConfig::default());
        let block = parse_block("add rax, 1").unwrap();
        // "Ithemal is not a simulator ... without reporting an
        // interpretable execution trace."
        assert!(model.schedule(&block).is_none());
    }
}
