//! Deterministic table perturbation.
//!
//! Real cost models are wrong in *systematic* ways: a tool that believes
//! `pmulld` has latency 7 believes it everywhere. We reproduce that by
//! perturbing the hardware tables per (mnemonic, width) with a seeded
//! hash, so each modeled tool has its own consistent set of table errors
//! whose overall magnitude is one tunable number.

use bhive_asm::Inst;
use bhive_uarch::Recipe;

/// SplitMix64: cheap, high-quality stateless mixing.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Applies a tool's systematic table error to a recipe, in place.
///
/// `strength` ∈ [0, 1] controls how many table entries are wrong; the
/// same (mnemonic, width, seed) always perturbs the same way.
pub(crate) fn perturb_recipe(recipe: &mut Recipe, inst: &Inst, seed: u64, strength: f64) {
    if recipe.eliminated {
        return;
    }
    let key = mix(seed ^ ((inst.mnemonic() as u64) << 8) ^ u64::from(inst.width_bytes()));
    for (slot, uop) in recipe.uops.iter_mut().enumerate() {
        let h = mix(key ^ (slot as u64));
        // Smooth multiplicative latency error in [1-s, 1+s), hashed per
        // (mnemonic, width): a tool that believes a wrong latency
        // believes it everywhere, and calibration stays continuous.
        let frac = (h & 0xFFFF) as f64 / 65536.0 - 0.5;
        let scale = 1.0 + 2.0 * strength * frac;
        let scaled = (f64::from(uop.latency) * scale).round();
        uop.latency = (scaled as i64).clamp(1, 150) as u32;
        if uop.blocking > 1 {
            let blocked = (f64::from(uop.blocking) * scale).round();
            uop.blocking = (blocked as i64).clamp(1, 150) as u32;
        }
        let roll2 = ((h >> 24) & 0xFFFF) as f64 / 65536.0;
        if roll2 < strength / 2.0 && uop.ports.len() > 1 {
            // Wrong port assignment: the tool believes the uop is more
            // restricted than it is (drop the highest port).
            let keep: Vec<_> = uop.ports.iter().collect();
            let dropped: bhive_uarch::PortSet = keep[..keep.len() - 1].iter().copied().collect();
            uop.ports = dropped;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_inst;
    use bhive_uarch::{decompose, Uarch};

    #[test]
    fn perturbation_is_systematic() {
        let inst = parse_inst("imul rax, rbx").unwrap();
        let uarch = Uarch::haswell();
        let mut a = decompose(&inst, uarch);
        let mut b = decompose(&inst, uarch);
        perturb_recipe(&mut a, &inst, 42, 0.8);
        perturb_recipe(&mut b, &inst, 42, 0.8);
        assert_eq!(a, b, "same seed, same error");
        let mut c = decompose(&inst, uarch);
        perturb_recipe(&mut c, &inst, 43, 0.8);
        // A different seed perturbs differently for at least some
        // instructions; probabilistically check a batch.
        let mut any_diff = a != c;
        for text in ["add rax, rbx", "mulps xmm0, xmm1", "popcnt rax, rbx"] {
            let inst = parse_inst(text).unwrap();
            let mut x = decompose(&inst, uarch);
            let mut y = decompose(&inst, uarch);
            perturb_recipe(&mut x, &inst, 42, 0.8);
            perturb_recipe(&mut y, &inst, 43, 0.8);
            any_diff |= x != y;
        }
        assert!(any_diff);
    }

    #[test]
    fn zero_strength_is_identity() {
        let uarch = Uarch::haswell();
        for text in ["add rax, rbx", "imul rax, rbx", "divps xmm0, xmm1"] {
            let inst = parse_inst(text).unwrap();
            let clean = decompose(&inst, uarch);
            let mut p = clean.clone();
            perturb_recipe(&mut p, &inst, 7, 0.0);
            assert_eq!(clean, p, "{text}");
        }
    }

    #[test]
    fn latencies_stay_positive() {
        let uarch = Uarch::haswell();
        for text in ["add rax, rbx", "xorps xmm0, xmm1", "movzx eax, bl"] {
            let inst = parse_inst(text).unwrap();
            for seed in 0..50 {
                let mut r = decompose(&inst, uarch);
                perturb_recipe(&mut r, &inst, seed, 1.0);
                for uop in &r.uops {
                    assert!(uop.latency >= 1);
                    assert!(!uop.ports.is_empty());
                }
            }
        }
    }
}
