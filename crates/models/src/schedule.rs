//! Predicted execution schedules (for the paper's Fig. "scheduling").

use serde::{Deserialize, Serialize};
use std::fmt;

/// One scheduled micro-op in a model's predicted trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledUop {
    /// Index of the instruction within the block.
    pub inst_idx: usize,
    /// Which simulated iteration the uop belongs to.
    pub iteration: u32,
    /// Dispatch cycle.
    pub start: u64,
    /// Completion cycle.
    pub end: u64,
    /// Execution port the model assigned (255 = eliminated at rename).
    pub port: u8,
}

/// A model's predicted schedule over a few steady-state iterations,
/// together with its throughput estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Tool that produced the schedule.
    pub model: String,
    /// Steady-state cycles per iteration.
    pub throughput: f64,
    /// The scheduled uops (a steady-state window, earliest first).
    pub uops: Vec<ScheduledUop>,
    /// Textual form of each instruction (for rendering).
    pub inst_texts: Vec<String>,
}

impl Schedule {
    /// Renders the schedule as an ASCII timeline, one row per uop, like
    /// the paper's scheduling figure. `width` caps the number of cycle
    /// columns.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        let base = self.uops.iter().map(|u| u.start).min().unwrap_or(0);
        writeln!(
            out,
            "{} schedule (throughput {:.2} cycles/iter):",
            self.model, self.throughput
        )
        .expect("write to String");
        for uop in &self.uops {
            let start = (uop.start - base) as usize;
            let end = (uop.end - base) as usize;
            let mut line = String::new();
            for cycle in 0..width {
                line.push(if cycle >= start && cycle < end {
                    if uop.port == 255 {
                        '~'
                    } else {
                        '='
                    }
                } else if cycle == start && start == end {
                    '|'
                } else {
                    ' '
                });
            }
            let port = if uop.port == 255 {
                "--".to_string()
            } else {
                format!("p{}", uop.port)
            };
            writeln!(
                out,
                "it{} {:>3} |{}| {}",
                uop.iteration,
                port,
                line,
                self.inst_texts
                    .get(uop.inst_idx)
                    .map(String::as_str)
                    .unwrap_or("?")
            )
            .expect("write to String");
        }
        out
    }

    /// Dispatch cycle of instruction `inst_idx` in iteration `iteration`
    /// (minimum over its uops), if present in the window.
    pub fn dispatch_cycle(&self, inst_idx: usize, iteration: u32) -> Option<u64> {
        self.uops
            .iter()
            .filter(|u| u.inst_idx == inst_idx && u.iteration == iteration)
            .map(|u| u.start)
            .min()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows() {
        let sched = Schedule {
            model: "iaca".into(),
            throughput: 2.0,
            uops: vec![
                ScheduledUop {
                    inst_idx: 0,
                    iteration: 0,
                    start: 0,
                    end: 1,
                    port: 0,
                },
                ScheduledUop {
                    inst_idx: 1,
                    iteration: 0,
                    start: 1,
                    end: 4,
                    port: 1,
                },
            ],
            inst_texts: vec!["add rax, 1".into(), "imul rbx, rcx".into()],
        };
        let text = sched.render(10);
        assert!(text.contains("add rax, 1"));
        assert!(text.contains("imul rbx, rcx"));
        assert!(text.contains("p1"));
        assert_eq!(sched.dispatch_cycle(1, 0), Some(1));
        assert_eq!(sched.dispatch_cycle(2, 0), None);
    }
}
