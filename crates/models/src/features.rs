//! Feature extraction for the learned (Ithemal-like) model.

use bhive_asm::{BasicBlock, Mnemonic, MnemonicClass, Operand, VecWidth};
use bhive_uarch::{decompose, UarchKind};
use std::collections::HashMap;

/// Number of features produced by [`block_features`].
pub const FEATURE_DIMS: usize = 31;

/// Extracts the feature vector the Ithemal-like regressor consumes.
///
/// The features are functions of the block text plus *publicly derivable*
/// structure (uop counts and analytic throughput bounds computed from the
/// port tables) — the kind of information a token-level neural model
/// learns to extract from raw assembly.
pub fn block_features(block: &BasicBlock, kind: UarchKind) -> Vec<f64> {
    let uarch = kind.desc();
    let mut n_loads = 0f64;
    let mut n_stores = 0f64;
    let mut n_vec = 0f64;
    let mut n_ymm = 0f64;
    let mut n_div = 0f64;
    let mut n_mul = 0f64;
    let mut n_shift = 0f64;
    let mut n_fp_arith = 0f64;
    let mut n_fma = 0f64;
    let mut n_shuffle = 0f64;
    let mut n_branchy = 0f64;
    let mut n_eliminated = 0f64;
    let mut uop_count = 0f64;
    let mut slot_count = 0f64;
    let mut pressure = [0f64; 8];
    let mut longest_blocking = 0f64;
    // Memory-dependence signals the static analyzers cannot act on but a
    // learned model can: pointer chasing (a loaded value later used as an
    // address) and store-to-load forwarding within the block.
    let mut n_ptr_chase = 0f64;
    let mut n_store_forward = 0f64;
    let mut loaded_regs: Vec<u8> = Vec::new();
    let mut store_sites: Vec<(Option<u8>, i32)> = Vec::new();

    for inst in block.iter() {
        let class = inst.mnemonic().class();
        if let Some(mem) = inst.mem_operand() {
            let site = (mem.base.map(|r| r.number()), mem.disp);
            for reg in mem.address_regs() {
                if loaded_regs.contains(&reg.number()) {
                    n_ptr_chase += 1.0;
                }
            }
            if inst.loads_memory() && store_sites.contains(&site) {
                n_store_forward += 1.0;
            }
            if inst.stores_memory() {
                store_sites.push(site);
            }
        }
        if inst.loads_memory() {
            n_loads += 1.0;
            for reg in inst.gpr_writes() {
                if !loaded_regs.contains(&reg.number()) {
                    loaded_regs.push(reg.number());
                }
            }
        }
        if inst.stores_memory() {
            n_stores += 1.0;
        }
        if inst.mnemonic().is_sse() {
            n_vec += 1.0;
        }
        if inst
            .operands()
            .iter()
            .any(|op| matches!(op, Operand::Vec(v) if v.width() == VecWidth::Ymm))
        {
            n_ymm += 1.0;
        }
        match class {
            MnemonicClass::Div | MnemonicClass::FpDiv | MnemonicClass::FpSqrt => n_div += 1.0,
            MnemonicClass::Mul | MnemonicClass::VecIntMul => n_mul += 1.0,
            MnemonicClass::Shift | MnemonicClass::VecShift => n_shift += 1.0,
            MnemonicClass::FpAdd | MnemonicClass::FpMul | MnemonicClass::Fma => {
                n_fp_arith += 1.0;
                if class == MnemonicClass::Fma {
                    n_fma += 1.0;
                }
            }
            MnemonicClass::VecShuffle => n_shuffle += 1.0,
            MnemonicClass::CondMove | MnemonicClass::CondSet | MnemonicClass::Branch => {
                n_branchy += 1.0;
            }
            _ => {}
        }
        let recipe = decompose(inst, uarch);
        if recipe.eliminated {
            n_eliminated += 1.0;
        }
        uop_count += recipe.uops.len() as f64;
        slot_count += f64::from(recipe.frontend_slots);
        for uop in &recipe.uops {
            let ports: Vec<_> = uop.ports.iter().collect();
            let share = f64::from(uop.blocking.max(1)) / ports.len().max(1) as f64;
            for p in ports {
                pressure[p.index() as usize] += share;
            }
            longest_blocking = longest_blocking.max(f64::from(uop.blocking));
        }
    }

    // Analytic bounds: port-pressure bound and a steady-state critical
    // path computed over two unrolled copies (difference isolates the
    // loop-carried chain).
    let pressure_bound = pressure.iter().copied().fold(0.0f64, f64::max);
    let chain2 = chain_depth(block, kind, 2);
    let chain1 = chain_depth(block, kind, 1);
    let carried_chain = (chain2 - chain1).max(0.0);
    let frontend_bound = slot_count / f64::from(uarch.issue_width);
    let max_bound = pressure_bound.max(carried_chain).max(frontend_bound);

    vec![
        block.len() as f64,
        block.encoded_len().unwrap_or(block.len() * 4) as f64,
        n_loads,
        n_stores,
        n_vec,
        n_ymm,
        n_div,
        n_mul,
        n_shift,
        n_fp_arith,
        n_fma,
        n_shuffle,
        n_branchy,
        n_eliminated,
        uop_count,
        slot_count,
        pressure_bound,
        chain1,
        carried_chain,
        frontend_bound,
        longest_blocking,
        // The max of the three classic bounds — itself a strong predictor
        // the learned model can calibrate.
        max_bound,
        // Log-scale copies of the bound features: the regression target is
        // log-throughput, so these make the dominant relationship linear.
        max_bound.max(1e-3).ln(),
        pressure_bound.max(1e-3).ln(),
        (carried_chain + 1.0).ln(),
        (frontend_bound + 1.0).ln(),
        (block.len() as f64).ln(),
        (uop_count + 1.0).ln(),
        (longest_blocking + 1.0).ln(),
        n_ptr_chase,
        n_store_forward,
    ]
}

/// Critical-path latency of `copies` unrolled copies of the block, using
/// per-uarch latencies and register/flag dependencies.
fn chain_depth(block: &BasicBlock, kind: UarchKind, copies: usize) -> f64 {
    let uarch = kind.desc();
    let mut ready: HashMap<u8, f64> = HashMap::new(); // gpr number -> ready time
    let mut vec_ready: HashMap<u8, f64> = HashMap::new();
    let mut flags_ready = 0f64;
    let mut depth = 0f64;

    for _ in 0..copies {
        for inst in block.iter() {
            let recipe = decompose(inst, uarch);
            let latency: f64 = recipe.uops.iter().map(|u| f64::from(u.latency)).sum();
            let mut start = 0f64;
            for reg in inst.gpr_reads() {
                start = start.max(*ready.get(&reg.number()).unwrap_or(&0.0));
            }
            for vec in inst.vec_reads() {
                start = start.max(*vec_ready.get(&vec.number()).unwrap_or(&0.0));
            }
            if matches!(
                inst.mnemonic(),
                Mnemonic::Adc | Mnemonic::Sbb | Mnemonic::Cmov | Mnemonic::Set | Mnemonic::Jcc
            ) {
                start = start.max(flags_ready);
            }
            let end = if recipe.eliminated {
                start
            } else {
                start + latency
            };
            for reg in inst.gpr_writes() {
                ready.insert(reg.number(), end);
            }
            for vec in inst.vec_writes() {
                vec_ready.insert(vec.number(), end);
            }
            if matches!(
                inst.mnemonic().class(),
                MnemonicClass::Alu | MnemonicClass::Shift | MnemonicClass::Mul
            ) {
                flags_ready = end;
            }
            depth = depth.max(end);
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    #[test]
    fn dims_are_stable() {
        let block = parse_block("add rax, 1\nmov rbx, qword ptr [rcx]").unwrap();
        let f = block_features(&block, UarchKind::Haswell);
        assert_eq!(f.len(), FEATURE_DIMS);
    }

    #[test]
    fn features_reflect_structure() {
        let scalar = parse_block("add rax, 1\nadd rbx, 2").unwrap();
        let vector = parse_block("vfmadd231ps ymm0, ymm1, ymm2").unwrap();
        let fs = block_features(&scalar, UarchKind::Haswell);
        let fv = block_features(&vector, UarchKind::Haswell);
        // Vector counts.
        assert_eq!(fs[4], 0.0);
        assert_eq!(fv[4], 1.0);
        assert_eq!(fv[5], 1.0, "ymm presence");
        assert_eq!(fv[10], 1.0, "fma count");
    }

    #[test]
    fn carried_chain_detects_dependences() {
        let chained = parse_block("imul rax, rax").unwrap();
        let independent = parse_block("imul rax, rbx").unwrap();
        let fc = block_features(&chained, UarchKind::Haswell);
        let fi = block_features(&independent, UarchKind::Haswell);
        // Feature 18 is the loop-carried chain.
        assert!(fc[18] >= 3.0, "chained imul: {}", fc[18]);
        // `imul rax, rbx` still chains through rax (it reads rax too),
        // so compare against a truly independent producer.
        let free = parse_block("mov rax, 1").unwrap();
        let ff = block_features(&free, UarchKind::Haswell);
        assert!(ff[18] <= fi[18]);
    }

    #[test]
    fn bound_feature_dominates() {
        let block = parse_block("div ecx").unwrap();
        let f = block_features(&block, UarchKind::Haswell);
        let max_bound = f[21];
        assert!(max_bound >= f[16] && max_bound >= f[18]);
        assert!(max_bound > 10.0, "divider occupancy dominates: {max_bound}");
        // And the log copy is consistent.
        assert!((f[22] - max_bound.ln()).abs() < 1e-9);
    }
}
