//! The OSACA-like analyzer.

use crate::perturb::{mix, perturb_recipe};
use crate::{isa_unsupported, ThroughputModel};
use bhive_asm::{BasicBlock, Inst, MnemonicClass, Operand};
use bhive_uarch::{decompose, UarchKind, VarLat};

/// OSACA: an open-source port-pressure analyzer driven by measured
/// per-instruction tables.
///
/// Modeled faults, as reported in the paper ("we found and reported five
/// bugs related to OSACA's instruction parser"):
///
/// * instructions with an immediate operand and a memory destination
///   (`add [rbx], 1`) are silently treated as **nops**, under-reporting
///   throughput;
/// * byte-wide memory ALU forms (`xor al, [rdi-1]`) crash the parser —
///   the tool returns no prediction at all (the "-" entries in the
///   case-study table);
/// * throughput is pure *port pressure*: dependency chains are invisible,
///   so latency-bound blocks are badly under-predicted (12.25 vs 21.62 on
///   the division block);
/// * its community-measured tables carry the largest systematic error of
///   the four tools.

#[derive(Debug, Clone)]
pub struct OsacaModel {
    kind: UarchKind,
    strength: f64,
    seed: u64,
}

impl OsacaModel {
    /// OSACA targeting `kind`, with calibrated default table noise.
    pub fn new(kind: UarchKind) -> OsacaModel {
        OsacaModel {
            kind,
            strength: 0.95,
            seed: 0x05AC,
        }
    }

    /// Overrides the table-noise strength (used by calibration tests).
    pub fn with_strength(mut self, strength: f64) -> OsacaModel {
        self.strength = strength;
        self
    }

    /// The parser gap: immediate-to-memory forms parse as nops.
    fn parses_as_nop(inst: &Inst) -> bool {
        inst.mem_operand_index() == Some(0)
            && inst
                .operands()
                .iter()
                .any(|op| matches!(op, Operand::Imm(_)))
            && inst.stores_memory()
    }

    /// The parser crash: byte-wide memory ALU forms.
    fn parser_crashes(inst: &Inst) -> bool {
        matches!(
            inst.mnemonic().class(),
            MnemonicClass::Alu | MnemonicClass::Shift
        ) && inst.mem_operand().map(|m| m.width == 1).unwrap_or(false)
    }
}

impl ThroughputModel for OsacaModel {
    fn name(&self) -> &'static str {
        "osaca"
    }

    fn uarch(&self) -> UarchKind {
        self.kind
    }

    fn predict(&self, block: &BasicBlock) -> Option<f64> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        if block.iter().any(Self::parser_crashes) {
            return None;
        }
        let uarch = self.kind.desc();
        let mut pressure = [0f64; 8];
        for inst in block.iter() {
            if Self::parses_as_nop(inst) {
                continue;
            }
            let mut recipe = decompose(inst, uarch);
            // OSACA's tables do not know rename-time elimination: a zero
            // idiom is charged like a regular (single-port) vector XOR —
            // the paper's case study shows it reporting 1.00 for
            // `vxorps xmm2, xmm2, xmm2`.
            if recipe.eliminated {
                if inst.mnemonic().is_sse() {
                    pressure[5] += 1.0;
                } else {
                    pressure[0] += 0.25;
                }
                continue;
            }
            perturb_recipe(&mut recipe, inst, self.seed, self.strength);
            for uop in &mut recipe.uops {
                // Its table lists a *reciprocal throughput* for division
                // far below the true non-pipelined occupancy (applied
                // after the generic table noise so it stays low).
                if matches!(uop.var_lat, Some(VarLat::DivGpr { .. })) {
                    uop.blocking = 10;
                }
            }
            // The community-measured reciprocal-throughput tables carry a
            // wide systematic miscalibration per instruction form.
            let h =
                mix(self.seed ^ ((inst.mnemonic() as u64) << 16) ^ u64::from(inst.width_bytes()));
            let miscal = 1.0 + self.strength * ((h & 0xFFFF) as f64 / 65536.0 - 0.5);
            for uop in &recipe.uops {
                let ports: Vec<_> = uop.ports.iter().collect();
                let share = miscal * f64::from(uop.blocking.max(1)) / ports.len() as f64;
                for port in ports {
                    pressure[port.index() as usize] += share;
                }
            }
        }
        let tp = pressure.iter().copied().fold(0.0f64, f64::max);
        // An all-nop parse still reports the frontend minimum.
        Some(tp.max(block.len() as f64 / f64::from(uarch.issue_width) * 0.25))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    #[test]
    fn underpredicts_latency_bound_division() {
        let block = parse_block("xor edx, edx\ndiv ecx\ntest edx, edx").unwrap();
        let tp = OsacaModel::new(UarchKind::Haswell).predict(&block).unwrap();
        // Paper: OSACA predicts 12.25 vs measured 21.62.
        assert!((5.0..=17.0).contains(&tp), "pressure-only estimate: {tp}");
    }

    #[test]
    fn imm_to_memory_is_a_nop() {
        let with_rmw = parse_block("add qword ptr [rbx], 1\nimul rax, rcx").unwrap();
        let without = parse_block("imul rax, rcx").unwrap();
        let model = OsacaModel::new(UarchKind::Haswell);
        let a = model.predict(&with_rmw).unwrap();
        let b = model.predict(&without).unwrap();
        // The RMW contributes (almost) nothing.
        assert!(a - b < 0.6, "rmw treated as nop: {a} vs {b}");
    }

    #[test]
    fn byte_memory_alu_crashes_parser() {
        let block = parse_block("xor al, byte ptr [rdi - 1]").unwrap();
        assert!(OsacaModel::new(UarchKind::Haswell)
            .predict(&block)
            .is_none());
    }

    #[test]
    fn treats_zero_idiom_as_cheap_but_not_free() {
        let block = parse_block("vxorps xmm2, xmm2, xmm2").unwrap();
        let tp = OsacaModel::new(UarchKind::Haswell).predict(&block).unwrap();
        // Paper: OSACA reports 1.00.
        assert!((0.9..=1.2).contains(&tp), "{tp}");
    }
}
