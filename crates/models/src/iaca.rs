//! The IACA-like analyzer.

use crate::perturb::perturb_recipe;
use crate::schedule::Schedule;
use crate::scheduler::{steady_state, StaticParams};
use crate::{isa_unsupported, ThroughputModel};
use bhive_asm::{BasicBlock, Mnemonic};
use bhive_uarch::{decompose, Recipe, UarchKind, VarLat};

/// Intel Architecture Code Analyzer.
///
/// IACA's defining property in the paper is *insider knowledge*: it
/// models the proprietary zero-idiom and fusion optimizations, which is
/// why it is "generally recognized as the more accurate analyzer". Its
/// defining bug (case-study block 1) is costing `div r32` like the
/// 128-by-64-bit `div r64` — and missing the zeroed-`rdx` fast path
/// either way.
#[derive(Debug, Clone)]
pub struct IacaModel {
    kind: UarchKind,
    /// Table-error magnitude (calibrated against Table 5).
    strength: f64,
    seed: u64,
}

impl IacaModel {
    /// IACA targeting `kind`, with calibrated default table noise.
    /// Intel's own tool tracks its newest microarchitecture best
    /// (the paper's Table 5: IACA's Skylake error is its lowest).
    pub fn new(kind: UarchKind) -> IacaModel {
        let strength = match kind {
            UarchKind::Skylake => 0.2,
            _ => 0.28,
        };
        IacaModel {
            kind,
            strength,
            seed: 0x1ACA,
        }
    }

    /// Overrides the table-noise strength (used by calibration tests).
    pub fn with_strength(mut self, strength: f64) -> IacaModel {
        self.strength = strength;
        self
    }

    fn recipes(&self, block: &BasicBlock) -> Vec<Recipe> {
        let uarch = self.kind.desc();
        block
            .iter()
            .map(|inst| {
                let mut recipe = decompose(inst, uarch);
                // The division confusion: every GPR divide is costed as
                // the slowest 64-bit form, fast path ignored.
                if matches!(inst.mnemonic(), Mnemonic::Div | Mnemonic::Idiv) {
                    for uop in &mut recipe.uops {
                        if matches!(uop.var_lat, Some(VarLat::DivGpr { .. })) {
                            let slow = match self.kind {
                                UarchKind::Skylake => 42,
                                _ => 95,
                            };
                            uop.latency = slow;
                            uop.blocking = slow;
                        }
                    }
                } else {
                    perturb_recipe(&mut recipe, inst, self.seed, self.strength);
                }
                recipe
            })
            .collect()
    }
}

impl ThroughputModel for IacaModel {
    fn name(&self) -> &'static str {
        "iaca"
    }

    fn uarch(&self) -> UarchKind {
        self.kind
    }

    fn predict(&self, block: &BasicBlock) -> Option<f64> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        let recipes = self.recipes(block);
        let (tp, _) = steady_state(
            block,
            &recipes,
            self.kind.desc(),
            StaticParams { macro_fusion: true },
            self.name(),
        );
        Some(tp)
    }

    fn schedule(&self, block: &BasicBlock) -> Option<Schedule> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        let recipes = self.recipes(block);
        let (_, schedule) = steady_state(
            block,
            &recipes,
            self.kind.desc(),
            StaticParams { macro_fusion: true },
            self.name(),
        );
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    #[test]
    fn recognizes_zero_idiom() {
        let block = parse_block("vxorps xmm2, xmm2, xmm2").unwrap();
        let model = IacaModel::new(UarchKind::Haswell);
        let tp = model.predict(&block).unwrap();
        // Paper case study: IACA predicts 0.24 (measured 0.25).
        assert!(tp <= 0.5, "IACA should see the idiom: {tp}");
    }

    #[test]
    fn division_grossly_overpredicted() {
        let block = parse_block("xor edx, edx\ndiv ecx\ntest edx, edx").unwrap();
        let model = IacaModel::new(UarchKind::Haswell);
        let tp = model.predict(&block).unwrap();
        // Paper: measured 21.62, IACA predicts 98.
        assert!(tp > 60.0, "div confusion must overpredict: {tp}");
    }

    #[test]
    fn refuses_avx2_on_ivb() {
        let block = parse_block("vfmadd231ps ymm0, ymm1, ymm2").unwrap();
        assert!(IacaModel::new(UarchKind::IvyBridge)
            .predict(&block)
            .is_none());
        assert!(IacaModel::new(UarchKind::Haswell).predict(&block).is_some());
    }

    #[test]
    fn produces_schedules() {
        let block = parse_block("add rax, 1\nimul rbx, rax").unwrap();
        let model = IacaModel::new(UarchKind::Haswell);
        let schedule = model.schedule(&block).unwrap();
        assert_eq!(schedule.model, "iaca");
        assert!(!schedule.uops.is_empty());
    }
}
