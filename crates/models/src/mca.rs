//! The llvm-mca-like analyzer.

use crate::perturb::perturb_recipe;
use crate::schedule::Schedule;
use crate::scheduler::{steady_state, StaticParams};
use crate::{isa_unsupported, ThroughputModel};
use bhive_asm::{BasicBlock, Inst, Mnemonic};
use bhive_uarch::{decompose, ports, Recipe, UarchKind, Uop, UopKind, VarLat};

/// llvm-mca: an out-of-order simulator parameterized by LLVM's backend
/// scheduling model.
///
/// Its modeled blind spots, all documented in the paper:
///
/// * **no zero-idiom knowledge** — `vxorps xmm2, xmm2, xmm2` is costed as
///   a regular vector XOR (case-study block 2: predicts 1.00 vs measured
///   0.25);
/// * **load-op collapse** — a memory-source ALU instruction is modeled as
///   a single uop whose inputs include the destination register, so the
///   independent load cannot be hoisted (the Fig. "scheduling"
///   mis-scheduling: predicts 13.04 vs measured 8.25 on the `updcrc`
///   block);
/// * **the same division mix-up as IACA** (predicts 99 vs measured 21.62);
/// * **less-tuned Skylake tables** — the paper attributes llvm-mca's
///   Skylake regression to the scheduling model lagging behind new
///   hardware.
#[derive(Debug, Clone)]
pub struct McaModel {
    kind: UarchKind,
    strength: f64,
    seed: u64,
}

impl McaModel {
    /// llvm-mca targeting `kind`, with calibrated default table noise.
    pub fn new(kind: UarchKind) -> McaModel {
        let strength = match kind {
            // "We suspect the decrease in performance in Skylake is a
            // result of LLVM developers having less time updating the
            // cost models for the relatively new microarchitecture."
            // Calibrated so the Skylake regression matches Table 5's
            // shape (~0.18 -> ~0.23 overall error vs Haswell).
            UarchKind::Skylake => 0.70,
            _ => 0.35,
        };
        McaModel {
            kind,
            strength,
            seed: 0x11CA,
        }
    }

    /// Overrides the table-noise strength (used by calibration tests).
    pub fn with_strength(mut self, strength: f64) -> McaModel {
        self.strength = strength;
        self
    }

    fn recipes(&self, block: &BasicBlock) -> Vec<Recipe> {
        let uarch = self.kind.desc();
        block
            .iter()
            .map(|inst| {
                let mut recipe = decompose(inst, uarch);
                // No rename-time tricks in the scheduling model: zero
                // idioms and register moves execute as plain uops.
                if recipe.eliminated && inst.mnemonic() != Mnemonic::Nop {
                    recipe = un_eliminated(inst, self.kind);
                }
                // The division mix-up.
                if matches!(inst.mnemonic(), Mnemonic::Div | Mnemonic::Idiv) {
                    for uop in &mut recipe.uops {
                        if matches!(uop.var_lat, Some(VarLat::DivGpr { .. })) {
                            let slow = match self.kind {
                                UarchKind::Skylake => 44,
                                _ => 96,
                            };
                            uop.latency = slow;
                            uop.blocking = slow;
                        }
                    }
                    return recipe;
                }
                // Load-op collapse: the load micro-op is serialized
                // behind *all* the instruction's sources.
                recipe = serialize_load_op(recipe);
                perturb_recipe(&mut recipe, inst, self.seed, self.strength);
                recipe
            })
            .collect()
    }
}

/// Rebuilds an eliminated-instruction recipe as a real executed uop.
fn un_eliminated(inst: &Inst, kind: UarchKind) -> Recipe {
    let ports = if inst.mnemonic().is_sse() || kind == UarchKind::IvyBridge {
        ports!(0, 1, 5)
    } else {
        ports!(0, 1, 5, 6)
    };
    Recipe::unfused(vec![Uop::compute(ports, 1)])
}

/// The load-op collapse bug: the load micro-op keeps its ports and
/// latency (llvm-mca's scheduling model does know the port usage) but is
/// downgraded to a Compute-kind uop, which the scheduler makes dependent
/// on *all* of the instruction's register sources — so the independent
/// address-only load can no longer be hoisted ahead of the data chain.
fn serialize_load_op(mut recipe: Recipe) -> Recipe {
    let load_pos = recipe.uops.iter().position(|u| u.kind == UopKind::Load);
    let has_compute = recipe.uops.iter().any(|u| u.kind == UopKind::Compute);
    if let (Some(load), true) = (load_pos, has_compute) {
        recipe.uops[load].kind = UopKind::Compute;
        // Keep the load first so the real compute uop still chains
        // behind it via the last-compute edge.
    }
    recipe
}

impl ThroughputModel for McaModel {
    fn name(&self) -> &'static str {
        "llvm-mca"
    }

    fn uarch(&self) -> UarchKind {
        self.kind
    }

    fn predict(&self, block: &BasicBlock) -> Option<f64> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        let recipes = self.recipes(block);
        let (tp, _) = steady_state(
            block,
            &recipes,
            self.kind.desc(),
            StaticParams { macro_fusion: true },
            self.name(),
        );
        Some(tp)
    }

    fn schedule(&self, block: &BasicBlock) -> Option<Schedule> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        let recipes = self.recipes(block);
        let (_, schedule) = steady_state(
            block,
            &recipes,
            self.kind.desc(),
            StaticParams { macro_fusion: true },
            self.name(),
        );
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    #[test]
    fn misses_zero_idiom() {
        // Paper case study: llvm-mca predicts 1.00 for the idiom.
        let block = parse_block("vxorps xmm2, xmm2, xmm2").unwrap();
        let tp = McaModel::new(UarchKind::Haswell).predict(&block).unwrap();
        assert!(
            (0.8..=1.4).contains(&tp),
            "mca treats the idiom as a regular XOR: {tp}"
        );
    }

    #[test]
    fn load_op_collapse_slows_updcrc() {
        let block = bhive_corpus_updcrc();
        let mca = McaModel::new(UarchKind::Haswell).predict(&block).unwrap();
        let iaca = crate::IacaModel::new(UarchKind::Haswell)
            .predict(&block)
            .unwrap();
        // Paper: measured 8.25, IACA 8.00, llvm-mca 13.04. The shape to
        // preserve: mca substantially overpredicts relative to IACA.
        assert!(
            mca > iaca + 2.0,
            "collapse must slow the chain: mca {mca} vs iaca {iaca}"
        );
    }

    /// Local copy of the Fig. 1 block (crate cannot depend on
    /// bhive-corpus).
    fn bhive_corpus_updcrc() -> BasicBlock {
        bhive_asm::parse_block(
            "add rdi, 1\n\
             mov eax, edx\n\
             shr rdx, 8\n\
             xor al, byte ptr [rdi - 1]\n\
             movzx eax, al\n\
             xor rdx, qword ptr [8*rax + 0x41108]\n\
             cmp rdi, rcx",
        )
        .unwrap()
    }

    #[test]
    fn division_overpredicted_like_iaca() {
        let block = parse_block("xor edx, edx\ndiv ecx\ntest edx, edx").unwrap();
        let tp = McaModel::new(UarchKind::Haswell).predict(&block).unwrap();
        assert!(tp > 60.0, "{tp}");
    }

    #[test]
    fn skylake_tables_are_noisier() {
        assert!(
            McaModel::new(UarchKind::Skylake).strength > McaModel::new(UarchKind::Haswell).strength
        );
    }
}
