//! A naive additive per-instruction table model (ablation baseline).

use crate::{isa_unsupported, ThroughputModel};
use bhive_asm::BasicBlock;
use bhive_uarch::{decompose, UarchKind};

/// The simplest possible cost model: sum of per-instruction reciprocal
/// throughputs, ignoring parallelism between instructions entirely.
///
/// This is the "per-instruction cost table" approach the paper's
/// Background section describes as insufficient ("they do not lead
/// directly to validating performance models at basic block level") —
/// included as an ablation baseline for the evaluation.
#[derive(Debug, Clone)]
pub struct BaselineTableModel {
    kind: UarchKind,
}

impl BaselineTableModel {
    /// A baseline targeting `kind`.
    pub fn new(kind: UarchKind) -> BaselineTableModel {
        BaselineTableModel { kind }
    }
}

impl ThroughputModel for BaselineTableModel {
    fn name(&self) -> &'static str {
        "inst-table"
    }

    fn uarch(&self) -> UarchKind {
        self.kind
    }

    fn predict(&self, block: &BasicBlock) -> Option<f64> {
        if block.is_empty() || isa_unsupported(block, self.kind) {
            return None;
        }
        let uarch = self.kind.desc();
        let mut total = 0.0f64;
        for inst in block.iter() {
            let recipe = decompose(inst, uarch);
            if recipe.eliminated {
                total += 0.25; // rename slot
                continue;
            }
            // Reciprocal throughput of the instruction in isolation:
            // the busiest port's occupancy.
            let mut pressure = [0f64; 8];
            for uop in &recipe.uops {
                let ports: Vec<_> = uop.ports.iter().collect();
                let share = f64::from(uop.blocking.max(1)) / ports.len().max(1) as f64;
                for p in ports {
                    pressure[p.index() as usize] += share;
                }
            }
            total += pressure.iter().copied().fold(0.0f64, f64::max);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;

    #[test]
    fn additive_model_ignores_parallelism() {
        let model = BaselineTableModel::new(UarchKind::Haswell);
        let one = parse_block("add rax, 1").unwrap();
        let four = parse_block("add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rsi, 1").unwrap();
        let t1 = model.predict(&one).unwrap();
        let t4 = model.predict(&four).unwrap();
        assert!(
            (t4 - 4.0 * t1).abs() < 1e-9,
            "purely additive: {t1} vs {t4}"
        );
    }

    #[test]
    fn divider_dominates() {
        let model = BaselineTableModel::new(UarchKind::Haswell);
        let tp = model.predict(&parse_block("div ecx").unwrap()).unwrap();
        assert!(tp > 15.0, "{tp}");
    }
}
