//! # bhive-models
//!
//! The four basic-block throughput predictors the paper validates,
//! reimplemented behind one [`ThroughputModel`] trait:
//!
//! * [`IacaModel`] — Intel's analyzer: it *knows* the proprietary
//!   optimizations of the (simulated) hardware — zero idioms, move
//!   elimination, micro-/macro-fusion — but carries the case-study bug of
//!   costing 64-by-32-bit division as the 128-by-64-bit form.
//! * [`McaModel`] — llvm-mca: the same scheduler skeleton driven by
//!   LLVM's *scheduling-model* tables, which miss zero idioms, collapse a
//!   load-op instruction into one serialized uop (the Fig. "scheduling"
//!   mis-scheduling), and are noticeably less tuned for Skylake.
//! * [`OsacaModel`] — a port-pressure analyzer with the instruction-parser
//!   gaps the paper reported upstream (immediate-to-memory forms silently
//!   treated as nops; byte-wide memory ALU forms rejected outright).
//! * [`IthemalModel`] — a learned predictor trained on measured corpus
//!   data ([`IthemalModel::train`]); best on average, but weak on
//!   vectorized blocks because the training distribution contains few of
//!   them — exactly the imbalance the Ithemal authors reported.
//!
//! A trivial [`BaselineTableModel`] (sum of per-instruction reciprocal
//! throughputs) is included for ablation.
//!
//! All static models share the [`schedule`]-producing port simulator in
//! this crate, so the `bhive fig-schedule`-style comparisons can show
//! *why* two models disagree, not just that they do.
//!
//! # Example
//!
//! ```
//! use bhive_models::{IacaModel, McaModel, ThroughputModel};
//! use bhive_uarch::UarchKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's zero-idiom case study: IACA recognizes the idiom,
//! // llvm-mca charges a full vector XOR.
//! let block = bhive_asm::parse_block("vxorps xmm2, xmm2, xmm2")?;
//! let iaca = IacaModel::new(UarchKind::Haswell);
//! let mca = McaModel::new(UarchKind::Haswell);
//! let iaca_tp = iaca.predict(&block).unwrap();
//! let mca_tp = mca.predict(&block).unwrap();
//! assert!(iaca_tp < 0.5 && mca_tp >= 0.9);
//! # Ok(())
//! # }
//! ```

mod baseline;
mod features;
mod iaca;
mod ithemal;
mod mca;
mod osaca;
mod perturb;
pub mod schedule;
mod scheduler;

pub use baseline::BaselineTableModel;
pub use features::block_features;
pub use iaca::IacaModel;
pub use ithemal::{IthemalConfig, IthemalModel};
pub use mca::McaModel;
pub use osaca::OsacaModel;
pub use schedule::{Schedule, ScheduledUop};

use bhive_asm::BasicBlock;
use bhive_uarch::UarchKind;

/// A basic-block (inverse-)throughput predictor.
///
/// Implementations return the predicted average number of cycles one
/// iteration of the block takes at steady state — IACA's definition of
/// throughput, used throughout the paper.
pub trait ThroughputModel: Send + Sync {
    /// Short tool name (`iaca`, `llvm-mca`, `ithemal`, `osaca`).
    fn name(&self) -> &'static str;

    /// The microarchitecture the model targets.
    fn uarch(&self) -> UarchKind;

    /// Predicts the block's steady-state cycles-per-iteration, or `None`
    /// when the tool cannot analyze the block (OSACA's parser failures,
    /// AVX2 blocks on Ivy Bridge, ...).
    fn predict(&self, block: &BasicBlock) -> Option<f64>;

    /// The predicted execution schedule, for simulator-style models that
    /// can produce one (IACA, llvm-mca). Learned models return `None`:
    /// as the paper notes, Ithemal reports a single number without an
    /// interpretable trace.
    fn schedule(&self, _block: &BasicBlock) -> Option<Schedule> {
        None
    }
}

/// True when a block cannot run on the given microarchitecture at all
/// (AVX2/FMA on Ivy Bridge); every model refuses such blocks.
pub(crate) fn isa_unsupported(block: &BasicBlock, uarch: UarchKind) -> bool {
    !uarch.desc().supports_avx2 && block.uses_avx2()
}
