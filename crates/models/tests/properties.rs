//! Property tests over all models: robustness, determinism, and sane
//! output envelopes on arbitrary corpus blocks.

use bhive_corpus::{generate_block, Application};
use bhive_models::{
    BaselineTableModel, IacaModel, IthemalConfig, IthemalModel, McaModel, OsacaModel,
    ThroughputModel,
};
use bhive_uarch::UarchKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn static_models(kind: UarchKind) -> Vec<Box<dyn ThroughputModel>> {
    vec![
        Box::new(IacaModel::new(kind)),
        Box::new(McaModel::new(kind)),
        Box::new(OsacaModel::new(kind)),
        Box::new(BaselineTableModel::new(kind)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every model yields a positive, finite prediction (or a clean None)
    /// on every generated block, on every microarchitecture.
    #[test]
    fn predictions_are_finite_positive(seed in any::<u64>(), app_idx in 0usize..12) {
        let app = Application::ALL[app_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(app, &mut rng);
        for kind in UarchKind::ALL {
            for model in static_models(kind) {
                if let Some(tp) = model.predict(&block) {
                    prop_assert!(
                        tp.is_finite() && tp >= 0.0,
                        "{} on {kind:?} returned {tp} for\n{block}",
                        model.name()
                    );
                    // A block cannot retire faster than the rename width
                    // allows, minus eliminated instructions.
                    prop_assert!(
                        tp < 1_000_000.0,
                        "{} runaway prediction {tp}",
                        model.name()
                    );
                }
            }
        }
    }

    /// Model predictions are deterministic.
    #[test]
    fn predictions_are_deterministic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(Application::Llvm, &mut rng);
        for model in static_models(UarchKind::Haswell) {
            prop_assert_eq!(model.predict(&block), model.predict(&block));
        }
    }

    /// IACA's schedule is consistent with its throughput: the dispatch
    /// distance between consecutive iterations approximates the reported
    /// steady-state throughput.
    #[test]
    fn schedule_matches_throughput(seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(Application::Redis, &mut rng);
        let model = IacaModel::new(UarchKind::Haswell);
        let (Some(tp), Some(schedule)) = (model.predict(&block), model.schedule(&block))
        else {
            return Ok(());
        };
        prop_assert!((schedule.throughput - tp).abs() < 1e-9);
        let all_eliminated = block
            .iter()
            .all(|i| bhive_uarch::decompose(i, UarchKind::Haswell.desc()).eliminated);
        prop_assert!(!schedule.uops.is_empty() || all_eliminated);
    }
}

#[test]
fn ithemal_generalizes_across_apps() {
    // Train on one mix, predict on another: predictions stay in the
    // sanity envelope even off-distribution.
    let mut rng = SmallRng::seed_from_u64(42);
    let train: Vec<_> = (0..200)
        .map(|_| {
            let block = generate_block(Application::Llvm, &mut rng);
            let target = (block.len() as f64 * 0.6).max(0.3);
            (block, target)
        })
        .collect();
    let model = IthemalModel::train(&train, UarchKind::Haswell, IthemalConfig::default());
    for app in [
        Application::OpenBlas,
        Application::Ffmpeg,
        Application::Spanner,
    ] {
        for _ in 0..50 {
            let block = generate_block(app, &mut rng);
            if let Some(tp) = model.predict(&block) {
                assert!(tp.is_finite() && tp > 0.0, "{app}: {tp}");
                assert!(tp < 10_000.0, "{app}: runaway {tp}");
            }
        }
    }
}

#[test]
fn avx2_refusal_is_uniform() {
    let block = bhive_asm::parse_block("vfmadd231ps ymm0, ymm1, ymm2").unwrap();
    for model in static_models(UarchKind::IvyBridge) {
        assert!(
            model.predict(&block).is_none(),
            "{} must refuse AVX2 on Ivy Bridge",
            model.name()
        );
    }
    for model in static_models(UarchKind::Haswell) {
        assert!(
            model.predict(&block).is_some(),
            "{} handles AVX2 on Haswell",
            model.name()
        );
    }
}
