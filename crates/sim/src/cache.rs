//! Set-associative cache model with LRU replacement.
//!
//! The L1 data cache is modeled as virtually indexed, physically tagged
//! (VIPT), exactly the property the paper's single-physical-page mapping
//! exploits: every virtual page aliases the same physical frame, so the
//! cache sees one page's worth of lines and never misses after warm-up.

use bhive_uarch::CacheParams;

/// A set-associative, write-allocate cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    /// Shift/mask fast path for power-of-two geometry (all shipped
    /// uarches); `line_shift == u32::MAX` selects the div/mod fallback.
    line_shift: u32,
    set_mask: u64,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid. Tags and LRU
    /// stamps live in separate arrays so the hit scan touches one
    /// contiguous run of tags (a single cache line for 8 ways) and
    /// vectorizes instead of striding over `(tag, stamp)` pairs.
    tags: Vec<u64>,
    /// `last_use[set * ways + way]`, parallel to `tags`.
    last_use: Vec<u64>,
    use_counter: u64,
}

impl Cache {
    /// An empty (cold) cache with the given geometry.
    pub fn new(params: CacheParams) -> Cache {
        let sets = u64::from(params.sets());
        let ways = params.ways as usize;
        let line_bytes = u64::from(params.line_bytes);
        let (line_shift, set_mask) = if line_bytes.is_power_of_two() && sets.is_power_of_two() {
            (line_bytes.trailing_zeros(), sets - 1)
        } else {
            (u32::MAX, 0)
        };
        Cache {
            line_bytes,
            sets,
            ways,
            line_shift,
            set_mask,
            tags: vec![u64::MAX; (sets as usize) * ways],
            last_use: vec![0; (sets as usize) * ways],
            use_counter: 0,
        }
    }

    /// Looks up (and on miss, fills) the line for a VIPT access.
    ///
    /// `index_addr` supplies the index bits (the virtual address for VIPT),
    /// `tag_addr` the tag bits (the physical address). Returns `true` on
    /// hit.
    #[inline]
    pub fn access(&mut self, index_addr: u64, tag_addr: u64) -> bool {
        let (set, tag) = if self.line_shift != u32::MAX {
            (
                ((index_addr >> self.line_shift) & self.set_mask) as usize,
                tag_addr >> self.line_shift,
            )
        } else {
            (
                ((index_addr / self.line_bytes) % self.sets) as usize,
                tag_addr / self.line_bytes,
            )
        };
        self.use_counter += 1;
        let base = set * self.ways;
        let tags = &mut self.tags[base..base + self.ways];
        let uses = &mut self.last_use[base..base + self.ways];
        // Branchless full scan: tags are unique within a set (fills only
        // happen on a miss), so "any match" and "first match" agree and
        // the compiler can vectorize the compare.
        let mut hit_way = usize::MAX;
        for (way, &t) in tags.iter().enumerate() {
            if t == tag {
                hit_way = way;
            }
        }
        if hit_way != usize::MAX {
            uses[hit_way] = self.use_counter;
            return true;
        }
        // Miss: fill the LRU way (first minimum, matching the original
        // `min_by_key` tie-break).
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for (way, &last) in uses.iter().enumerate() {
            if last < oldest {
                oldest = last;
                victim = way;
            }
        }
        tags[victim] = tag;
        uses[victim] = self.use_counter;
        false
    }

    /// The cache line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// True if a `width`-byte access at `addr` crosses a line boundary —
    /// the paper drops blocks with such accesses (they cost two line
    /// reads and an order-of-magnitude slowdown).
    #[inline]
    pub fn splits_line(&self, addr: u64, width: u8) -> bool {
        let offset = if self.line_shift != u32::MAX {
            addr & (self.line_bytes - 1)
        } else {
            addr % self.line_bytes
        };
        offset + u64::from(width) > self.line_bytes
    }

    /// Invalidates every line.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.last_use.fill(0);
        self.use_counter = 0;
    }

    /// Number of currently valid lines (for tests/statistics).
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != u64::MAX).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_uarch::Uarch;

    fn l1d() -> Cache {
        Cache::new(Uarch::haswell().l1d)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = l1d();
        assert!(!c.access(0x1000, 0x1000));
        assert!(c.access(0x1000, 0x1000));
        assert!(c.access(0x1010, 0x1010), "same line, different offset");
        assert!(!c.access(0x1040, 0x1040), "next line misses");
    }

    #[test]
    fn vipt_aliasing_single_physical_page() {
        // Two virtual pages mapped to one physical page: the second page's
        // accesses hit the lines the first page brought in *if* index bits
        // agree — which they do, because the index fits in the page offset.
        let mut c = l1d();
        let phys_base = 0x7000;
        // Warm through virtual page A (0x10000).
        for off in (0..4096).step_by(64) {
            c.access(0x10000 + off, phys_base + off % 4096);
        }
        // Access through virtual page B (0x20000), same physical frame.
        let mut misses = 0;
        for off in (0..4096).step_by(64) {
            if !c.access(0x20000 + off, phys_base + off % 4096) {
                misses += 1;
            }
        }
        assert_eq!(misses, 0, "VIPT alias must hit");
    }

    #[test]
    fn distinct_physical_pages_conflict() {
        // 9 distinct physical pages all alias the same 64 sets of a
        // 8-way cache: each set sees 9 candidate lines -> misses occur.
        let mut c = l1d();
        let mut misses = 0;
        for round in 0..2 {
            for page in 0..9u64 {
                let vbase = 0x100000 + page * 4096;
                let pbase = 0x900000 + page * 4096;
                for off in (0..4096).step_by(64) {
                    if !c.access(vbase + off, pbase + off) && round == 1 {
                        misses += 1;
                    }
                }
            }
        }
        assert!(misses > 0, "working set exceeding associativity must miss");
    }

    #[test]
    fn split_detection() {
        let c = l1d();
        assert!(!c.splits_line(0x1000, 8));
        assert!(!c.splits_line(0x1038, 8));
        assert!(c.splits_line(0x103C, 8));
        assert!(c.splits_line(0x103F, 2));
        assert!(!c.splits_line(0x103F, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(bhive_uarch::CacheParams {
            size_bytes: 2 * 64,
            line_bytes: 64,
            ways: 2,
        });
        // One set, two ways.
        assert!(!c.access(0x0, 0x0));
        assert!(!c.access(0x1000, 0x1000));
        assert!(c.access(0x0, 0x0));
        // Fill third line: evicts 0x1000 (LRU), not 0x0.
        assert!(!c.access(0x2000, 0x2000));
        assert!(c.access(0x0, 0x0));
        assert!(!c.access(0x1000, 0x1000));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = l1d();
        c.access(0x40, 0x40);
        assert_eq!(c.valid_lines(), 1);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.access(0x40, 0x40));
    }
}
