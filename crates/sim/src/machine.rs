//! The [`Machine`] façade: everything the measurement framework sees.

use crate::cache::Cache;
use crate::counters::PerfCounters;
use crate::exec::lower::lower_block;
use crate::exec::ops::{execute_op, LoweredBlock};
use crate::exec::{execute_inst, ExecFault};
use crate::mem::Memory;
use crate::noise::NoiseConfig;
use crate::state::CpuState;
use crate::timing::{
    CodeLayout, DynInst, NonConvergence, PreparedTrace, SimScratch, StaticPrep, TimingModel,
    TimingResult,
};
use bhive_asm::{BasicBlock, Inst};
use bhive_uarch::Uarch;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Default virtual address the harness places code at.
pub const CODE_BASE: u64 = 0x40_0000;

/// Reusable timing-run storage owned by the machine: the prepared trace,
/// simulation scratch, warm-up/measured cache pair, and the dynamic-trace
/// buffer. Deliberately *survives* [`Machine::recycle`], so one worker
/// amortizes every hot-path allocation across an entire corpus. Contents
/// are fully rebuilt by each use and can never leak between blocks (a
/// flushed [`Cache`] is bit-identical to a new one, and
/// `TimingModel::prepare_into` clears before writing).
#[derive(Debug, Default)]
struct TimingArena {
    prep: PreparedTrace,
    scratch: SimScratch,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    trace: Vec<DynInst>,
    lower: LowerCache,
}

/// One-entry cache of the most recent block's predecoded lowering and the
/// static half of its timing prep, keyed by content hash and pinned by a
/// structural instruction comparison (a hash collision can therefore slow
/// a lookup down but never corrupt one). Lives in the arena so it
/// survives [`Machine::recycle`]: the harness profiles one block per
/// recycle, so every monitor fault-restart, both unroll factors, and each
/// retry escalation of the same block reuse one lowering instead of
/// re-decoding the operand/mnemonic enums per dynamic instruction.
#[derive(Debug, Default)]
struct LowerCache {
    valid: bool,
    hash: u64,
    insts: Vec<Inst>,
    lowered: LoweredBlock,
    /// Present when no [`TimingModel`] currently borrows it; taken and
    /// returned by `take_timing_model`/`put_timing_model`.
    static_prep: Option<StaticPrep>,
    hits: u64,
    misses: u64,
}

/// Cumulative lowering-cache counters for one machine (monotonic; survive
/// [`Machine::recycle`]). The harness folds per-attempt deltas into the
/// run observability stream as `sim.lower.hit` / `sim.lower.miss`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Lookups served by the cached lowering.
    pub hits: u64,
    /// Lookups that had to lower the block.
    pub misses: u64,
}

fn block_hash(insts: &[Inst]) -> u64 {
    let mut hasher = DefaultHasher::new();
    insts.hash(&mut hasher);
    hasher.finish()
}

/// Outcome of a full (functionally executed + timed) run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOutcome {
    /// Performance counters for the measured run.
    pub counters: PerfCounters,
    /// Number of dynamic instructions executed.
    pub dynamic_insts: usize,
}

/// Failure of the one-shot [`Machine::run`] entry point: either
/// functional execution faulted, or the timing model exhausted its cycle
/// budget. The harness's finer-grained pipeline maps both to
/// `ProfileFailure`s; `run` surfaces them as a proper error instead of
/// panicking on the (pathological but reachable) non-convergent case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// Functional execution faulted (page fault, divide error, `#UD`,
    /// alignment `#GP`).
    Fault(ExecFault),
    /// The timing model failed to retire the trace within its cycle
    /// budget.
    NonConvergence(NonConvergence),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Fault(fault) => fault.fmt(f),
            RunError::NonConvergence(nc) => nc.fmt(f),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Fault(fault) => Some(fault),
            RunError::NonConvergence(nc) => Some(nc),
        }
    }
}

impl From<ExecFault> for RunError {
    fn from(fault: ExecFault) -> RunError {
        RunError::Fault(fault)
    }
}

impl From<NonConvergence> for RunError {
    fn from(nc: NonConvergence) -> RunError {
        RunError::NonConvergence(nc)
    }
}

/// A simulated x86-64 machine: architectural state, memory, caches,
/// microarchitecture, and an OS-noise source.
#[derive(Debug)]
pub struct Machine {
    uarch: &'static Uarch,
    state: CpuState,
    mem: Memory,
    noise: NoiseConfig,
    rng: SmallRng,
    timing: TimingArena,
}

impl Machine {
    /// A machine with quiet (deterministic) noise settings.
    pub fn new(uarch: &'static Uarch, seed: u64) -> Machine {
        Machine {
            uarch,
            state: CpuState::new(),
            mem: Memory::new(),
            noise: NoiseConfig::quiet(),
            rng: SmallRng::seed_from_u64(seed),
            timing: TimingArena::default(),
        }
    }

    /// A machine with the given noise model.
    pub fn with_noise(uarch: &'static Uarch, seed: u64, noise: NoiseConfig) -> Machine {
        Machine {
            noise,
            ..Machine::new(uarch, seed)
        }
    }

    /// Re-initializes this machine in place, as if freshly constructed by
    /// [`Machine::with_noise`] — except that physical page allocations are
    /// retained in [`Memory`]'s pool for reuse.
    ///
    /// Because the pool hands out the same `PhysPage` id sequence a fresh
    /// memory would (see [`Memory::recycle`]), a recycled machine produces
    /// bit-identical measurements to a new one; the harness relies on this
    /// to keep one machine per worker across an entire corpus.
    ///
    /// The timing arena (prepared trace, simulation scratch, caches, trace
    /// buffer) is likewise retained: its contents are rebuilt from scratch
    /// on every use, so only the allocations carry over.
    pub fn recycle(&mut self, seed: u64, noise: NoiseConfig) {
        self.state = CpuState::new();
        self.mem.recycle();
        self.noise = noise;
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The modeled microarchitecture.
    pub fn uarch(&self) -> &'static Uarch {
        self.uarch
    }

    /// Architectural state (registers, flags, MXCSR).
    pub fn state(&self) -> &CpuState {
        &self.state
    }

    /// Mutable architectural state.
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.state
    }

    /// The virtual memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable virtual memory (the monitor process maps pages here).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Resets registers and flags to the fill pattern, as the paper's
    /// framework does before both the mapping and the measuring run.
    pub fn reset(&mut self, fill: u64) {
        self.state.reset_with_fill(fill);
    }

    /// Enables or disables gradual underflow via MXCSR FTZ+DAZ.
    pub fn set_ftz_daz(&mut self, on: bool) {
        self.state.mxcsr.ftz = on;
        self.state.mxcsr.daz = on;
    }

    /// True if this machine can execute the block at all (AVX2 blocks
    /// fault with `#UD` on Ivy Bridge).
    pub fn supports(&self, block: &BasicBlock) -> bool {
        self.uarch.supports_avx2 || !block.uses_avx2()
    }

    /// Functionally executes `unroll` copies of the block, producing the
    /// dynamic trace the timing model consumes.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecFault`] (page fault, divide error, invalid
    /// opcode). State and memory retain the effects of instructions that
    /// executed before the fault, as on real hardware; the harness always
    /// re-initializes before retrying.
    pub fn execute_unrolled(
        &mut self,
        insts: &[Inst],
        unroll: u32,
    ) -> Result<Vec<DynInst>, ExecFault> {
        let mut trace = Vec::new();
        self.execute_unrolled_into(insts, unroll, &mut trace)?;
        Ok(trace)
    }

    /// Like [`Machine::execute_unrolled`], but fills a caller-owned buffer
    /// (cleared first) so the harness can reuse one allocation per worker.
    ///
    /// Executes over the block's predecoded lowering (see
    /// `crate::exec::lower`), obtained from the machine's one-entry
    /// lowering cache: the per-instruction operand/mnemonic decode is paid
    /// once per block, not once per dynamic instruction of every restart.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecFault`]; `trace` holds the instructions
    /// executed before it.
    pub fn execute_unrolled_into(
        &mut self,
        insts: &[Inst],
        unroll: u32,
        trace: &mut Vec<DynInst>,
    ) -> Result<(), ExecFault> {
        trace.clear();
        self.ensure_lowered(insts);
        let Machine {
            uarch,
            state,
            mem,
            timing,
            ..
        } = self;
        let lowered = &timing.lower.lowered;
        // Hoisted out of the old per-call operand scan: lowering already
        // recorded whether the block needs AVX2.
        if lowered.uses_avx2 && !uarch.supports_avx2 {
            return Err(ExecFault::InvalidOpcode);
        }
        // Materialize the whole trace up front with one bulk zeroing pass,
        // then let each kernel call record its effects straight into its
        // slot: no per-instruction 80-byte push temporaries and no
        // `InstEffects` bounced through return values. On a fault the
        // trace is truncated to the completed prefix, matching the
        // reference loop's push-after-execute order.
        let total = lowered.ops.len() * unroll as usize;
        trace.resize(total, DynInst::default());
        let mut filled = 0usize;
        for copy in 0..unroll {
            for (static_idx, op) in lowered.ops.iter().enumerate() {
                let slot = &mut trace[filled];
                slot.static_idx = static_idx;
                slot.copy = copy;
                if let Err(fault) = execute_op(op, state, mem, &mut slot.effects) {
                    trace.truncate(filled);
                    return Err(fault);
                }
                filled += 1;
            }
        }
        Ok(())
    }

    /// The pre-lowering interpreter loop, retained verbatim: re-matches
    /// `Mnemonic`/`Operand` enums per dynamic instruction via
    /// [`execute_inst`]. It is the semantic reference the lowered path in
    /// [`Machine::execute_unrolled_into`] is differentially tested
    /// against (`sim/tests/exec_differential.rs`), and the baseline the
    /// benchmark compares speedups to.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecFault`]; `trace` holds the instructions
    /// executed before it.
    pub fn execute_unrolled_reference_into(
        &mut self,
        insts: &[Inst],
        unroll: u32,
        trace: &mut Vec<DynInst>,
    ) -> Result<(), ExecFault> {
        trace.clear();
        if !self.uarch.supports_avx2 {
            let avx2 = insts.iter().any(|inst| {
                inst.mnemonic().is_vex_only()
                    || inst.operands().iter().any(|op| {
                        matches!(op, bhive_asm::Operand::Vec(v)
                            if v.width() == bhive_asm::VecWidth::Ymm)
                    })
            });
            if avx2 {
                return Err(ExecFault::InvalidOpcode);
            }
        }
        trace.reserve(insts.len() * unroll as usize);
        for copy in 0..unroll {
            for (static_idx, inst) in insts.iter().enumerate() {
                let effects = execute_inst(inst, &mut self.state, &mut self.mem)?;
                trace.push(DynInst {
                    static_idx,
                    copy,
                    effects,
                });
            }
        }
        Ok(())
    }

    /// Makes the lowering cache current for `insts`: a structural
    /// equality check on hit (which fails fast on the first differing
    /// instruction, so it is cheaper than hashing the probe block — the
    /// stored content hash identifies the entry but is only computed on
    /// fill), a fresh [`lower_block`] pass on miss (which also
    /// invalidates any cached static timing prep).
    fn ensure_lowered(&mut self, insts: &[Inst]) {
        let cache = &mut self.timing.lower;
        if cache.valid && cache.insts.as_slice() == insts {
            cache.hits += 1;
            return;
        }
        cache.misses += 1;
        cache.valid = true;
        cache.hash = block_hash(insts);
        cache.insts.clear();
        cache.insts.extend_from_slice(insts);
        cache.lowered = lower_block(insts);
        cache.static_prep = None;
    }

    /// Cumulative lowering-cache hit/miss counters (monotonic across
    /// [`Machine::recycle`]). The harness reports per-attempt deltas.
    pub fn lower_stats(&self) -> LowerStats {
        LowerStats {
            hits: self.timing.lower.hits,
            misses: self.timing.lower.misses,
        }
    }

    /// Builds a [`TimingModel`] for `insts`, reusing the cached static
    /// half (uop decomposition, register-slot tables, macro-fusion) when
    /// this block is the one the lowering cache holds — i.e. on every
    /// retry escalation and both unroll factors of one profiled block.
    /// Return the model with [`Machine::put_timing_model`] so the next
    /// attempt reuses it.
    pub fn take_timing_model<'a>(&mut self, insts: &'a [Inst]) -> TimingModel<'a> {
        self.ensure_lowered(insts);
        match self.timing.lower.static_prep.take() {
            Some(sp) => TimingModel::with_static(insts, self.uarch, sp),
            None => TimingModel::new(insts, self.uarch),
        }
    }

    /// Returns a model's static half to the lowering cache. A model for a
    /// different block (or uarch) than the cache currently holds is simply
    /// dropped — the cache never goes stale.
    pub fn put_timing_model(&mut self, model: TimingModel<'_>) {
        let matches = self.timing.lower.valid
            && std::ptr::eq(model.uarch(), self.uarch)
            && model.insts() == self.timing.lower.insts.as_slice();
        if matches {
            self.timing.lower.static_prep = Some(model.into_static());
        }
    }

    /// Borrows the arena's dynamic-trace buffer (empty the first time).
    /// Callers fill it via [`Machine::execute_unrolled_into`] and hand it
    /// back with [`Machine::put_trace_buffer`] so its allocation is reused
    /// for the next block.
    pub fn take_trace_buffer(&mut self) -> Vec<DynInst> {
        std::mem::take(&mut self.timing.trace)
    }

    /// Returns a trace buffer taken with [`Machine::take_trace_buffer`].
    pub fn put_trace_buffer(&mut self, trace: Vec<DynInst>) {
        self.timing.trace = trace;
    }

    /// Compiles `trace` into the machine's prepared-trace arena (see
    /// `TimingModel::prepare_into`), ready for any number of
    /// [`Machine::simulate_double`] replays over its prefixes.
    pub fn prepare_timing(
        &mut self,
        model: &TimingModel<'_>,
        trace: &[DynInst],
        layout: &CodeLayout,
    ) {
        model.prepare_into(&mut self.timing.prep, trace, layout);
    }

    /// The paper's double execution over the prepared trace's first
    /// `n_insts` instructions: flushes the arena caches (a flushed cache
    /// is bit-identical to a cold one), runs a warm-up pass, and returns
    /// the measured pass. Allocation-free after the first call.
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if either pass exhausts its cycle
    /// budget (a pathological schedule).
    pub fn simulate_double(
        &mut self,
        model: &TimingModel<'_>,
        n_insts: usize,
    ) -> Result<TimingResult, NonConvergence> {
        let uarch = self.uarch;
        let TimingArena {
            prep,
            scratch,
            l1i,
            l1d,
            ..
        } = &mut self.timing;
        let l1i = l1i.get_or_insert_with(|| Cache::new(uarch.l1i));
        let l1d = l1d.get_or_insert_with(|| Cache::new(uarch.l1d));
        l1i.flush();
        l1d.flush();
        model.simulate_with(prep, n_insts, l1i, l1d, scratch)?; // warm-up
        model.simulate_with(prep, n_insts, l1i, l1d, scratch)
    }

    /// Times a previously recorded trace against cache state carried in
    /// `l1i`/`l1d` (deterministic; no noise).
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if the schedule exhausts its cycle
    /// budget.
    pub fn time_trace(
        &self,
        insts: &[Inst],
        trace: &[DynInst],
        layout: &CodeLayout,
        l1i: &mut Cache,
        l1d: &mut Cache,
    ) -> Result<TimingResult, NonConvergence> {
        TimingModel::new(insts, self.uarch).run(trace, layout, l1i, l1d)
    }

    /// Samples measurement noise for a timing result and converts it to
    /// counter deltas (one "trial" of the paper's 16).
    pub fn observe(&mut self, timing: &TimingResult) -> PerfCounters {
        let (extra_cycles, ctx_switches) = self.noise.sample(timing.cycles, &mut self.rng);
        PerfCounters {
            core_cycles: timing.cycles + extra_cycles,
            instructions_retired: timing.insts,
            uops_executed: timing.uops,
            l1d_read_misses: timing.l1d_read_misses,
            l1d_write_misses: timing.l1d_write_misses,
            l1i_misses: timing.l1i_misses,
            context_switches: ctx_switches,
            misaligned_mem_refs: timing.misaligned,
            subnormal_events: trace_subnormals_placeholder(),
        }
    }

    /// One-shot convenience: execute `unroll` copies functionally, then
    /// time them with a warm-up pass, cold caches, and noise applied.
    ///
    /// The measurement framework in `bhive-harness` uses the finer-grained
    /// pieces instead; this entry point powers examples and tests.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Fault`] for functional-execution faults and
    /// [`RunError::NonConvergence`] if the timing model exhausts its
    /// cycle budget (a pathological schedule).
    pub fn run(&mut self, insts: &[Inst], unroll: u32) -> Result<RunOutcome, RunError> {
        let mut trace = self.take_trace_buffer();
        let outcome = (|| {
            self.execute_unrolled_into(insts, unroll, &mut trace)?;
            let layout =
                CodeLayout::from_block(insts, CODE_BASE).map_err(|_| ExecFault::InvalidOpcode)?;
            let model = self.take_timing_model(insts);
            self.prepare_timing(&model, &trace, &layout);
            let timing = self.simulate_double(&model, trace.len())?;
            self.put_timing_model(model);
            let mut counters = self.observe(&timing);
            counters.subnormal_events = trace.iter().filter(|d| d.effects.subnormal).count() as u64;
            Ok(RunOutcome {
                counters,
                dynamic_insts: trace.len(),
            })
        })();
        self.put_trace_buffer(trace);
        outcome
    }
}

/// `observe` cannot see the trace; `run` fills the real value in. Kept as
/// a named function so the intent is greppable.
fn trace_subnormals_placeholder() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_block;
    use bhive_uarch::Uarch;

    #[test]
    fn run_simple_block() {
        let block = parse_block("add rax, rbx\nimul rcx, rdx").unwrap();
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.reset(0x1234_5600);
        let out = machine.run(block.insts(), 8).unwrap();
        assert_eq!(out.dynamic_insts, 16);
        assert!(out.counters.core_cycles > 0);
        assert!(out.counters.is_clean());
    }

    #[test]
    fn unmapped_memory_faults() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.reset(0x1234_5600);
        let err = machine.run(block.insts(), 4).unwrap_err();
        match err {
            RunError::Fault(ExecFault::Seg(s)) => assert_eq!(s.vaddr, 0x1234_5600),
            other => panic!("expected segfault, got {other:?}"),
        }
    }

    #[test]
    fn mapping_the_page_fixes_the_fault() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.reset(0x1234_5600);
        let page = machine.memory_mut().alloc_page(0x1234_5600);
        machine.memory_mut().map(0x1234_5600, page);
        let out = machine.run(block.insts(), 4).unwrap();
        assert!(out.counters.core_cycles > 0);
    }

    #[test]
    fn avx2_faults_on_ivy_bridge() {
        let block = parse_block("vfmadd231ps ymm0, ymm1, ymm2").unwrap();
        let mut ivb = Machine::new(Uarch::ivy_bridge(), 0);
        ivb.reset(0);
        assert!(!ivb.supports(&block));
        assert_eq!(
            ivb.run(block.insts(), 2).unwrap_err(),
            RunError::Fault(ExecFault::InvalidOpcode)
        );
        let mut hsw = Machine::new(Uarch::haswell(), 0);
        hsw.reset(0);
        assert!(hsw.run(block.insts(), 2).is_ok());
    }

    #[test]
    fn noise_pollutes_some_trials() {
        let block =
            parse_block("add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rsi, 1\nimul rdi, r8").unwrap();
        let mut machine =
            Machine::with_noise(Uarch::haswell(), 99, crate::noise::NoiseConfig::realistic());
        machine.reset(0x1234_5600);
        let trace = machine.execute_unrolled(block.insts(), 2000).unwrap();
        let layout = CodeLayout::from_block(block.insts(), CODE_BASE).unwrap();
        let mut l1i = Cache::new(machine.uarch().l1i);
        let mut l1d = Cache::new(machine.uarch().l1d);
        let timing = machine
            .time_trace(block.insts(), &trace, &layout, &mut l1i, &mut l1d)
            .unwrap();
        let samples: Vec<u64> = (0..64)
            .map(|_| machine.observe(&timing).core_cycles)
            .collect();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        assert!(max > min, "noise must perturb at least one of 64 trials");
        let modal = samples.iter().filter(|&&s| s == min).count();
        assert!(modal >= 32, "the clean timing must dominate ({modal}/64)");
    }

    #[test]
    fn recycled_machine_matches_fresh_machine() {
        let noisy = crate::noise::NoiseConfig::realistic();
        let blocks = [
            parse_block("mov rax, qword ptr [rbx]\nadd rax, rcx").unwrap(),
            parse_block("imul rcx, rdx\nadd rax, 1").unwrap(),
        ];
        let run = |machine: &mut Machine, block: &bhive_asm::BasicBlock| {
            machine.reset(0x1234_5600);
            let page = machine.memory_mut().alloc_page(0x1234_5600);
            machine.memory_mut().map(0x1234_5600, page);
            machine.run(block.insts(), 16).unwrap().counters
        };
        // One machine recycled across blocks vs. a fresh machine per
        // block: counters must agree exactly, including sampled noise.
        let mut reused = Machine::with_noise(Uarch::haswell(), 7, noisy);
        for (idx, block) in blocks.iter().enumerate() {
            let seed = 7 + idx as u64;
            reused.recycle(seed, noisy);
            let mut fresh = Machine::with_noise(Uarch::haswell(), seed, noisy);
            assert_eq!(
                run(&mut reused, block),
                run(&mut fresh, block),
                "block {idx}"
            );
        }
    }

    #[test]
    fn subnormal_counter_reported() {
        let block = parse_block("mulps xmm0, xmm1\naddps xmm2, xmm0").unwrap();
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.reset(0);
        // Fill xmm0 lanes with subnormals.
        let tiny = (f32::MIN_POSITIVE / 4.0).to_le_bytes();
        let mut bytes = [0u8; 16];
        for chunk in bytes.chunks_exact_mut(4) {
            chunk.copy_from_slice(&tiny);
        }
        machine
            .state_mut()
            .set_vec(bhive_asm::VecReg::xmm(1), &bytes, false);
        let out = machine.run(block.insts(), 4).unwrap();
        assert!(out.counters.subnormal_events > 0);
        // With FTZ/DAZ there is nothing to report.
        machine.reset(0);
        machine.set_ftz_daz(true);
        machine
            .state_mut()
            .set_vec(bhive_asm::VecReg::xmm(1), &bytes, false);
        let out = machine.run(block.insts(), 4).unwrap();
        assert_eq!(out.counters.subnormal_events, 0);
    }
}
