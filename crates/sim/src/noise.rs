//! OS-noise model: context switches and interrupts.
//!
//! Real measurements are perturbed by context switches (observable through
//! a counter, as the paper's framework checks) and by interrupts (NOT
//! directly observable — this is precisely why the framework demands at
//! least 8 *identical* clean timings out of 16 before accepting a block).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the stochastic measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Probability of a context switch per 1 000 measured cycles.
    pub ctx_switch_per_kcycle: f64,
    /// Cycle cost added by one context switch.
    pub ctx_switch_cost: u64,
    /// Probability of a timer/device interrupt per 1 000 measured cycles.
    pub interrupt_per_kcycle: f64,
    /// Cycle cost range of one interrupt.
    pub interrupt_cost: (u64, u64),
}

impl NoiseConfig {
    /// Completely quiet machine (deterministic timings).
    pub fn quiet() -> NoiseConfig {
        NoiseConfig {
            ctx_switch_per_kcycle: 0.0,
            ctx_switch_cost: 0,
            interrupt_per_kcycle: 0.0,
            interrupt_cost: (0, 0),
        }
    }

    /// Noise levels representative of a tickful Linux box: a measurement
    /// of a few thousand cycles is polluted a few percent of the time.
    pub fn realistic() -> NoiseConfig {
        NoiseConfig {
            ctx_switch_per_kcycle: 0.004,
            ctx_switch_cost: 40_000,
            interrupt_per_kcycle: 0.02,
            interrupt_cost: (300, 3_000),
        }
    }

    /// Samples noise for a measurement of `cycles` cycles. Returns
    /// `(extra_cycles, context_switches)`.
    pub fn sample<R: Rng>(&self, cycles: u64, rng: &mut R) -> (u64, u64) {
        let kcycles = cycles as f64 / 1000.0;
        let mut extra = 0u64;
        let mut switches = 0u64;
        let ctx_expect = kcycles * self.ctx_switch_per_kcycle;
        for _ in 0..poisson_like(ctx_expect, rng) {
            switches += 1;
            extra += self.ctx_switch_cost;
        }
        let irq_expect = kcycles * self.interrupt_per_kcycle;
        for _ in 0..poisson_like(irq_expect, rng) {
            let (lo, hi) = self.interrupt_cost;
            extra += if hi > lo { rng.gen_range(lo..hi) } else { lo };
        }
        (extra, switches)
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::realistic()
    }
}

/// Cheap Poisson-ish sampler: adequate for the tiny expectations used here.
fn poisson_like<R: Rng>(expectation: f64, rng: &mut R) -> u64 {
    if expectation <= 0.0 {
        return 0;
    }
    let mut count = 0u64;
    let mut remaining = expectation;
    while remaining > 0.0 {
        let p = remaining.min(1.0);
        if rng.gen_bool(p * 0.632_120_56) {
            // P(X>=1) for Poisson(1) ≈ 0.632; a coarse approximation.
            count += 1;
        }
        remaining -= 1.0;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn quiet_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let noise = NoiseConfig::quiet();
        assert_eq!(noise.sample(1_000_000, &mut rng), (0, 0));
    }

    #[test]
    fn realistic_noise_sometimes_fires() {
        let mut rng = SmallRng::seed_from_u64(42);
        let noise = NoiseConfig::realistic();
        let mut any_extra = 0;
        let mut any_clean = 0;
        for _ in 0..200 {
            let (extra, _) = noise.sample(5_000, &mut rng);
            if extra > 0 {
                any_extra += 1;
            } else {
                any_clean += 1;
            }
        }
        assert!(any_extra > 0, "some trials must be polluted");
        assert!(any_clean > 100, "most trials must stay clean");
    }

    #[test]
    fn long_measurements_attract_more_noise() {
        let noise = NoiseConfig::realistic();
        let total = |cycles: u64| {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..300)
                .map(|_| noise.sample(cycles, &mut rng).0)
                .sum::<u64>()
        };
        assert!(total(100_000) > total(1_000));
    }
}
