//! Simulated virtual memory: a sparse page table over physical pages.
//!
//! This is the substrate the paper's page-mapping trick manipulates: the
//! monitor maps every virtual page a block touches onto a *single physical
//! page*, which both prevents faults and guarantees L1-data-cache hits on a
//! virtually-indexed, physically-tagged cache.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Page size (4 KiB), matching x86-64.
pub const PAGE_SIZE: u64 = 4096;

/// Multiplicative hasher for the page table's `u64` page-number keys.
///
/// Address translation runs once or twice per simulated memory access, so
/// the default SipHash costs more than the table probe itself. Page
/// numbers are attacker-free simulator-internal values; a single
/// multiply-xor round spreads them well enough. Nothing observable
/// iterates the table (page-id dumps are sorted), so the order change is
/// invisible.
#[derive(Default)]
struct PageNumberHasher(u64);

impl Hasher for PageNumberHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the page table).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = (n ^ self.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type PageTable = HashMap<u64, PhysPage, BuildHasherDefault<PageNumberHasher>>;

/// Identifier of a physical page inside the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysPage(pub u32);

/// A memory fault (the simulated SIGSEGV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegFault {
    /// The faulting virtual address.
    pub vaddr: u64,
    /// Whether the access was a write.
    pub write: bool,
}

/// Sparse simulated memory.
///
/// Physical pages are pooled: [`Memory::recycle`] returns every page to
/// a free list instead of dropping it, so a long-lived machine profiles
/// block after block without heap churn. The free list is kept in
/// descending order and popped ascending, which preserves the invariant
/// that live pages occupy a prefix of the pool — a recycled memory hands
/// out the same [`PhysPage`] id sequence as a freshly constructed one,
/// keeping physical addresses (and therefore cache tags) bit-identical.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    table: PageTable,
    pages: Vec<Box<[u8]>>,
    free: Vec<u32>,
}

impl Memory {
    /// An empty memory with no mappings.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Allocates a new physical page filled with the low 32 bits of
    /// `fill` as a repeating little-endian pattern — the paper's
    /// "moderately sized" constant `0x12345600`.
    ///
    /// The 32-bit repeat means 4-byte loads see the mappable constant and
    /// 8-byte double-precision loads see a *normal* f64
    /// (`0x1234560012345600`); an 8-byte *pointer* load sees a value above
    /// the 47-bit user-space limit, which the monitor correctly refuses to
    /// map — a mappable 64-bit fill would instead make every double lane
    /// subnormal, which is the worse artifact.
    pub fn alloc_page(&mut self, fill: u64) -> PhysPage {
        if let Some(idx) = self.free.pop() {
            let page = PhysPage(idx);
            self.refill_page(page, fill);
            return page;
        }
        let mut page = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        for chunk in page.chunks_exact_mut(4) {
            chunk.copy_from_slice(&(fill as u32).to_le_bytes());
        }
        self.pages.push(page);
        PhysPage(u32::try_from(self.pages.len() - 1).expect("physical page pool exceeds u32 range"))
    }

    /// Re-fills an existing physical page with the pattern.
    pub fn refill_page(&mut self, page: PhysPage, fill: u64) {
        let data = &mut self.pages[page.0 as usize];
        for chunk in data.chunks_exact_mut(4) {
            chunk.copy_from_slice(&(fill as u32).to_le_bytes());
        }
    }

    /// Re-fills every *live* physical page — the paper's framework
    /// re-initializes memory values before restarting the block, so the
    /// mapping-stage and measurement-stage address traces are identical.
    /// Pooled-but-free pages are skipped; they are refilled on
    /// reallocation.
    pub fn refill_all(&mut self, fill: u64) {
        for idx in 0..self.live_page_count() {
            let idx = u32::try_from(idx).expect("physical page pool exceeds u32 range");
            self.refill_page(PhysPage(idx), fill);
        }
    }

    /// Unmaps everything and returns every physical page to the free
    /// pool, keeping the allocations for the next block.
    pub fn recycle(&mut self) {
        self.table.clear();
        self.free.clear();
        let pooled = u32::try_from(self.pages.len()).expect("physical page pool exceeds u32 range");
        self.free.extend((0..pooled).rev());
    }

    /// Number of physical pages currently backing mappings (always a
    /// prefix of the pool; see the type-level invariant).
    pub fn live_page_count(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Total physical pages held, live or pooled.
    pub fn pooled_page_count(&self) -> usize {
        self.pages.len()
    }

    /// Maps the virtual page containing `vaddr` to `phys`.
    pub fn map(&mut self, vaddr: u64, phys: PhysPage) {
        self.table.insert(vaddr / PAGE_SIZE, phys);
    }

    /// Removes every mapping (the paper unmaps all pages except the code
    /// before the mapping run).
    pub fn unmap_all(&mut self) {
        self.table.clear();
    }

    /// Number of distinct virtual pages currently mapped.
    pub fn mapped_page_count(&self) -> usize {
        self.table.len()
    }

    /// Number of distinct *physical* pages referenced by the mapping.
    pub fn distinct_phys_pages(&self) -> usize {
        let mut ids: Vec<u32> = self.table.values().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Translates a virtual address to (physical page, offset).
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if the page is unmapped.
    pub fn translate(&self, vaddr: u64, write: bool) -> Result<(PhysPage, u64), SegFault> {
        match self.table.get(&(vaddr / PAGE_SIZE)) {
            Some(&page) => Ok((page, vaddr % PAGE_SIZE)),
            None => Err(SegFault { vaddr, write }),
        }
    }

    /// A stable physical byte address for cache tagging: page id × 4 KiB +
    /// offset.
    pub fn phys_addr(&self, vaddr: u64, write: bool) -> Result<u64, SegFault> {
        let (page, off) = self.translate(vaddr, write)?;
        Ok(u64::from(page.0) * PAGE_SIZE + off)
    }

    /// Reads up to 32 bytes. Accesses may cross one page boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] naming the first unmapped byte.
    pub fn read(&self, vaddr: u64, buf: &mut [u8]) -> Result<(), SegFault> {
        // One translation per page segment (at most two): an access
        // crosses at most one page boundary.
        let mut done = 0usize;
        while done < buf.len() {
            let addr = vaddr.wrapping_add(done as u64);
            let (page, off) = self.translate(addr, false)?;
            let run = buf.len().min(done + (PAGE_SIZE - off) as usize) - done;
            let src = &self.pages[page.0 as usize][off as usize..off as usize + run];
            buf[done..done + run].copy_from_slice(src);
            done += run;
        }
        Ok(())
    }

    /// Writes up to 32 bytes. Accesses may cross one page boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] naming the first unmapped byte.
    pub fn write(&mut self, vaddr: u64, bytes: &[u8]) -> Result<(), SegFault> {
        // Validate both page segments first so a partial write never
        // lands, then copy per segment (an access crosses at most one
        // page boundary).
        let mut segs = [(PhysPage(0), 0u64, 0usize, 0usize); 2];
        let mut n_segs = 0;
        let mut done = 0usize;
        while done < bytes.len() {
            let addr = vaddr.wrapping_add(done as u64);
            let (page, off) = self.translate(addr, true)?;
            let run = bytes.len().min(done + (PAGE_SIZE - off) as usize) - done;
            segs[n_segs] = (page, off, done, run);
            n_segs += 1;
            done += run;
        }
        for &(page, off, start, run) in &segs[..n_segs] {
            self.pages[page.0 as usize][off as usize..off as usize + run]
                .copy_from_slice(&bytes[start..start + run]);
        }
        Ok(())
    }

    /// Convenience scalar read (little-endian), `width` ∈ {1, 2, 4, 8}.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if any byte is unmapped.
    pub fn read_scalar(&self, vaddr: u64, width: u8) -> Result<u64, SegFault> {
        let mut buf = [0u8; 8];
        self.read(vaddr, &mut buf[..width as usize])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Convenience scalar write (little-endian).
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if any byte is unmapped.
    pub fn write_scalar(&mut self, vaddr: u64, width: u8, value: u64) -> Result<(), SegFault> {
        self.write(vaddr, &value.to_le_bytes()[..width as usize])
    }

    /// Reads a scalar and its physical address with a single translation
    /// when the access stays inside one page (the overwhelmingly common
    /// case); page-crossing accesses fall back to the two-step path.
    ///
    /// Bit-identical to `read_scalar` + `phys_addr`: within one page the
    /// first (and only) faultable byte is `vaddr` itself, so the reported
    /// fault matches the general path's.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if any byte is unmapped.
    pub fn read_scalar_paddr(&self, vaddr: u64, width: u8) -> Result<(u64, u64), SegFault> {
        let off = vaddr % PAGE_SIZE;
        if off + u64::from(width) <= PAGE_SIZE {
            let (page, off) = self.translate(vaddr, false)?;
            let src = &self.pages[page.0 as usize][off as usize..off as usize + width as usize];
            let mut buf = [0u8; 8];
            buf[..width as usize].copy_from_slice(src);
            Ok((u64::from_le_bytes(buf), u64::from(page.0) * PAGE_SIZE + off))
        } else {
            let value = self.read_scalar(vaddr, width)?;
            let paddr = self.phys_addr(vaddr, false)?;
            Ok((value, paddr))
        }
    }

    /// Reads a byte slice and returns its physical address with a single
    /// translation on non-page-crossing accesses. See
    /// [`Memory::read_scalar_paddr`] for the fault-equivalence argument.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if any byte is unmapped.
    pub fn read_paddr(&self, vaddr: u64, buf: &mut [u8]) -> Result<u64, SegFault> {
        let off = vaddr % PAGE_SIZE;
        if off + buf.len() as u64 <= PAGE_SIZE {
            let (page, off) = self.translate(vaddr, false)?;
            buf.copy_from_slice(
                &self.pages[page.0 as usize][off as usize..off as usize + buf.len()],
            );
            Ok(u64::from(page.0) * PAGE_SIZE + off)
        } else {
            self.read(vaddr, buf)?;
            self.phys_addr(vaddr, false)
        }
    }

    /// Writes a byte slice and returns its physical address with a single
    /// translation on non-page-crossing accesses. See
    /// [`Memory::read_scalar_paddr`] for the fault-equivalence argument.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if any byte is unmapped.
    pub fn write_paddr(&mut self, vaddr: u64, bytes: &[u8]) -> Result<u64, SegFault> {
        let off = vaddr % PAGE_SIZE;
        if off + bytes.len() as u64 <= PAGE_SIZE {
            let (page, off) = self.translate(vaddr, true)?;
            self.pages[page.0 as usize][off as usize..off as usize + bytes.len()]
                .copy_from_slice(bytes);
            Ok(u64::from(page.0) * PAGE_SIZE + off)
        } else {
            self.write(vaddr, bytes)?;
            self.phys_addr(vaddr, true)
        }
    }

    /// Writes a scalar and returns its physical address with a single
    /// translation on non-page-crossing accesses. See
    /// [`Memory::read_scalar_paddr`] for the fault-equivalence argument.
    ///
    /// # Errors
    ///
    /// Returns [`SegFault`] if any byte is unmapped.
    pub fn write_scalar_paddr(
        &mut self,
        vaddr: u64,
        width: u8,
        value: u64,
    ) -> Result<u64, SegFault> {
        let off = vaddr % PAGE_SIZE;
        if off + u64::from(width) <= PAGE_SIZE {
            let (page, off) = self.translate(vaddr, true)?;
            let dst = &mut self.pages[page.0 as usize][off as usize..off as usize + width as usize];
            dst.copy_from_slice(&value.to_le_bytes()[..width as usize]);
            Ok(u64::from(page.0) * PAGE_SIZE + off)
        } else {
            self.write_scalar(vaddr, width, value)?;
            self.phys_addr(vaddr, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let mem = Memory::new();
        let err = mem.read_scalar(0x5000, 8).unwrap_err();
        assert_eq!(err.vaddr, 0x5000);
        assert!(!err.write);
    }

    #[test]
    fn fill_pattern_visible() {
        let mut mem = Memory::new();
        let page = mem.alloc_page(0x1234_5600);
        mem.map(0x7000_0000, page);
        assert_eq!(mem.read_scalar(0x7000_0000, 4).unwrap(), 0x1234_5600);
        // 32-bit repeat: an 8-byte load sees the doubled pattern, which is
        // a *normal* f64 (but not a mappable pointer).
        assert_eq!(
            mem.read_scalar(0x7000_0ff8, 8).unwrap(),
            0x1234_5600_1234_5600
        );
    }

    #[test]
    fn many_virtual_pages_one_physical_page() {
        // The heart of the paper's trick: writes through one virtual page
        // are visible through every other page mapped to the same frame.
        let mut mem = Memory::new();
        let page = mem.alloc_page(0);
        mem.map(0x1000, page);
        mem.map(0x2000, page);
        mem.write_scalar(0x1008, 8, 0xABCD).unwrap();
        assert_eq!(mem.read_scalar(0x2008, 8).unwrap(), 0xABCD);
        assert_eq!(mem.mapped_page_count(), 2);
        assert_eq!(mem.distinct_phys_pages(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let a = mem.alloc_page(0);
        let b = mem.alloc_page(0);
        mem.map(0x1000, a);
        mem.map(0x2000, b);
        mem.write_scalar(0x1FFC, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_scalar(0x1FFC, 8).unwrap(), 0x1122_3344_5566_7788);
        // Crossing into an unmapped page faults without partial writes.
        let err = mem.write_scalar(0x2FFC, 8, 1).unwrap_err();
        assert_eq!(err.vaddr, 0x3000);
        assert!(err.write);
    }

    #[test]
    fn recycle_reuses_pages_with_identical_ids() {
        let mut mem = Memory::new();
        let a = mem.alloc_page(0x1234_5600);
        let b = mem.alloc_page(0x1234_5600);
        mem.map(0x1000, a);
        mem.map(0x2000, b);
        mem.write_scalar(0x1000, 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(mem.live_page_count(), 2);

        mem.recycle();
        assert_eq!(mem.mapped_page_count(), 0);
        assert_eq!(mem.live_page_count(), 0);
        assert_eq!(mem.pooled_page_count(), 2);

        // Reallocation hands out the same id sequence as a fresh memory,
        // with the fill pattern restored (no stale data).
        let a2 = mem.alloc_page(0x1234_5600);
        assert_eq!(a2, a);
        mem.map(0x9000, a2);
        assert_eq!(mem.read_scalar(0x9000, 4).unwrap(), 0x1234_5600);
        assert_eq!(mem.pooled_page_count(), 2, "no fresh allocation");

        // Exhausting the pool falls back to real allocation, continuing
        // the id sequence exactly like a fresh memory would.
        let b2 = mem.alloc_page(0);
        let c = mem.alloc_page(0);
        assert_eq!(b2, b);
        assert_eq!(c, PhysPage(2));
    }

    #[test]
    fn write_then_unmap_then_fault() {
        let mut mem = Memory::new();
        let page = mem.alloc_page(0);
        mem.map(0x1000, page);
        mem.write_scalar(0x1000, 4, 42).unwrap();
        mem.unmap_all();
        assert!(mem.read_scalar(0x1000, 4).is_err());
    }
}
