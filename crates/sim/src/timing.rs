//! Cycle-level out-of-order timing model.
//!
//! The model is a classic resource-constrained OoO pipeline: an in-order
//! frontend fetching through the L1I cache, rename/allocate limited by
//! issue width, ROB and RS capacity, a greedy oldest-first scheduler over
//! the per-uarch execution ports, load/store handling through the VIPT
//! L1D, and in-order retirement. It consumes the *dynamic* instruction
//! trace produced by functional execution, so value-dependent latencies
//! (division, subnormals) and the concrete memory addresses are exact.
//!
//! The run is split in two phases so the harness's double execution (and
//! its two unroll factors) never redoes schedule-independent work:
//!
//! * [`TimingModel::prepare_into`] turns a trace into a [`PreparedTrace`]:
//!   the dynamic uop stream with resolved latencies, dependency edges,
//!   memory addresses, and the frontend fetch/L1I-probe schedule — laid
//!   out structure-of-arrays so the cycle loop streams through parallel
//!   `ports`/`latency`/`dep_*` columns instead of chasing struct fields.
//! * [`TimingModel::simulate_with`] replays a prepared trace (or any
//!   prefix of it) against concrete cache state, which is the only input
//!   that differs between warm-up and measured runs. Readiness testing is
//!   batched through the runtime-dispatched SIMD kernels of
//!   [`crate::simd`] (AVX2 / SSE4.1 / scalar), dependency resolution uses
//!   consumer wake-up lists instead of rescanning producer lists every
//!   cycle, and stretches of cycles where nothing can happen are skipped
//!   in one step — all without changing a single observable bit.
//!
//! [`TimingModel::run_reference`] keeps the original single-pass
//! implementation; differential tests pin the split path to it bit for
//! bit at every SIMD dispatch tier.
//!
//! Both paths share one safety valve: a schedule that fails to retire
//! everything within the cycle budget returns [`NonConvergence`] instead
//! of a silently truncated [`TimingResult`] (debug and release behave
//! identically).

use crate::cache::Cache;
use crate::exec::InstEffects;
use crate::simd::{self, SimdTier, READY_NEVER};
use crate::state::CpuState;
use bhive_asm::{AsmError, Gpr, Inst};
use bhive_uarch::{decompose_cached, macro_fuses, Recipe, Uarch, UarchKind, Uop, UopKind, VarLat};
use std::collections::HashMap;
use std::fmt;

/// Where the unrolled code lives in (virtual) memory; determines which L1I
/// lines it occupies.
#[derive(Debug, Clone)]
pub struct CodeLayout {
    /// Base virtual address of the first copy.
    pub base: u64,
    /// `(offset, len)` of each static instruction within one block copy.
    pub inst_spans: Vec<(u32, u32)>,
    /// Encoded length of one block copy in bytes.
    pub block_len: u32,
}

impl CodeLayout {
    /// Computes the layout of a block placed at `base`, using real encoded
    /// instruction lengths.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors for unsupported instructions.
    pub fn from_block(insts: &[Inst], base: u64) -> Result<CodeLayout, AsmError> {
        let mut spans = Vec::with_capacity(insts.len());
        let mut offset = 0u32;
        for inst in insts {
            let len = bhive_asm::encoded_len(inst)? as u32;
            spans.push((offset, len));
            offset += len;
        }
        Ok(CodeLayout {
            base,
            inst_spans: spans,
            block_len: offset,
        })
    }

    /// Builds the layout from `(offset, len)` spans recorded while the
    /// block was encoded (see `BasicBlock::encode_spanned`), so callers
    /// that already hold the machine code do not encode it a second time.
    pub fn from_spans(inst_spans: Vec<(u32, u32)>, base: u64) -> CodeLayout {
        let block_len = inst_spans
            .last()
            .map(|&(off, len)| off + len)
            .unwrap_or_default();
        CodeLayout {
            base,
            inst_spans,
            block_len,
        }
    }

    /// Code address and length of `static_idx` within unrolled copy `copy`.
    pub fn addr(&self, copy: u32, static_idx: usize) -> (u64, u32) {
        let (off, len) = self.inst_spans[static_idx];
        (
            self.base + u64::from(copy) * u64::from(self.block_len) + u64::from(off),
            len,
        )
    }

    /// Total footprint of `copies` unrolled copies, in bytes.
    pub fn footprint(&self, copies: u32) -> u64 {
        u64::from(self.block_len) * u64::from(copies)
    }
}

/// One dynamic instruction of the trace: which static instruction, which
/// unrolled copy, and its value-dependent effects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynInst {
    /// Index into the static block.
    pub static_idx: usize,
    /// Which unrolled copy this execution belongs to.
    pub copy: u32,
    /// Effects recorded by functional execution.
    pub effects: InstEffects,
}

/// Timing statistics of one run of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingResult {
    /// Total core cycles from first fetch to last retirement.
    pub cycles: u64,
    /// L1D read misses.
    pub l1d_read_misses: u64,
    /// L1D write misses.
    pub l1d_write_misses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// Line-splitting (misaligned) loads/stores.
    pub misaligned: u64,
    /// Unfused uops executed.
    pub uops: u64,
    /// Instructions retired.
    pub insts: u64,
}

/// The timing model exhausted its cycle budget without retiring the whole
/// trace: the schedule deadlocked (e.g. a uop that can never fit in the
/// RS) or degenerated. Surfaced as a hard error — identically in debug
/// and release builds — so a truncated, meaningless [`TimingResult`] can
/// never masquerade as a measurement.
///
/// The payload deliberately excludes the final cycle counter: the batched
/// and reference paths may abandon a pathological schedule after a
/// different number of (provably event-free) wall-clock iterations, but
/// the *state* they abandon is identical, and so is this error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonConvergence {
    /// The exhausted cycle budget.
    pub cycle_budget: u64,
    /// Instructions retired before giving up.
    pub retired: usize,
    /// Instructions the trace wanted retired.
    pub total_insts: usize,
}

impl fmt::Display for NonConvergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timing model failed to converge: {}/{} instructions retired \
             within the {}-cycle budget",
            self.retired, self.total_insts, self.cycle_budget
        )
    }
}

impl std::error::Error for NonConvergence {}

/// Dependency-tracking key (reference path only; the prepared path uses
/// the flat producer scoreboard below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DepKey {
    Gpr(u8),
    Vec(u8),
    Flags,
}

const NO_UOP: u32 = u32::MAX;

/// Flat producer-scoreboard layout: GPRs at `0..16`, vector registers at
/// `16..32`, RFLAGS at `32`. Indexing an array beats hashing a `DepKey`
/// on every register read of every dynamic instruction.
const PRODUCER_SLOTS: usize = 33;
const FLAGS_SLOT: u8 = 32;

fn gpr_slot(n: u8) -> u8 {
    n
}

fn vec_slot(n: u8) -> u8 {
    16 + n
}

/// Reference-path dynamic uop (AoS). The prepared hot path stores the
/// same fields as parallel columns in [`PreparedTrace`].
#[derive(Debug, Clone)]
struct DynUop {
    ports: u8,
    latency: u32,
    blocking: u32,
    kind: UopKind,
    /// Producer uop ids: `dep_pool[dep_start..dep_start + dep_len]`.
    dep_start: u32,
    dep_len: u16,
    /// Load/store address for the D-cache (vaddr, paddr, width).
    mem: Option<(u64, u64, u8)>,
}

/// Open-addressed map from 8-byte address chunk to the uop id of the
/// latest store covering it (store-to-load forwarding scoreboard).
/// Replaces a `HashMap<u64, u32>`: no hasher state, no rehash-per-lookup,
/// and `reset` keeps the backing storage for the next trace.
#[derive(Debug, Default)]
struct ChunkTable {
    keys: Vec<u64>,
    /// `NO_UOP` marks an empty slot (store uop ids are always < `NO_UOP`).
    vals: Vec<u32>,
    len: usize,
}

impl ChunkTable {
    fn reset(&mut self) {
        if self.keys.is_empty() {
            self.keys = vec![0; 64];
            self.vals = vec![NO_UOP; 64];
        } else {
            self.vals.fill(NO_UOP);
        }
        self.len = 0;
    }

    fn slot(&self, chunk: u64) -> usize {
        // Fibonacci hashing spreads the (dense, small) chunk numbers.
        ((chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.keys.len() - 1)
    }

    fn get(&self, chunk: u64) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut i = self.slot(chunk);
        loop {
            if self.vals[i] == NO_UOP {
                return None;
            }
            if self.keys[i] == chunk {
                return Some(self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, chunk: u64, uop: u32) {
        // Keep load factor below 3/4 so probe sequences stay short and
        // lookups always terminate on an empty slot.
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.slot(chunk);
        loop {
            if self.vals[i] == NO_UOP {
                self.keys[i] = chunk;
                self.vals[i] = uop;
                self.len += 1;
                return;
            }
            if self.keys[i] == chunk {
                self.vals[i] = uop;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![NO_UOP; new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != NO_UOP {
                self.insert(k, v);
            }
        }
    }
}

/// Issue-time attributes of one uop, packed into a single record so the
/// scheduler's issue block costs one cache-line touch instead of one per
/// SoA column. The consumer list is
/// `use_pool[meta[u].use_start..meta[u + 1].use_start]` (the `meta`
/// array carries a trailing sentinel).
#[derive(Debug, Clone, Copy, Default)]
struct UopMeta {
    /// Resolved result latency in cycles (≥ 1).
    latency: u32,
    /// Cycles the chosen port stays busy.
    blocking: u32,
    /// Owning dynamic-instruction index.
    owner: u32,
    /// Start of the consumer wake-up list in `use_pool`.
    use_start: u32,
    /// Candidate execution-port bitmask.
    ports: u8,
    /// Memory access width in bytes; 0 = no access.
    mem_width: u8,
    /// 1 for store-data uops (their memory access is a write).
    is_store: u8,
    _pad: u8,
}

/// A trace compiled into its schedule-independent form: the dynamic uop
/// stream with resolved latencies, dependency edges, memory addresses,
/// and the frontend fetch/L1I-probe schedule. Built once per attempt and
/// replayed by [`TimingModel::simulate_with`] for every warm-up/measured
/// run.
///
/// Layout is structure-of-arrays: one parallel column per uop attribute,
/// indexed by uop id, plus forward dependency lists (`dep_*` into
/// `dep_pool`) and their transpose (`use_*` into `use_pool`, the
/// consumer wake-up lists the scheduler walks at issue time).
///
/// All contents are *prefix-closed*: because functional execution is
/// deterministic, the preparation of the first `n` dynamic instructions
/// equals the first `n` instructions' worth of the full preparation, so a
/// hi-factor preparation serves the lo-factor run as a prefix.
/// (Dependencies only ever point backwards, so every forward edge out of
/// a prefix lands in the suffix and is simply never consulted.)
#[derive(Debug, Default)]
pub struct PreparedTrace {
    // ---- Per-uop columns (SoA), indexed by uop id ----
    /// Candidate execution-port bitmask.
    ports: Vec<u8>,
    /// Resolved result latency in cycles (≥ 1).
    latency: Vec<u32>,
    /// Cycles the chosen port stays busy.
    blocking: Vec<u32>,
    /// True for store-data uops (their memory access is a write).
    is_store: Vec<bool>,
    /// Producer list start: `dep_pool[dep_start..dep_start + dep_len]`.
    dep_start: Vec<u32>,
    /// Producer list length.
    dep_len: Vec<u16>,
    /// Memory access `[virtual, physical]` address pair (meaningful iff
    /// the uop's `meta.mem_width != 0`); one array so the issue path
    /// touches one cache line per access, not two.
    mem_addr: Vec<[u64; 2]>,
    /// Packed issue-time descriptors, one per uop plus a trailing
    /// sentinel (for `use_start` range ends). Derived from the SoA
    /// columns at the end of [`TimingModel::prepare_into`]: the
    /// scheduler's issue block reads one 20-byte record instead of
    /// gathering from eight parallel columns.
    meta: Vec<UopMeta>,
    /// Initial `ready_at` value: 0 for dependency-free uops,
    /// [`READY_NEVER`] otherwise (consumed by the reference pipeline).
    ready_init: Vec<u64>,
    /// Bit per uop id: set iff the uop has no producers, i.e. its
    /// operands are ready from cycle 0. Copied wholesale into the
    /// scheduler's ready set at simulation start.
    ready0_mask: Vec<u64>,
    /// Initial wake-up countdowns (`unresolved` = producer count),
    /// memcpy'd into the scratch at simulation start instead of being
    /// rebuilt element by element on every pass.
    wake0: Vec<WakeState>,
    /// Initial retire-side state (`unissued` = uop count), memcpy'd the
    /// same way; `simulate_with` copies the replayed prefix only.
    inst_state0: Vec<InstState>,
    /// Packed per-instruction rename/retire record (uop span, slots,
    /// elimination flag), mirroring the four per-instruction columns.
    inst_meta: Vec<InstMeta>,
    /// All uop dependency lists, back to back (one allocation instead of
    /// a heap Vec per uop).
    dep_pool: Vec<u32>,
    /// Transposed edges: uop `u`'s consumers are
    /// `use_pool[use_start[u]..use_start[u + 1]]`. Length `uops + 1`.
    use_start: Vec<u32>,
    /// Consumer uop ids, grouped by producer.
    use_pool: Vec<u32>,
    // ---- Per-instruction columns ----
    /// First uop id of each instruction.
    inst_first: Vec<u32>,
    /// One past the last uop id of each instruction.
    inst_last: Vec<u32>,
    /// Fused-domain rename/retire slots.
    inst_slots: Vec<u32>,
    /// Eliminated at rename (no uops).
    inst_elim: Vec<bool>,
    /// Per-instruction fetch clock before stalls: cumulative bytes / 16.
    fetch_base: Vec<u64>,
    /// L1I line probes as `(instruction index, line address)`, in program
    /// order with consecutive duplicates removed.
    probes: Vec<(u32, u64)>,
    // Prepare-time scratch, reused across prepares; dead weight to
    // `simulate_with`.
    stores: ChunkTable,
    reg_deps: Vec<u32>,
    addr_deps: Vec<u32>,
    use_cursor: Vec<u32>,
}

impl PreparedTrace {
    /// Number of prepared dynamic instructions.
    pub fn len(&self) -> usize {
        self.inst_first.len()
    }

    /// True if nothing is prepared.
    pub fn is_empty(&self) -> bool {
        self.inst_first.is_empty()
    }

    /// Number of unfused uops in the prepared stream.
    pub fn uop_count(&self) -> usize {
        self.ports.len()
    }
}

/// Reusable per-simulation state (completion times, RS contents,
/// readiness scoreboard, fetch and rename cycles). Owning one and passing
/// it to [`TimingModel::simulate_with`] makes repeated simulations
/// allocation-free.
#[derive(Debug, Default)]
pub struct SimScratch {
    completion: Vec<u64>,
    fetch_cycle: Vec<u64>,
    rename_cycle: Vec<u64>,
    /// Per-uop wake-up countdown (packed: running max of resolved
    /// producers' completion cycles + producers not yet issued, so one
    /// wake-up edge costs one cache-line touch).
    wake: Vec<WakeState>,
    /// Per-instruction retire state (packed for the same reason).
    inst_state: Vec<InstState>,
    /// The ready set: bit per uop id, set while the uop's operands are
    /// available and it has not issued. Seeded from
    /// `PreparedTrace::ready0_mask`; wake-ups land here through the
    /// pending calendar below. Bits past the rename frontier are
    /// invisible to the issue scan until their instruction renames.
    ready_bits: Vec<u64>,
    /// Pending wake-up calendar: `(cycle << PEND_SHIFT) | uop_id` keys
    /// for uops whose operands resolve at a known future cycle. Drained
    /// into `ready_bits` once that cycle arrives; the drain compare is
    /// the SIMD readiness kernel's job when the calendar is deep enough.
    pend: Vec<u64>,
    /// Kernel output scratch for batched drains.
    drain_bits: Vec<u64>,
}

/// Bit position splitting a pending-calendar key into `(cycle, uop id)`:
/// `key = (ready_cycle << PEND_SHIFT) | uop_id`. Keys order by ready
/// cycle first, so the calendar minimum *is* the earliest wake-up, and
/// one comparison against `(cycle + 1) << PEND_SHIFT` tests maturity.
/// 24 id bits cap prepared traces at 16M uops (asserted in prepare);
/// cycle values are bounded by the convergence budget, far below the
/// remaining 40 bits.
const PEND_SHIFT: u32 = 24;

/// Wake-up countdown for one uop: the consumer side of the scoreboard.
#[derive(Debug, Clone, Copy, Default)]
struct WakeState {
    /// Running max of resolved producers' completion cycles.
    dep_ready: u64,
    /// Producers not yet issued.
    unresolved: u32,
    _pad: u32,
}

/// Frontend-facing columns of one dynamic instruction, packed so the
/// rename and retire loops load a single 12-byte record instead of
/// striding over four parallel arrays.
#[derive(Debug, Clone, Copy, Default)]
struct InstMeta {
    /// First uop id.
    first: u32,
    /// One past the last uop id.
    last: u32,
    /// Fused-domain rename/retire slots.
    slots: u16,
    /// Non-zero when eliminated at rename (no uops).
    elim: u16,
}

/// Retire-side state of one dynamic instruction.
#[derive(Debug, Clone, Copy, Default)]
struct InstState {
    /// Max completion cycle among issued uops.
    done_at: u64,
    /// Uops not yet issued.
    unissued: u32,
    _pad: u32,
}

/// How an eliminated instruction rewrites the producer scoreboard at
/// rename, precomputed per static instruction.
#[derive(Debug, Clone)]
enum Elim {
    /// Not eliminated.
    None,
    /// Zero idiom: dependency-break every listed slot.
    Zero(Box<[u8]>),
    /// Eliminated move: alias the destination slot to the source's
    /// producer.
    Move { dst: u8, src: u8 },
    /// Nothing to rewrite (e.g. `nop`).
    Inert,
}

/// Schedule-independent facts about one static instruction, precomputed
/// so the per-dynamic-instruction loop never calls the allocating
/// `gpr_reads()`/`vec_reads()`-style accessors.
#[derive(Debug, Clone)]
struct StaticInfo {
    /// Producer slots the instruction reads (registers, vectors, flags).
    reads: Box<[u8]>,
    /// Producer slots of the memory operand's address registers.
    addr_reads: Box<[u8]>,
    /// Producer slots the instruction's result broadcasts to.
    writes: Box<[u8]>,
    elim: Elim,
}

fn push_unique(out: &mut Vec<u8>, slot: u8) {
    if !out.contains(&slot) {
        out.push(slot);
    }
}

fn static_info(inst: &Inst, recipe: &Recipe) -> StaticInfo {
    if recipe.eliminated {
        let elim = if inst.is_zero_idiom() {
            let mut slots = Vec::new();
            for reg in inst.gpr_writes() {
                push_unique(&mut slots, gpr_slot(reg.number()));
            }
            for vec in inst.vec_writes() {
                push_unique(&mut slots, vec_slot(vec.number()));
            }
            // Scalar idioms (`xor r, r`) also set flags at rename:
            // consumers must not wait on the previous flag writer.
            if !inst.mnemonic().is_sse() {
                push_unique(&mut slots, FLAGS_SLOT);
            }
            Elim::Zero(slots.into_boxed_slice())
        } else if let (Some(dst), Some(src)) = (
            inst.gpr_writes().first().copied(),
            inst.gpr_reads().first().copied(),
        ) {
            Elim::Move {
                dst: gpr_slot(dst.number()),
                src: gpr_slot(src.number()),
            }
        } else if let (Some(dst), Some(src)) = (
            inst.vec_writes().first().copied(),
            inst.vec_reads().first().copied(),
        ) {
            Elim::Move {
                dst: vec_slot(dst.number()),
                src: vec_slot(src.number()),
            }
        } else {
            Elim::Inert
        };
        return StaticInfo {
            reads: Box::default(),
            addr_reads: Box::default(),
            writes: Box::default(),
            elim,
        };
    }

    let mut reads = Vec::new();
    for reg in inst.gpr_reads() {
        push_unique(&mut reads, gpr_slot(reg.number()));
    }
    for vec in inst.vec_reads() {
        push_unique(&mut reads, vec_slot(vec.number()));
    }
    if crate::exec::flags_read(inst) {
        push_unique(&mut reads, FLAGS_SLOT);
    }
    let mut addr_reads = Vec::new();
    if let Some(m) = inst.mem_operand() {
        for reg in m.address_regs() {
            push_unique(&mut addr_reads, gpr_slot(reg.number()));
        }
    }
    let mut writes = Vec::new();
    for reg in inst.gpr_writes() {
        push_unique(&mut writes, gpr_slot(reg.number()));
    }
    for vec in inst.vec_writes() {
        push_unique(&mut writes, vec_slot(vec.number()));
    }
    if crate::exec::flags_written(inst) {
        push_unique(&mut writes, FLAGS_SLOT);
    }
    StaticInfo {
        reads: reads.into_boxed_slice(),
        addr_reads: addr_reads.into_boxed_slice(),
        writes: writes.into_boxed_slice(),
        elim: Elim::None,
    }
}

/// The static (trace-independent) half of a [`TimingModel`]: the uop
/// decomposition of every instruction, the register-slot read/write
/// tables, and the macro-fusion flags. It depends only on the block's
/// instructions and the microarchitecture — never on a dynamic trace —
/// so a machine caches it alongside the lowered block and hands it back
/// to every retry attempt, monitor restart, and unroll factor (see
/// `Machine::take_timing_model`) instead of rebuilding it per attempt.
#[derive(Debug, Clone)]
pub struct StaticPrep {
    recipes: Vec<Recipe>,
    statics: Vec<StaticInfo>,
    /// Static instruction is macro-fused into its predecessor.
    fused_into_prev: Vec<bool>,
}

impl StaticPrep {
    /// Decomposes every static instruction (through the per-thread recipe
    /// memo) and precomputes macro-fusion and the register-slot tables.
    pub fn build(insts: &[Inst], uarch: &Uarch) -> StaticPrep {
        let recipes: Vec<Recipe> = insts
            .iter()
            .map(|inst| decompose_cached(inst, uarch))
            .collect();
        let statics = insts
            .iter()
            .zip(&recipes)
            .map(|(inst, recipe)| static_info(inst, recipe))
            .collect();
        let mut fused_into_prev = vec![false; insts.len()];
        for i in 1..insts.len() {
            if macro_fuses(&insts[i - 1], &insts[i], uarch) {
                fused_into_prev[i] = true;
            }
        }
        StaticPrep {
            recipes,
            statics,
            fused_into_prev,
        }
    }

    /// Number of static instructions this prep describes.
    pub fn len(&self) -> usize {
        self.recipes.len()
    }

    /// True if built from an empty block.
    pub fn is_empty(&self) -> bool {
        self.recipes.is_empty()
    }
}

/// The reusable timing model for a fixed static block on one
/// microarchitecture.
#[derive(Debug)]
pub struct TimingModel<'a> {
    uarch: &'a Uarch,
    insts: &'a [Inst],
    recipes: Vec<Recipe>,
    statics: Vec<StaticInfo>,
    /// Static instruction is macro-fused into its predecessor.
    fused_into_prev: Vec<bool>,
}

impl<'a> TimingModel<'a> {
    /// Builds the model from scratch: [`StaticPrep::build`] plus the
    /// borrows. Callers that profile the same block repeatedly should
    /// round-trip the static half through `Machine::take_timing_model` /
    /// `put_timing_model` instead.
    pub fn new(insts: &'a [Inst], uarch: &'a Uarch) -> TimingModel<'a> {
        TimingModel::with_static(insts, uarch, StaticPrep::build(insts, uarch))
    }

    /// Assembles a model around a previously built [`StaticPrep`].
    ///
    /// # Panics
    ///
    /// Panics if `sp` was built for a different number of instructions —
    /// the cheap guard against pairing a prep with the wrong block (full
    /// identity is the caller's contract).
    pub fn with_static(insts: &'a [Inst], uarch: &'a Uarch, sp: StaticPrep) -> TimingModel<'a> {
        assert_eq!(
            sp.len(),
            insts.len(),
            "static prep built for a different block"
        );
        TimingModel {
            uarch,
            insts,
            recipes: sp.recipes,
            statics: sp.statics,
            fused_into_prev: sp.fused_into_prev,
        }
    }

    /// Releases the static half for reuse by a later
    /// [`TimingModel::with_static`] on the same block.
    pub fn into_static(self) -> StaticPrep {
        StaticPrep {
            recipes: self.recipes,
            statics: self.statics,
            fused_into_prev: self.fused_into_prev,
        }
    }

    /// The microarchitecture the model targets.
    pub fn uarch(&self) -> &Uarch {
        self.uarch
    }

    /// The static block the model was built for.
    pub fn insts(&self) -> &'a [Inst] {
        self.insts
    }

    /// Resolves the concrete latency of a variable-latency uop against the
    /// recorded execution effects.
    fn resolve_latency(&self, uop: &Uop, fx: &InstEffects) -> (u32, u32) {
        let mut latency = uop.latency;
        let mut blocking = uop.blocking;
        match uop.var_lat {
            Some(VarLat::DivGpr { width }) => {
                let qbits = fx.div_quotient_bits.unwrap_or(1);
                latency = div_latency(self.uarch.kind, width, qbits, fx.div_rdx_zero);
                blocking = latency;
            }
            Some(VarLat::FpDiv) | Some(VarLat::FpSqrt) => {
                // Value dependence for FP div/sqrt is mild; subnormal
                // handling below dominates.
            }
            None => {}
        }
        if fx.subnormal && uop.kind == UopKind::Compute {
            // Microcode assist: hugely slower and fully serializing.
            latency = latency.saturating_mul(self.uarch.subnormal_penalty);
            blocking = latency;
        }
        (latency, blocking)
    }

    /// Compiles `trace` into `prep`, reusing `prep`'s allocations. The
    /// prepared stream is valid for any [`TimingModel::simulate_with`]
    /// replay over caches with this model's uarch geometry.
    pub fn prepare_into(&self, prep: &mut PreparedTrace, trace: &[DynInst], layout: &CodeLayout) {
        let PreparedTrace {
            ports,
            latency: latencies,
            blocking: blockings,
            is_store,
            dep_start,
            dep_len,
            mem_addr,
            meta,
            ready_init,
            ready0_mask,
            wake0,
            inst_state0,
            inst_meta,
            dep_pool,
            use_start,
            use_pool,
            inst_first,
            inst_last,
            inst_slots,
            inst_elim,
            fetch_base,
            probes,
            stores,
            reg_deps,
            addr_deps,
            use_cursor,
        } = prep;
        ports.clear();
        latencies.clear();
        blockings.clear();
        is_store.clear();
        dep_start.clear();
        dep_len.clear();
        mem_addr.clear();
        meta.clear();
        ready_init.clear();
        ready0_mask.clear();
        wake0.clear();
        inst_state0.clear();
        inst_meta.clear();
        dep_pool.clear();
        inst_first.clear();
        inst_last.clear();
        inst_slots.clear();
        inst_elim.clear();
        fetch_base.clear();
        probes.clear();
        stores.reset();
        ports.reserve(trace.len());
        inst_first.reserve(trace.len());
        fetch_base.reserve(trace.len());

        // ---- Frontend: fetch byte clock and the L1I probe schedule ----
        {
            let line = u64::from(self.uarch.l1i.line_bytes);
            let mut clock_bytes = 0u64; // 16 fetch bytes per cycle
            let mut last_line = u64::MAX;
            for (i, dyn_inst) in trace.iter().enumerate() {
                let (addr, len) = layout.addr(dyn_inst.copy, dyn_inst.static_idx);
                let mut probe = addr / line;
                let end_line = (addr + u64::from(len) - 1) / line;
                let i32 = u32::try_from(i).expect("trace length exceeds u32 range");
                while probe <= end_line {
                    if probe != last_line {
                        probes.push((i32, probe * line));
                        last_line = probe;
                    }
                    probe += 1;
                }
                clock_bytes += u64::from(len);
                fetch_base.push(clock_bytes / 16);
            }
        }

        // ---- Dynamic uops with dependencies ----
        let mut producers = [NO_UOP; PRODUCER_SLOTS];
        for (inst_idx, dyn_inst) in trace.iter().enumerate() {
            let inst_idx = u32::try_from(inst_idx).expect("trace length exceeds u32 range");
            let recipe = &self.recipes[dyn_inst.static_idx];
            let info = &self.statics[dyn_inst.static_idx];
            let fx = &dyn_inst.effects;
            let first = u32::try_from(ports.len()).expect("uop count exceeds u32 range");
            let mut frontend_slots = recipe.frontend_slots;
            if self.fused_into_prev[dyn_inst.static_idx] {
                frontend_slots = 0;
            }

            if recipe.eliminated {
                match &info.elim {
                    // Zero idiom: break dependencies on the destination.
                    Elim::Zero(slots) => {
                        for &slot in slots.iter() {
                            producers[slot as usize] = NO_UOP;
                        }
                    }
                    // Eliminated move: alias destination to source
                    // producer (NO_UOP propagates "no producer").
                    Elim::Move { dst, src } => {
                        producers[*dst as usize] = producers[*src as usize];
                    }
                    Elim::Inert | Elim::None => {}
                }
                inst_first.push(first);
                inst_last.push(first);
                inst_slots.push(frontend_slots);
                inst_elim.push(true);
                continue;
            }

            // Register/flag dependencies of the whole instruction.
            reg_deps.clear();
            for &slot in info.reads.iter() {
                let p = producers[slot as usize];
                if p != NO_UOP {
                    reg_deps.push(p);
                }
            }
            addr_deps.clear();
            for &slot in info.addr_reads.iter() {
                let p = producers[slot as usize];
                if p != NO_UOP {
                    addr_deps.push(p);
                }
            }

            let mut load_uop: u32 = NO_UOP;
            let mut last_compute: u32 = NO_UOP;
            for uop in &recipe.uops {
                let (latency, blocking) = self.resolve_latency(uop, fx);
                // The scheduler computes one readiness batch per cycle;
                // that is exact only because a uop issued at cycle `c`
                // can never complete before `c + 1`.
                debug_assert!(latency > 0, "zero-latency uop breaks readiness batching");
                let pool_start = dep_pool.len();
                let deps = &mut *dep_pool;
                let mut mem = None;
                match uop.kind {
                    UopKind::Load => {
                        deps.extend_from_slice(addr_deps);
                        if let Some(access) = fx.load {
                            mem = Some((access.vaddr, access.paddr, access.width));
                            // Store-to-load forwarding dependency.
                            for chunk in chunks(access.vaddr, access.width) {
                                if let Some(s) = stores.get(chunk) {
                                    deps.push(s);
                                }
                            }
                        }
                    }
                    UopKind::Compute => {
                        deps.extend_from_slice(reg_deps);
                        if load_uop != NO_UOP {
                            deps.push(load_uop);
                        }
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        }
                    }
                    UopKind::StoreAddr => {
                        deps.extend_from_slice(addr_deps);
                    }
                    UopKind::StoreData => {
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        } else if load_uop != NO_UOP {
                            deps.push(load_uop);
                        } else {
                            deps.extend_from_slice(reg_deps);
                        }
                        if let Some(access) = fx.store {
                            mem = Some((access.vaddr, access.paddr, access.width));
                        }
                    }
                }
                // Sort + dedup this uop's slice of the pool in place.
                let tail = &mut deps[pool_start..];
                tail.sort_unstable();
                let mut kept = usize::from(!tail.is_empty());
                for i in 1..tail.len() {
                    if tail[i] != tail[kept - 1] {
                        tail[kept] = tail[i];
                        kept += 1;
                    }
                }
                deps.truncate(pool_start + kept);
                let id = u32::try_from(ports.len()).expect("uop count exceeds u32 range");
                ports.push(uop.ports.mask());
                latencies.push(latency);
                blockings.push(blocking);
                is_store.push(uop.kind == UopKind::StoreData);
                dep_start
                    .push(u32::try_from(pool_start).expect("dependency pool exceeds u32 range"));
                dep_len.push(u16::try_from(kept).expect("per-uop dependency list exceeds u16"));
                let (vaddr, paddr, width) = mem.unwrap_or((0, 0, 0));
                mem_addr.push([vaddr, paddr]);
                meta.push(UopMeta {
                    latency,
                    blocking,
                    owner: inst_idx,
                    use_start: 0, // filled after the transpose below
                    ports: uop.ports.mask(),
                    mem_width: width,
                    is_store: u8::from(uop.kind == UopKind::StoreData),
                    _pad: 0,
                });
                ready_init.push(if kept == 0 { 0 } else { READY_NEVER });
                match uop.kind {
                    UopKind::Load => load_uop = id,
                    UopKind::Compute => last_compute = id,
                    _ => {}
                }
            }

            // Record producers for later consumers.
            let result_uop = if last_compute != NO_UOP {
                last_compute
            } else {
                load_uop
            };
            if result_uop != NO_UOP {
                for &slot in info.writes.iter() {
                    producers[slot as usize] = result_uop;
                }
            }
            if let Some(access) = fx.store {
                let std_uop = (ports.len() - 1) as u32;
                for chunk in chunks(access.vaddr, access.width) {
                    stores.insert(chunk, std_uop);
                }
            }
            inst_first.push(first);
            inst_last.push(u32::try_from(ports.len()).expect("uop count exceeds u32 range"));
            inst_slots.push(frontend_slots);
            inst_elim.push(false);
        }

        // ---- Transpose the dependency edges into wake-up lists ----
        // Counting sort over `dep_pool` (which is exactly the
        // concatenation of every uop's deduped producer list).
        let n_uops = ports.len();
        assert!(
            n_uops < (1 << PEND_SHIFT),
            "prepared trace of {n_uops} uops exceeds the pending-calendar id space"
        );
        use_start.clear();
        use_start.resize(n_uops + 1, 0);
        for &d in dep_pool.iter() {
            use_start[d as usize + 1] += 1;
        }
        for i in 1..=n_uops {
            use_start[i] += use_start[i - 1];
        }
        use_pool.clear();
        use_pool.resize(dep_pool.len(), 0);
        use_cursor.clear();
        use_cursor.extend_from_slice(use_start);
        for q in 0..n_uops {
            let s = dep_start[q] as usize;
            for &d in &dep_pool[s..s + usize::from(dep_len[q])] {
                let c = &mut use_cursor[d as usize];
                use_pool[*c as usize] = q as u32;
                *c += 1;
            }
        }
        // Copy the consumer-list starts into the packed descriptors and
        // close them with the sentinel record.
        for (m, &s) in meta.iter_mut().zip(use_start.iter()) {
            m.use_start = s;
        }
        meta.push(UopMeta {
            use_start: use_start[n_uops],
            ..UopMeta::default()
        });
        ready0_mask.resize(n_uops.div_ceil(64), 0);
        for (id, &len) in dep_len.iter().enumerate() {
            ready0_mask[id >> 6] |= u64::from(len == 0) << (id & 63);
        }
        wake0.extend(dep_len.iter().map(|&d| WakeState {
            dep_ready: 0,
            unresolved: u32::from(d),
            _pad: 0,
        }));
        inst_state0.extend(
            inst_first
                .iter()
                .zip(inst_last.iter())
                .map(|(&f, &l)| InstState {
                    done_at: 0,
                    unissued: l - f,
                    _pad: 0,
                }),
        );
        for (((&first, &last), &slots), &elim) in inst_first
            .iter()
            .zip(inst_last.iter())
            .zip(inst_slots.iter())
            .zip(inst_elim.iter())
        {
            inst_meta.push(InstMeta {
                first,
                last,
                slots: u16::try_from(slots).expect("fused slot count exceeds u16"),
                elim: u16::from(elim),
            });
        }
    }

    /// Convenience wrapper: prepares `trace` into a fresh [`PreparedTrace`].
    pub fn prepare(&self, trace: &[DynInst], layout: &CodeLayout) -> PreparedTrace {
        let mut prep = PreparedTrace::default();
        self.prepare_into(&mut prep, trace, layout);
        prep
    }

    /// Replays a full prepared trace with one-shot scratch state. See
    /// [`TimingModel::simulate_with`].
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if the schedule exhausts its cycle
    /// budget.
    pub fn simulate(
        &self,
        prep: &PreparedTrace,
        l1i: &mut Cache,
        l1d: &mut Cache,
    ) -> Result<TimingResult, NonConvergence> {
        let mut scratch = SimScratch::default();
        self.simulate_with(prep, prep.len(), l1i, l1d, &mut scratch)
    }

    /// Runs the first `n_insts` prepared dynamic instructions through the
    /// pipeline with the process-wide SIMD dispatch tier
    /// ([`SimdTier::active`]). `l1i`/`l1d` carry cache state across runs
    /// (the harness performs a warm-up run first, exactly like the
    /// paper's double execution); `scratch` is caller-owned so repeated
    /// runs allocate nothing.
    ///
    /// Prefix replay is exact: simulating `n` instructions of a longer
    /// preparation is bit-identical to preparing and simulating the
    /// `n`-instruction trace itself (the prepared stream is prefix-closed).
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if the schedule exhausts its cycle
    /// budget — identically in debug and release builds.
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` exceeds the prepared length.
    pub fn simulate_with(
        &self,
        prep: &PreparedTrace,
        n_insts: usize,
        l1i: &mut Cache,
        l1d: &mut Cache,
        scratch: &mut SimScratch,
    ) -> Result<TimingResult, NonConvergence> {
        self.simulate_with_tier(prep, n_insts, l1i, l1d, scratch, SimdTier::active())
    }

    /// [`TimingModel::simulate_with`] pinned to an explicit SIMD dispatch
    /// tier. Every tier is bit-identical; this entry point exists so the
    /// differential suite can verify that claim on whatever tiers the
    /// host supports.
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if the schedule exhausts its cycle
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` exceeds the prepared length.
    pub fn simulate_with_tier(
        &self,
        prep: &PreparedTrace,
        n_insts: usize,
        l1i: &mut Cache,
        l1d: &mut Cache,
        scratch: &mut SimScratch,
        tier: SimdTier,
    ) -> Result<TimingResult, NonConvergence> {
        assert!(
            n_insts <= prep.len(),
            "prefix of {n_insts} insts exceeds prepared trace of {}",
            prep.len()
        );
        let mut result = TimingResult::default();
        if n_insts == 0 {
            return Ok(result);
        }
        let uop_limit = prep.inst_last[n_insts - 1] as usize;
        let SimScratch {
            completion,
            fetch_cycle,
            rename_cycle,
            wake,
            inst_state,
            ready_bits,
            pend,
            drain_bits,
        } = scratch;
        // Hoisted column views: one slice bound per array instead of a
        // Vec deref on every random access in the cycle loop.
        let meta = &prep.meta[..];
        let mem_addr = &prep.mem_addr[..];
        let use_pool = &prep.use_pool[..];
        let imeta = &prep.inst_meta[..];

        // ---- Frontend replay: fetch cycles through the L1I ----
        fetch_cycle.clear();
        {
            let mut stall = 0u64;
            let mut p = 0usize;
            for (i, &base) in prep.fetch_base[..n_insts].iter().enumerate() {
                while p < prep.probes.len() && prep.probes[p].0 as usize == i {
                    let addr = prep.probes[p].1;
                    // Instruction fetch is VIPT too; code is identity
                    // mapped for tagging purposes.
                    if !l1i.access(addr, addr) {
                        stall += u64::from(self.uarch.l1i_miss_penalty);
                        result.l1i_misses += 1;
                    }
                    p += 1;
                }
                fetch_cycle.push(base + stall);
            }
        }

        // ---- Scoreboard state ----
        // Per-uop arrays span the *whole* preparation (not just the
        // prefix): wake-up edges out of the prefix may touch suffix
        // consumers, and unconditional writes there are cheaper than a
        // bounds branch per edge.
        let total_insts = n_insts;
        completion.clear();
        completion.resize(uop_limit, u64::MAX);
        ready_bits.clear();
        ready_bits.extend_from_slice(&prep.ready0_mask);
        pend.clear();
        // Exact minimum over the pending calendar's keys (`u64::MAX` =
        // empty): folded on insert, rebuilt on drain. Its cycle half
        // (`min_pend >> PEND_SHIFT`) feeds the issue side of the stall
        // fast-forward's event bound.
        let mut min_pend = u64::MAX;
        wake.clear();
        wake.extend_from_slice(&prep.wake0);
        inst_state.clear();
        inst_state.extend_from_slice(&prep.inst_state0[..total_insts]);
        rename_cycle.clear();
        rename_cycle.resize(total_insts, 0);
        let mut port_free = [0u64; 8];
        // Ports whose `port_free` lies in the future. Only uops with a
        // non-zero blocking interval (divisions and the like) ever set a
        // bit, so pruning this mask each cycle touches nothing in the
        // common all-free case — unlike rebuilding availability from all
        // eight `port_free` entries.
        let mut busy_mask: u8 = 0;
        // Pick keys `(free_cycle << 3) | port` kept in sync with
        // `port_free`: the scheduler minimizes the masked key, which
        // orders by earliest free cycle, lowest port index on ties.
        let mut port_key = [0u64; 8];
        for (p, k) in port_key.iter_mut().enumerate() {
            *k = p as u64;
        }
        // L1-miss handling serializes on the L2 interface (a coarse MSHR /
        // fill-bandwidth model): misses cannot complete back to back.
        let mut l2_free = 0u64;
        let l2_interval = u64::from(self.uarch.l1d_miss_penalty);
        let mut next_rename = 0usize; // inst index
        let mut next_retire = 0usize;
        let mut rob_used = 0u32;
        let mut rs_used = 0u32;
        let mut cycle = 0u64;
        // Safety valve against pathological schedules.
        let max_cycles = 1_000_000u64 + (uop_limit as u64) * 64;
        let issue_quota = self.uarch.issue_width * 2;

        while next_retire < total_insts {
            // Retire (fused-domain bandwidth). An instruction is done when
            // every uop has issued and the latest completion has passed —
            // the same predicate as the reference's per-uop completion
            // scan, folded into two scalars at issue time.
            let mut retired = 0;
            while next_retire < total_insts && retired < self.uarch.retire_width {
                // SAFETY: `next_retire < total_insts`, and `imeta`,
                // `inst_state`, and `rename_cycle` all span at least
                // `total_insts` entries (sized in the init above).
                let im = unsafe { *imeta.get_unchecked(next_retire) };
                let done = if im.elim != 0 {
                    (unsafe { *rename_cycle.get_unchecked(next_retire) }) <= cycle
                        && next_retire < next_rename
                } else {
                    let st = unsafe { *inst_state.get_unchecked(next_retire) };
                    next_retire < next_rename && st.unissued == 0 && st.done_at <= cycle
                };
                if !done {
                    break;
                }
                rob_used = rob_used.saturating_sub(u32::from(im.slots).max(1));
                next_retire += 1;
                retired += 1;
            }

            // Mature pending wake-ups into the ready set. Calendar
            // entries always carry strictly-future cycles (a uop issued
            // at `c` completes no earlier than `c + 1`), so a drain can
            // only happen on a later cycle than the insert, and `<=` here
            // agrees bit for bit with the per-scan compare it replaces.
            // The SIMD readiness kernel tests the whole calendar at once
            // when it is deep enough to amortize the dispatch.
            let pend_thresh = (cycle + 1) << PEND_SHIFT;
            if min_pend < pend_thresh {
                min_pend = u64::MAX;
                let n = pend.len();
                let mut kept = 0usize;
                if n >= simd::READY_BATCH_MIN {
                    drain_bits.clear();
                    drain_bits.resize(n.div_ceil(64), 0);
                    simd::ready_mask(tier, pend, pend_thresh - 1, drain_bits);
                    // SAFETY: `kept <= i < n = pend.len()`; uids were
                    // masked to PEND_SHIFT bits at insert and are
                    // `< uop_limit`, and `ready_bits` spans every
                    // prepared uop id.
                    for i in 0..n {
                        let key = unsafe { *pend.get_unchecked(i) };
                        let matured = drain_bits[i >> 6] >> (i & 63) & 1 != 0;
                        let uid = (key & ((1 << PEND_SHIFT) - 1)) as usize;
                        unsafe {
                            *ready_bits.get_unchecked_mut(uid >> 6) |=
                                u64::from(matured) << (uid & 63);
                            *pend.get_unchecked_mut(kept) = key;
                        }
                        min_pend = min_pend.min(if matured { u64::MAX } else { key });
                        kept += usize::from(!matured);
                    }
                } else {
                    // Branchless compact: matured keys set their ready
                    // bit (an `|= 0` no-op otherwise) and are dropped by
                    // not advancing the write cursor. SAFETY: as above.
                    for i in 0..n {
                        let key = unsafe { *pend.get_unchecked(i) };
                        let matured = key < pend_thresh;
                        let uid = (key & ((1 << PEND_SHIFT) - 1)) as usize;
                        unsafe {
                            *ready_bits.get_unchecked_mut(uid >> 6) |=
                                u64::from(matured) << (uid & 63);
                            *pend.get_unchecked_mut(kept) = key;
                        }
                        min_pend = min_pend.min(if matured { u64::MAX } else { key });
                        kept += usize::from(!matured);
                    }
                }
                pend.truncate(kept);
            }

            // Issue from the ready set: oldest first (lowest uop id —
            // exactly the reservation-station age order, since uops are
            // renamed in id order). The rename frontier masks uops whose
            // instruction has not renamed yet: a producer may resolve a
            // consumer that is still waiting on the frontend, and its
            // ready bit simply becomes visible once rename passes it.
            // Each uop is examined O(1) times overall — once per drain
            // plus once per issue attempt — instead of once per cycle
            // spent waiting in the station.
            let mut issued_this_cycle = 0u32;
            // Does any visible ready bit survive the issue scan? Exact
            // when the scan runs to completion, conservatively `true`
            // when it breaks early (quota or ports exhausted) — the flag
            // only feeds the stall fast-forward, where an overestimate
            // of readiness merely disables a skip. `rs_used == 0` proves
            // the visible ready set empty: every visible set bit is a
            // renamed, unissued uop, and those are exactly what
            // `rs_used` counts.
            let mut ready_leftover = false;
            'issue: {
                if rs_used == 0 {
                    break 'issue;
                }
                let mut bm = busy_mask;
                while bm != 0 {
                    let p = bm.trailing_zeros() as usize;
                    bm &= bm - 1;
                    if port_free[p] <= cycle {
                        busy_mask &= !(1 << p);
                    }
                }
                let mut avail: u8 = !busy_mask;
                if avail == 0 {
                    ready_leftover = true;
                    break 'issue;
                }
                let frontier = if next_rename < total_insts {
                    imeta[next_rename].first as usize
                } else {
                    uop_limit
                };
                let mut w = 0usize;
                while w * 64 < frontier {
                    // SAFETY: `w * 64 < frontier <= uop_limit`, and
                    // `ready_bits` holds one bit per prepared uop.
                    let mut bits = unsafe { *ready_bits.get_unchecked(w) };
                    let rel = frontier - w * 64;
                    if rel < 64 {
                        bits &= (1u64 << rel) - 1;
                    }
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        let slot_bit = 1u64 << b;
                        bits &= !slot_bit;
                        let uid = (w << 6) | b;
                        // SAFETY: `uid < frontier <= uop_limit`;
                        // `prepare_into` sizes `meta` at uop count + 1
                        // (trailing sentinel) and every per-uop column at
                        // the uop count, `completion` was resized to
                        // `uop_limit` above, consumer-list bounds are
                        // monotone prefix sums closing at
                        // `use_pool.len()`, consumer ids index `wake`
                        // (one entry per prepared uop), and `m.owner`
                        // names the uop's owning instruction, which lies
                        // inside the replayed prefix for `uid <
                        // uop_limit`. The differential suite pins this
                        // block bit-for-bit against the bounds-checked
                        // reference pipeline.
                        debug_assert!(uid + 1 < meta.len() && uid < completion.len());
                        let m = unsafe { *meta.get_unchecked(uid) };
                        let cand = m.ports & avail;
                        if cand == 0 {
                            ready_leftover = true;
                            continue;
                        }
                        // Pick the candidate port with the earliest free
                        // cycle, lowest index on ties: minimize the
                        // precomputed `(free << 3) | port` key over the
                        // candidate bits (uops name 1-4 ports, so this
                        // beats a fixed 8-wide sweep).
                        let mut best_key = u64::MAX;
                        let mut c = cand;
                        while c != 0 {
                            let p = c.trailing_zeros() as usize;
                            c &= c - 1;
                            best_key = best_key.min(port_key[p]);
                        }
                        let port = (best_key & 7) as usize;
                        // Memory access latency adjustments.
                        let mut latency = m.latency;
                        let mut miss_delay = 0u64;
                        if m.mem_width != 0 {
                            let [vaddr, paddr] = unsafe { *mem_addr.get_unchecked(uid) };
                            let write = m.is_store != 0;
                            let hit = l1d.access(vaddr, paddr);
                            if !hit {
                                latency += self.uarch.l1d_miss_penalty;
                                let fill_start = l2_free.max(cycle);
                                miss_delay = fill_start - cycle;
                                l2_free = fill_start + l2_interval;
                                if write {
                                    result.l1d_write_misses += 1;
                                } else {
                                    result.l1d_read_misses += 1;
                                }
                            }
                            if l1d.splits_line(vaddr, m.mem_width) {
                                latency += self.uarch.split_access_penalty;
                                result.misaligned += 1;
                                // The second line is accessed as well.
                                let second = (vaddr / l1d.line_bytes() + 1) * l1d.line_bytes();
                                let poff = second - vaddr;
                                if !l1d.access(second, paddr + poff) {
                                    latency += self.uarch.l1d_miss_penalty;
                                    if write {
                                        result.l1d_write_misses += 1;
                                    } else {
                                        result.l1d_read_misses += 1;
                                    }
                                }
                            }
                        }
                        let done = cycle + miss_delay + u64::from(latency);
                        unsafe {
                            *completion.get_unchecked_mut(uid) = done;
                        }
                        // Wake consumers: resolve this producer in each
                        // consumer's countdown; the last resolution
                        // schedules the consumer on the pending calendar
                        // (its operand-ready cycle is strictly in the
                        // future). Consumers past the replayed prefix
                        // keep their countdown but never enter the
                        // calendar — they can never rename.
                        let use_lo = m.use_start as usize;
                        let use_hi = unsafe { meta.get_unchecked(uid + 1) }.use_start as usize;
                        debug_assert!(use_lo <= use_hi && use_hi <= use_pool.len());
                        for &q in unsafe { use_pool.get_unchecked(use_lo..use_hi) } {
                            debug_assert!((q as usize) < wake.len());
                            let wk = unsafe { wake.get_unchecked_mut(q as usize) };
                            wk.unresolved -= 1;
                            wk.dep_ready = wk.dep_ready.max(done);
                            if wk.unresolved == 0 && (q as usize) < uop_limit {
                                let key = (wk.dep_ready << PEND_SHIFT) | u64::from(q);
                                pend.push(key);
                                min_pend = min_pend.min(key);
                            }
                        }
                        debug_assert!((m.owner as usize) < inst_state.len());
                        let st = unsafe { inst_state.get_unchecked_mut(m.owner as usize) };
                        st.unissued -= 1;
                        st.done_at = st.done_at.max(done);
                        let free = cycle + u64::from(m.blocking);
                        port_free[port] = free;
                        port_key[port] = free << 3 | port as u64;
                        let block_bit = u8::from(m.blocking != 0) << port;
                        busy_mask |= block_bit;
                        avail &= !block_bit;
                        unsafe {
                            *ready_bits.get_unchecked_mut(w) &= !slot_bit;
                        }
                        rs_used = rs_used.saturating_sub(1);
                        result.uops += 1;
                        issued_this_cycle += 1;
                        if issued_this_cycle >= issue_quota || avail == 0 {
                            ready_leftover = true;
                            break 'issue;
                        }
                    }
                    w += 1;
                }
            }

            // Rename/allocate (in order, fused-domain width).
            let rename_mark = next_rename;
            let mut slots_left = self.uarch.issue_width;
            let mut rename_quota_stop = false;
            while next_rename < total_insts && slots_left > 0 {
                // SAFETY: `next_rename < total_insts`; `fetch_cycle` and
                // `rename_cycle` were filled to `total_insts` entries in
                // the init above and `imeta` spans the whole preparation.
                if (unsafe { *fetch_cycle.get_unchecked(next_rename) }) > cycle {
                    break;
                }
                let im = unsafe { *imeta.get_unchecked(next_rename) };
                let slots = u32::from(im.slots);
                let uop_count = im.last - im.first;
                if rob_used + slots.max(1) > self.uarch.rob_size
                    || rs_used + uop_count > self.uarch.rs_size
                {
                    break;
                }
                if slots > slots_left {
                    rename_quota_stop = true;
                    break;
                }
                unsafe {
                    *rename_cycle.get_unchecked_mut(next_rename) = cycle;
                }
                rob_used += slots.max(1);
                if im.elim == 0 {
                    rs_used += uop_count;
                }
                slots_left -= slots.min(slots_left);
                next_rename += 1;
            }

            cycle += 1;

            // Stall fast-forward: wake-ups publish `ready_at` at *issue*
            // time (the value is the future completion cycle), so the
            // scan bound `rs_min_ready` already names the earliest cycle
            // at which any RS slot can issue. Together with the retire
            // head's pending completion and the next fetch arrival that
            // pins down the earliest cycle where *any* stage can act:
            //
            //  * retire — in-order, so only the head matters: a pending
            //    completion at `done_at`, or "covered below" when its
            //    uops have not issued (they sit in the RS) or it is not
            //    renamed yet (the rename event). A width-limited retire
            //    or a just-renamed eliminated head can continue next
            //    cycle, which forbids skipping.
            //  * issue — nothing issues before `rs_min_ready`; the bound
            //    is conservative (a stale-low or invalidated bound only
            //    disables the skip, never overshoots). A ready slot that
            //    is merely port-blocked leaves the bound at or below the
            //    current cycle, so port events never need tracking here.
            //  * rename — the head's fetch arrival; width-limited stops
            //    resume next cycle; resource stops (ROB/RS full) resolve
            //    only through a retire or issue, which the other two
            //    events already bound.
            //
            // Every cycle strictly before the earliest event is provably
            // a no-op (no retire, no issue, no rename, and no state any
            // of them reads changes), so jumping straight there is
            // bit-identical to simulating the idle cycles one by one.
            // No event at all means nothing can ever happen again:
            // deadlock, surfaced through the budget check below exactly
            // as the reference discovers it cycle by cycle.
            // Computing the event bound costs a handful of branches, so
            // busy cycles (something issued and more work is queued) skip
            // it: they almost never fast-forward anyway, and the next
            // stall cycle recomputes the bound from scratch.
            let mut fast_forwarded = false;
            if next_retire < total_insts && (issued_this_cycle == 0 || rs_used == 0) {
                let prev = cycle - 1;
                let mut nxt = u64::MAX;
                if retired >= self.uarch.retire_width {
                    nxt = cycle;
                } else if next_retire < next_rename {
                    if imeta[next_retire].elim != 0 {
                        nxt = cycle;
                    } else {
                        let st = inst_state[next_retire];
                        if st.unissued == 0 {
                            nxt = st.done_at.max(cycle);
                        }
                    }
                }
                // Issue side: a surviving visible ready bit means a slot
                // may issue (or is only port-blocked) next cycle — no
                // skip. The scan's flag covers everything visible when it
                // ran; bits whose instructions renamed *afterwards* (this
                // very cycle) were not scanned, so probe that freshly
                // visible uop window directly. Beyond both, the
                // calendar's exact minimum is the earliest cycle any
                // wake-up can land, and hidden-ready uops further out
                // are bounded by the rename event below.
                if ready_leftover {
                    nxt = cycle;
                } else if next_rename > rename_mark {
                    let a = imeta[rename_mark].first as usize;
                    let b = if next_rename < total_insts {
                        imeta[next_rename].first as usize
                    } else {
                        uop_limit
                    };
                    let mut w = a >> 6;
                    while w * 64 < b {
                        let mut bits = ready_bits[w];
                        if w == a >> 6 {
                            bits &= !0u64 << (a & 63);
                        }
                        let rel = b - w * 64;
                        if rel < 64 {
                            bits &= (1u64 << rel) - 1;
                        }
                        if bits != 0 {
                            nxt = cycle;
                            break;
                        }
                        w += 1;
                    }
                }
                nxt = nxt.min((min_pend >> PEND_SHIFT).max(cycle));
                if next_rename < total_insts {
                    if fetch_cycle[next_rename] > prev {
                        nxt = nxt.min(fetch_cycle[next_rename]);
                    } else if rename_quota_stop || slots_left == 0 {
                        nxt = cycle;
                    }
                }
                if nxt == u64::MAX {
                    cycle = max_cycles + 1; // deadlock: nothing can ever happen
                    fast_forwarded = true;
                } else if nxt > cycle {
                    cycle = nxt;
                    fast_forwarded = true;
                }
            }

            // Dead-cycle skip: when a whole cycle passed with no retire,
            // no issue, and no rename, every following cycle is identical
            // until some scheduled event arrives — the next in-flight
            // completion (which drives retirement and wake-ups alike), a
            // port freeing up, or the frontend delivering the next
            // instruction. Jumping straight there is exactly equivalent
            // to simulating the no-op cycles one by one; if no event is
            // pending at all, the schedule is deadlocked and the budget
            // check below turns that into an error immediately.
            if !fast_forwarded
                && retired == 0
                && issued_this_cycle == 0
                && next_rename == rename_mark
            {
                let prev = cycle - 1;
                // In-flight completions all live in the renamed-but-not-
                // retired instruction window (anything older has
                // completed at or before its retire cycle ≤ prev;
                // anything younger has not issued and sits at u64::MAX,
                // which `min_future` ignores).
                let lo = imeta[next_retire].first as usize;
                let hi = if next_rename < total_insts {
                    imeta[next_rename].first as usize
                } else {
                    uop_limit
                };
                let mut next_event = simd::min_future(tier, &completion[lo..hi], prev);
                for &free in port_free.iter() {
                    if free > prev {
                        next_event = next_event.min(free);
                    }
                }
                if next_rename < total_insts && fetch_cycle[next_rename] > prev {
                    next_event = next_event.min(fetch_cycle[next_rename]);
                }
                if next_event == u64::MAX {
                    cycle = max_cycles + 1; // deadlock: nothing can ever happen
                } else if next_event > cycle {
                    cycle = next_event;
                }
            }

            if cycle > max_cycles {
                return Err(NonConvergence {
                    cycle_budget: max_cycles,
                    retired: next_retire,
                    total_insts,
                });
            }
        }
        result.insts = total_insts as u64;
        result.cycles = cycle;
        Ok(result)
    }

    /// Runs the trace through the pipeline by preparing and simulating it
    /// in one call. `l1i`/`l1d` carry cache state across runs. Hot paths
    /// should hold a [`PreparedTrace`]/[`SimScratch`] and call the split
    /// phases instead.
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if the schedule exhausts its cycle
    /// budget.
    pub fn run(
        &self,
        trace: &[DynInst],
        layout: &CodeLayout,
        l1i: &mut Cache,
        l1d: &mut Cache,
    ) -> Result<TimingResult, NonConvergence> {
        let mut prep = PreparedTrace::default();
        self.prepare_into(&mut prep, trace, layout);
        self.simulate(&prep, l1i, l1d)
    }

    /// The original single-pass implementation, kept verbatim as the
    /// straight-line reference: differential tests pin
    /// `prepare` + `simulate` (including prefix replay and every SIMD
    /// dispatch tier) to this path bit for bit. Not used on hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`NonConvergence`] if the schedule exhausts its cycle
    /// budget; the batched path fails with a bit-identical error.
    pub fn run_reference(
        &self,
        trace: &[DynInst],
        layout: &CodeLayout,
        l1i: &mut Cache,
        l1d: &mut Cache,
    ) -> Result<TimingResult, NonConvergence> {
        let mut result = TimingResult::default();
        if trace.is_empty() {
            return Ok(result);
        }

        // ---- Pre-pass: frontend fetch cycles through the L1I ----
        let mut fetch_cycle = vec![0u64; trace.len()];
        {
            let mut clock_bytes = 0u64; // 16 fetch bytes per cycle
            let mut stall = 0u64;
            let line = l1i.line_bytes();
            let mut last_line = u64::MAX;
            for (i, dyn_inst) in trace.iter().enumerate() {
                let (addr, len) = layout.addr(dyn_inst.copy, dyn_inst.static_idx);
                let mut probe = addr / line;
                let end_line = (addr + u64::from(len) - 1) / line;
                while probe <= end_line {
                    if probe != last_line {
                        // Instruction fetch is VIPT too; code is identity
                        // mapped for tagging purposes.
                        if !l1i.access(probe * line, probe * line) {
                            stall += u64::from(self.uarch.l1i_miss_penalty);
                            result.l1i_misses += 1;
                        }
                        last_line = probe;
                    }
                    probe += 1;
                }
                clock_bytes += u64::from(len);
                fetch_cycle[i] = clock_bytes / 16 + stall;
            }
        }

        // ---- Pre-pass: build dynamic uops with dependencies ----
        let mut uops: Vec<DynUop> = Vec::with_capacity(trace.len() * 2);
        let mut dep_pool: Vec<u32> = Vec::with_capacity(trace.len() * 2);
        // inst_id -> (first_uop, last_uop+1, frontend_slots, eliminated)
        let mut inst_meta: Vec<(u32, u32, u32, bool)> = Vec::with_capacity(trace.len());
        let mut producers: HashMap<DepKey, u32> = HashMap::new();
        let mut store_chunks: HashMap<u64, u32> = HashMap::new();
        // Scratch, reused across trace instructions.
        let mut addr_regs: Vec<Gpr> = Vec::new();
        let mut reg_deps: Vec<u32> = Vec::new();
        let mut addr_deps: Vec<u32> = Vec::new();

        for dyn_inst in trace.iter() {
            let inst = &self.insts[dyn_inst.static_idx];
            let recipe = &self.recipes[dyn_inst.static_idx];
            let fx = &dyn_inst.effects;
            let first = u32::try_from(uops.len()).expect("uop count exceeds u32 range");
            let mut frontend_slots = recipe.frontend_slots;
            if self.fused_into_prev[dyn_inst.static_idx] {
                frontend_slots = 0;
            }

            if recipe.eliminated {
                // Zero idiom: break dependencies on the destination.
                // Eliminated move: alias destination to source producer.
                if inst.is_zero_idiom() {
                    for reg in inst.gpr_writes() {
                        producers.remove(&DepKey::Gpr(reg.number()));
                    }
                    for vec in inst.vec_writes() {
                        producers.remove(&DepKey::Vec(vec.number()));
                    }
                    // Scalar idioms (`xor r, r`) also set flags at rename:
                    // consumers must not wait on the previous flag writer.
                    if !inst.mnemonic().is_sse() {
                        producers.remove(&DepKey::Flags);
                    }
                } else if let (Some(dst), Some(src)) = (
                    inst.gpr_writes().first().copied(),
                    inst.gpr_reads().first().copied(),
                ) {
                    if let Some(&p) = producers.get(&DepKey::Gpr(src.number())) {
                        producers.insert(DepKey::Gpr(dst.number()), p);
                    } else {
                        producers.remove(&DepKey::Gpr(dst.number()));
                    }
                } else if let (Some(dst), Some(src)) = (
                    inst.vec_writes().first().copied(),
                    inst.vec_reads().first().copied(),
                ) {
                    if let Some(&p) = producers.get(&DepKey::Vec(src.number())) {
                        producers.insert(DepKey::Vec(dst.number()), p);
                    } else {
                        producers.remove(&DepKey::Vec(dst.number()));
                    }
                }
                inst_meta.push((first, first, frontend_slots, true));
                continue;
            }

            // Register/flag dependencies of the whole instruction.
            addr_regs.clear();
            if let Some(m) = inst.mem_operand() {
                addr_regs.extend(m.address_regs());
            }
            reg_deps.clear();
            for reg in inst.gpr_reads() {
                if let Some(&p) = producers.get(&DepKey::Gpr(reg.number())) {
                    reg_deps.push(p);
                }
            }
            for vec in inst.vec_reads() {
                if let Some(&p) = producers.get(&DepKey::Vec(vec.number())) {
                    reg_deps.push(p);
                }
            }
            if crate::exec::flags_read(inst) {
                if let Some(&p) = producers.get(&DepKey::Flags) {
                    reg_deps.push(p);
                }
            }
            addr_deps.clear();
            for reg in &addr_regs {
                if let Some(&p) = producers.get(&DepKey::Gpr(reg.number())) {
                    addr_deps.push(p);
                }
            }

            let mut load_uop: u32 = NO_UOP;
            let mut last_compute: u32 = NO_UOP;
            for uop in &recipe.uops {
                let (latency, blocking) = self.resolve_latency(uop, fx);
                let dep_start = dep_pool.len();
                let deps = &mut dep_pool;
                let mut mem = None;
                match uop.kind {
                    UopKind::Load => {
                        deps.extend_from_slice(&addr_deps);
                        if let Some(access) = fx.load {
                            mem = Some((access.vaddr, access.paddr, access.width));
                            // Store-to-load forwarding dependency.
                            for chunk in chunks(access.vaddr, access.width) {
                                if let Some(&s) = store_chunks.get(&chunk) {
                                    deps.push(s);
                                }
                            }
                        }
                    }
                    UopKind::Compute => {
                        deps.extend_from_slice(&reg_deps);
                        if load_uop != NO_UOP {
                            deps.push(load_uop);
                        }
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        }
                    }
                    UopKind::StoreAddr => {
                        deps.extend_from_slice(&addr_deps);
                    }
                    UopKind::StoreData => {
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        } else if load_uop != NO_UOP {
                            deps.push(load_uop);
                        } else {
                            deps.extend_from_slice(&reg_deps);
                        }
                        if let Some(access) = fx.store {
                            mem = Some((access.vaddr, access.paddr, access.width));
                        }
                    }
                }
                // Sort + dedup this uop's slice of the pool in place.
                let tail = &mut deps[dep_start..];
                tail.sort_unstable();
                let mut kept = usize::from(!tail.is_empty());
                for i in 1..tail.len() {
                    if tail[i] != tail[kept - 1] {
                        tail[kept] = tail[i];
                        kept += 1;
                    }
                }
                deps.truncate(dep_start + kept);
                let id = uops.len() as u32;
                uops.push(DynUop {
                    ports: uop.ports.mask(),
                    latency,
                    blocking,
                    kind: uop.kind,
                    dep_start: u32::try_from(dep_start).expect("dependency pool exceeds u32 range"),
                    dep_len: u16::try_from(kept).expect("per-uop dependency list exceeds u16"),
                    mem,
                });
                match uop.kind {
                    UopKind::Load => load_uop = id,
                    UopKind::Compute => last_compute = id,
                    _ => {}
                }
            }

            // Record producers for later consumers.
            let result_uop = if last_compute != NO_UOP {
                last_compute
            } else {
                load_uop
            };
            if result_uop != NO_UOP {
                for reg in inst.gpr_writes() {
                    producers.insert(DepKey::Gpr(reg.number()), result_uop);
                }
                for vec in inst.vec_writes() {
                    producers.insert(DepKey::Vec(vec.number()), result_uop);
                }
                if crate::exec::flags_written(inst) {
                    producers.insert(DepKey::Flags, result_uop);
                }
            }
            if let Some(access) = fx.store {
                let std_uop = (uops.len() - 1) as u32;
                for chunk in chunks(access.vaddr, access.width) {
                    store_chunks.insert(chunk, std_uop);
                }
            }
            inst_meta.push((first, uops.len() as u32, frontend_slots, false));
        }

        // ---- Cycle loop ----
        let total_insts = inst_meta.len();
        let mut completion = vec![u64::MAX; uops.len()];
        let mut waiting: Vec<u32> = Vec::new(); // uop ids in RS, age order
        let mut port_free = [0u64; 8];
        // L1-miss handling serializes on the L2 interface (a coarse MSHR /
        // fill-bandwidth model): misses cannot complete back to back.
        let mut l2_free = 0u64;
        let l2_interval = u64::from(self.uarch.l1d_miss_penalty);
        let mut next_rename = 0usize; // inst index
        let mut next_retire = 0usize;
        let mut rob_used = 0u32;
        let mut rs_used = 0u32;
        let mut rename_cycle = vec![0u64; total_insts];
        let mut cycle = 0u64;
        // Safety valve against pathological schedules.
        let max_cycles = 1_000_000u64 + (uops.len() as u64) * 64;

        while next_retire < total_insts {
            // Retire (fused-domain bandwidth).
            let mut retired = 0;
            while next_retire < total_insts && retired < self.uarch.retire_width {
                let (first, last, _slots, eliminated) = inst_meta[next_retire];
                let done = if eliminated {
                    rename_cycle[next_retire] <= cycle && next_retire < next_rename
                } else {
                    next_retire < next_rename
                        && (first..last).all(|u| completion[u as usize] <= cycle)
                };
                if !done {
                    break;
                }
                rob_used = rob_used.saturating_sub(inst_meta[next_retire].2.max(1));
                next_retire += 1;
                retired += 1;
                result.insts += 1;
            }

            // Issue from the RS: oldest first, compacting the RS in
            // place. Once the issue quota is spent, the rest of the RS is
            // kept wholesale without re-testing dependencies.
            let mut kept = 0usize;
            let mut examined = 0usize;
            let mut issued_this_cycle = 0u32;
            while examined < waiting.len() {
                if issued_this_cycle >= self.uarch.issue_width * 2 {
                    break;
                }
                let uid = waiting[examined];
                examined += 1;
                let u = &uops[uid as usize];
                let deps = &dep_pool[u.dep_start as usize..][..usize::from(u.dep_len)];
                let ready = deps.iter().all(|&d| completion[d as usize] <= cycle);
                if !ready {
                    waiting[kept] = uid;
                    kept += 1;
                    continue;
                }
                // Pick the available port with the earliest free cycle.
                let mut best: Option<usize> = None;
                for p in 0..8 {
                    if u.ports & (1 << p) != 0 && port_free[p] <= cycle {
                        best = match best {
                            Some(b) if port_free[b] <= port_free[p] => Some(b),
                            _ => Some(p),
                        };
                    }
                }
                let Some(port) = best else {
                    waiting[kept] = uid;
                    kept += 1;
                    continue;
                };
                // Memory access latency adjustments.
                let mut latency = u.latency;
                let mut miss_delay = 0u64;
                if let Some((vaddr, paddr, width)) = u.mem {
                    let write = u.kind == UopKind::StoreData;
                    let hit = l1d.access(vaddr, paddr);
                    if !hit {
                        latency += self.uarch.l1d_miss_penalty;
                        let fill_start = l2_free.max(cycle);
                        miss_delay = fill_start - cycle;
                        l2_free = fill_start + l2_interval;
                        if write {
                            result.l1d_write_misses += 1;
                        } else {
                            result.l1d_read_misses += 1;
                        }
                    }
                    if l1d.splits_line(vaddr, width) {
                        latency += self.uarch.split_access_penalty;
                        result.misaligned += 1;
                        // The second line is accessed as well.
                        let second = (vaddr / l1d.line_bytes() + 1) * l1d.line_bytes();
                        let poff = second - vaddr;
                        if !l1d.access(second, paddr + poff) {
                            latency += self.uarch.l1d_miss_penalty;
                            if write {
                                result.l1d_write_misses += 1;
                            } else {
                                result.l1d_read_misses += 1;
                            }
                        }
                    }
                }
                completion[uid as usize] = cycle + miss_delay + u64::from(latency);
                port_free[port] = cycle + u64::from(u.blocking);
                rs_used = rs_used.saturating_sub(1);
                result.uops += 1;
                issued_this_cycle += 1;
            }
            waiting.copy_within(examined.., kept);
            waiting.truncate(kept + waiting.len() - examined);

            // Rename/allocate (in order, fused-domain width).
            let mut slots_left = self.uarch.issue_width;
            while next_rename < total_insts && slots_left > 0 {
                let (first, last, slots, eliminated) = inst_meta[next_rename];
                if fetch_cycle[next_rename] > cycle {
                    break;
                }
                let uop_count = last - first;
                if rob_used + slots.max(1) > self.uarch.rob_size
                    || rs_used + uop_count > self.uarch.rs_size
                {
                    break;
                }
                if slots > slots_left {
                    break;
                }
                rename_cycle[next_rename] = cycle;
                rob_used += slots.max(1);
                if !eliminated {
                    for uid in first..last {
                        waiting.push(uid);
                    }
                    rs_used += uop_count;
                }
                slots_left -= slots.min(slots_left);
                next_rename += 1;
            }

            cycle += 1;
            if cycle > max_cycles {
                return Err(NonConvergence {
                    cycle_budget: max_cycles,
                    retired: next_retire,
                    total_insts,
                });
            }
        }

        result.cycles = cycle;
        Ok(result)
    }
}

/// 8-byte-granular address chunks covered by an access (for
/// store-to-load forwarding detection).
fn chunks(vaddr: u64, width: u8) -> impl Iterator<Item = u64> {
    let first = vaddr / 8;
    let last = (vaddr + u64::from(width.max(1)) - 1) / 8;
    first..=last
}

/// Value-dependent scalar division latency of the simulated hardware.
pub(crate) fn div_latency(kind: UarchKind, width: u8, quotient_bits: u32, rdx_zero: bool) -> u32 {
    match width {
        8 => {
            if rdx_zero {
                // Fast path: effectively a 64/64 division with a short
                // quotient.
                match kind {
                    UarchKind::Skylake => 20 + quotient_bits / 8,
                    _ => 26 + quotient_bits / 4,
                }
            } else {
                match kind {
                    UarchKind::Skylake => 32 + quotient_bits / 8,
                    _ => 82 + quotient_bits / 4,
                }
            }
        }
        4 => {
            let base = match kind {
                UarchKind::IvyBridge => 21,
                UarchKind::Haswell => 20,
                UarchKind::Skylake => 20,
            };
            base + quotient_bits / 4
        }
        _ => 15 + quotient_bits / 4,
    }
}

/// Touch the unused `CpuState` import used only in doc positions.
#[allow(dead_code)]
fn _state_marker(_: &CpuState) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use bhive_asm::parse_block;
    use bhive_uarch::Uarch;

    /// Builds a synthetic trace with `copies` executions of the block and
    /// default (no-fault, no-load) effects.
    fn trace_for(n_insts: usize, copies: u32) -> Vec<DynInst> {
        let mut out = Vec::new();
        for copy in 0..copies {
            for idx in 0..n_insts {
                out.push(DynInst {
                    static_idx: idx,
                    copy,
                    effects: InstEffects::default(),
                });
            }
        }
        out
    }

    fn time(block_text: &str, copies: u32) -> TimingResult {
        let block = parse_block(block_text).unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let trace = trace_for(block.len(), copies);
        // Warm-up run, then measured run (the paper's double execution).
        model.run(&trace, &layout, &mut l1i, &mut l1d).unwrap();
        model.run(&trace, &layout, &mut l1i, &mut l1d).unwrap()
    }

    #[test]
    fn independent_adds_reach_alu_throughput() {
        // Four independent adds per iteration: limited by the four ALU
        // ports -> ~1 cycle per iteration of 4 adds.
        let tp = |text: &str| {
            let a = time(text, 100).cycles as f64;
            let b = time(text, 200).cycles as f64;
            (b - a) / 100.0
        };
        let four_adds = "add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rsi, 1";
        let t = tp(four_adds);
        assert!(
            (0.9..=1.6).contains(&t),
            "4 independent adds: {t} cycles/iter"
        );
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        // A dependent add chain retires 1 per cycle regardless of width.
        let block = "add rax, 1\nadd rax, 1\nadd rax, 1\nadd rax, 1";
        let a = time(block, 100).cycles as f64;
        let b = time(block, 200).cycles as f64;
        let per_iter = (b - a) / 100.0;
        assert!(
            (3.5..=4.5).contains(&per_iter),
            "chain of 4: {per_iter} cycles/iter"
        );
    }

    #[test]
    fn imul_chain_latency() {
        let block = "imul rax, rbx";
        let a = time(block, 100).cycles as f64;
        let b = time(block, 200).cycles as f64;
        let per_iter = (b - a) / 100.0;
        assert!(
            (2.5..=3.5).contains(&per_iter),
            "imul latency 3: {per_iter}"
        );
    }

    #[test]
    fn zero_idiom_breaks_chains() {
        // xor rax,rax between dependent adds removes the cross-iteration
        // dependency.
        let chained = "add rax, 1\nadd rax, 1\nadd rax, 1\nadd rax, 1";
        let broken = "xor eax, eax\nadd rax, 1\nadd rax, 1\nadd rax, 1";
        let t_chained = time(chained, 200).cycles;
        let t_broken = time(broken, 200).cycles;
        assert!(
            t_broken < t_chained,
            "zero idiom should help: {t_broken} !< {t_chained}"
        );
    }

    #[test]
    fn large_block_overflows_l1i() {
        // ~200 8-byte instructions = 1.6 KiB per copy. At unroll 100 the
        // footprint (160 KiB) blows the 32 KiB L1I.
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("add rax, {}\n", 0x100 + i));
        }
        let small = time(&text, 4);
        assert_eq!(small.l1i_misses, 0, "4 copies fit after warm-up");
        let big = time(&text, 100);
        assert!(big.l1i_misses > 0, "100 copies must miss in the L1I");
    }

    #[test]
    fn cold_caches_miss_then_warm_hit() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let fx = InstEffects {
            load: Some(crate::exec::MemAccess {
                vaddr: 0x9000,
                paddr: 0x3000,
                width: 8,
                write: false,
            }),
            ..InstEffects::default()
        };
        let trace = vec![DynInst {
            static_idx: 0,
            copy: 0,
            effects: fx,
        }];
        let cold = model.run(&trace, &layout, &mut l1i, &mut l1d).unwrap();
        assert_eq!(cold.l1d_read_misses, 1);
        let warm = model.run(&trace, &layout, &mut l1i, &mut l1d).unwrap();
        assert_eq!(warm.l1d_read_misses, 0);
        assert!(warm.cycles < cold.cycles);
    }

    #[test]
    fn misaligned_access_counted_and_slow() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let mk = |vaddr: u64| {
            let fx = InstEffects {
                load: Some(crate::exec::MemAccess {
                    vaddr,
                    paddr: vaddr % 4096,
                    width: 8,
                    write: false,
                }),
                ..InstEffects::default()
            };
            vec![DynInst {
                static_idx: 0,
                copy: 0,
                effects: fx,
            }]
        };
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let aligned = model.run(&mk(0x9000), &layout, &mut l1i, &mut l1d).unwrap();
        assert_eq!(aligned.misaligned, 0);
        let split = model.run(&mk(0x903C), &layout, &mut l1i, &mut l1d).unwrap();
        assert_eq!(split.misaligned, 1);
    }

    #[test]
    fn subnormal_multiplies_latency() {
        let block = parse_block("mulps xmm0, xmm1").unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let fast_fx = InstEffects::default();
        let slow_fx = InstEffects {
            subnormal: true,
            ..InstEffects::default()
        };
        let mk = |fx: InstEffects| {
            (0..50)
                .map(|c| DynInst {
                    static_idx: 0,
                    copy: c,
                    effects: fx,
                })
                .collect::<Vec<_>>()
        };
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let fast = model
            .run(&mk(fast_fx), &layout, &mut l1i, &mut l1d)
            .unwrap();
        let slow = model
            .run(&mk(slow_fx), &layout, &mut l1i, &mut l1d)
            .unwrap();
        assert!(
            slow.cycles > fast.cycles * 5,
            "subnormals must be drastically slower: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn macro_fusion_saves_a_slot() {
        let uarch = Uarch::haswell();
        let fused_block = parse_block("cmp rax, rbx\nje -0x10").unwrap();
        let model = TimingModel::new(fused_block.insts(), uarch);
        assert!(model.fused_into_prev[1]);
    }

    #[test]
    fn div_latency_fast_path() {
        // 64-bit divide with rdx=0 is far faster than with rdx!=0.
        let fast = div_latency(UarchKind::Haswell, 8, 10, true);
        let slow = div_latency(UarchKind::Haswell, 8, 10, false);
        assert!(slow > 2 * fast);
        // 32-bit div with tiny quotient is ~20-22 cycles on Haswell
        // (the paper's case study measures 21.62).
        let d32 = div_latency(UarchKind::Haswell, 4, 4, true);
        assert!((20..=24).contains(&d32));
    }

    #[test]
    fn chunk_table_tracks_latest_store() {
        let mut t = ChunkTable::default();
        t.reset();
        assert_eq!(t.get(3), None);
        t.insert(3, 7);
        t.insert(3, 9);
        assert_eq!(t.get(3), Some(9));
        // Force several growths and verify everything survives rehash.
        for i in 0..500u64 {
            t.insert(i * 0x1_0001, i as u32);
        }
        for i in 0..500u64 {
            assert_eq!(t.get(i * 0x1_0001), Some(i as u32));
        }
        t.reset();
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn from_spans_matches_from_block() {
        let block = parse_block("add rax, 1\nmov rbx, qword ptr [rcx]\nxor edx, edx").unwrap();
        let reference = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let layout = CodeLayout::from_spans(reference.inst_spans.clone(), 0x40_0000);
        assert_eq!(layout.block_len, reference.block_len);
        assert_eq!(layout.inst_spans, reference.inst_spans);
        assert_eq!(layout.base, reference.base);
    }

    #[test]
    fn prepared_path_matches_reference() {
        // Mixed block: zero idiom, eliminated move, flags, load + store
        // with forwarding, macro-fusable pair.
        let text = "xor eax, eax\n\
                    mov rbx, rcx\n\
                    add rax, rbx\n\
                    mov qword ptr [rsi], rax\n\
                    mov rdx, qword ptr [rsi]\n\
                    cmp rdx, rax\n\
                    je -0x10";
        let block = parse_block(text).unwrap();
        for uarch in [Uarch::ivy_bridge(), Uarch::haswell(), Uarch::skylake()] {
            let model = TimingModel::new(block.insts(), uarch);
            let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
            let mut trace = Vec::new();
            for copy in 0..40u32 {
                for (idx, _) in block.insts().iter().enumerate() {
                    let mut fx = InstEffects::default();
                    if idx == 3 {
                        fx.store = Some(crate::exec::MemAccess {
                            vaddr: 0x9000 + u64::from(copy) * 8,
                            paddr: 0x1000 + u64::from(copy) * 8 % 4096,
                            width: 8,
                            write: true,
                        });
                    }
                    if idx == 4 {
                        fx.load = Some(crate::exec::MemAccess {
                            vaddr: 0x9000 + u64::from(copy) * 8,
                            paddr: 0x1000 + u64::from(copy) * 8 % 4096,
                            width: 8,
                            write: false,
                        });
                    }
                    trace.push(DynInst {
                        static_idx: idx,
                        copy,
                        effects: fx,
                    });
                }
            }
            let mut l1i_a = Cache::new(uarch.l1i);
            let mut l1d_a = Cache::new(uarch.l1d);
            let mut l1i_b = Cache::new(uarch.l1i);
            let mut l1d_b = Cache::new(uarch.l1d);
            let prep = model.prepare(&trace, &layout);
            let mut scratch = SimScratch::default();
            // Cold then warm: cache state carried identically on both
            // sides, at every SIMD dispatch tier.
            for _ in 0..2 {
                let reference = model.run_reference(&trace, &layout, &mut l1i_b, &mut l1d_b);
                for &tier in SimdTier::available() {
                    let mut l1i = l1i_a.clone();
                    let mut l1d = l1d_a.clone();
                    let split = model.simulate_with_tier(
                        &prep,
                        trace.len(),
                        &mut l1i,
                        &mut l1d,
                        &mut scratch,
                        tier,
                    );
                    assert_eq!(split, reference, "tier {tier:?}");
                }
                // Advance the carried state once for the warm pass.
                let split =
                    model.simulate_with(&prep, trace.len(), &mut l1i_a, &mut l1d_a, &mut scratch);
                assert_eq!(split, reference);
            }
        }
    }

    #[test]
    fn prefix_replay_matches_prefix_preparation() {
        let text = "add rax, 1\nmov rbx, rax\nimul rbx, rcx\nxor edx, edx";
        let block = parse_block(text).unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let full = trace_for(block.len(), 16);
        let prep = model.prepare(&full, &layout);
        let mut scratch = SimScratch::default();
        for copies in [0u32, 1, 4, 16] {
            let n = block.len() * copies as usize;
            let mut l1i_a = Cache::new(uarch.l1i);
            let mut l1d_a = Cache::new(uarch.l1d);
            let mut l1i_b = Cache::new(uarch.l1i);
            let mut l1d_b = Cache::new(uarch.l1d);
            let split = model.simulate_with(&prep, n, &mut l1i_a, &mut l1d_a, &mut scratch);
            let reference = model.run_reference(&full[..n], &layout, &mut l1i_b, &mut l1d_b);
            assert_eq!(split, reference, "prefix of {copies} copies");
        }
    }

    /// A reservation station that can never hold a single uop deadlocks
    /// rename forever. Both paths must report the same hard error — in
    /// debug *and* release — instead of returning a truncated result.
    #[test]
    fn pathological_schedule_is_a_hard_error_on_both_paths() {
        let starved: &'static Uarch = Box::leak(Box::new(Uarch {
            rs_size: 0,
            ..Uarch::haswell().clone()
        }));
        let block = parse_block("add rax, 1\nadd rbx, 1").unwrap();
        let model = TimingModel::new(block.insts(), starved);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let trace = trace_for(block.len(), 4);

        let mut l1i = Cache::new(starved.l1i);
        let mut l1d = Cache::new(starved.l1d);
        let reference = model.run_reference(&trace, &layout, &mut l1i, &mut l1d);
        let err = reference.expect_err("reference must fail to converge");
        assert_eq!(err.retired, 0);
        assert_eq!(err.total_insts, trace.len());
        assert!(err.cycle_budget >= 1_000_000);
        assert!(err.to_string().contains("failed to converge"));

        let prep = model.prepare(&trace, &layout);
        let mut scratch = SimScratch::default();
        for &tier in SimdTier::available() {
            let mut l1i = Cache::new(starved.l1i);
            let mut l1d = Cache::new(starved.l1d);
            let split = model.simulate_with_tier(
                &prep,
                trace.len(),
                &mut l1i,
                &mut l1d,
                &mut scratch,
                tier,
            );
            assert_eq!(split, reference, "tier {tier:?} error parity");
        }
    }
}
