//! Cycle-level out-of-order timing model.
//!
//! The model is a classic resource-constrained OoO pipeline: an in-order
//! frontend fetching through the L1I cache, rename/allocate limited by
//! issue width, ROB and RS capacity, a greedy oldest-first scheduler over
//! the per-uarch execution ports, load/store handling through the VIPT
//! L1D, and in-order retirement. It consumes the *dynamic* instruction
//! trace produced by functional execution, so value-dependent latencies
//! (division, subnormals) and the concrete memory addresses are exact.
//!
//! The run is split in two phases so the harness's double execution (and
//! its two unroll factors) never redoes schedule-independent work:
//!
//! * [`TimingModel::prepare_into`] turns a trace into a [`PreparedTrace`]:
//!   the dynamic uop stream with resolved latencies, dependency edges,
//!   memory addresses, and the frontend fetch/L1I-probe schedule.
//! * [`TimingModel::simulate_with`] replays a prepared trace (or any
//!   prefix of it) against concrete cache state, which is the only input
//!   that differs between warm-up and measured runs.
//!
//! [`TimingModel::run_reference`] keeps the original single-pass
//! implementation; differential tests pin the split path to it bit for
//! bit.

use crate::cache::Cache;
use crate::exec::InstEffects;
use crate::state::CpuState;
use bhive_asm::{AsmError, Gpr, Inst};
use bhive_uarch::{decompose_cached, macro_fuses, Recipe, Uarch, UarchKind, Uop, UopKind, VarLat};
use std::collections::HashMap;

/// Where the unrolled code lives in (virtual) memory; determines which L1I
/// lines it occupies.
#[derive(Debug, Clone)]
pub struct CodeLayout {
    /// Base virtual address of the first copy.
    pub base: u64,
    /// `(offset, len)` of each static instruction within one block copy.
    pub inst_spans: Vec<(u32, u32)>,
    /// Encoded length of one block copy in bytes.
    pub block_len: u32,
}

impl CodeLayout {
    /// Computes the layout of a block placed at `base`, using real encoded
    /// instruction lengths.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors for unsupported instructions.
    pub fn from_block(insts: &[Inst], base: u64) -> Result<CodeLayout, AsmError> {
        let mut spans = Vec::with_capacity(insts.len());
        let mut offset = 0u32;
        for inst in insts {
            let len = bhive_asm::encoded_len(inst)? as u32;
            spans.push((offset, len));
            offset += len;
        }
        Ok(CodeLayout {
            base,
            inst_spans: spans,
            block_len: offset,
        })
    }

    /// Builds the layout from `(offset, len)` spans recorded while the
    /// block was encoded (see `BasicBlock::encode_spanned`), so callers
    /// that already hold the machine code do not encode it a second time.
    pub fn from_spans(inst_spans: Vec<(u32, u32)>, base: u64) -> CodeLayout {
        let block_len = inst_spans
            .last()
            .map(|&(off, len)| off + len)
            .unwrap_or_default();
        CodeLayout {
            base,
            inst_spans,
            block_len,
        }
    }

    /// Code address and length of `static_idx` within unrolled copy `copy`.
    pub fn addr(&self, copy: u32, static_idx: usize) -> (u64, u32) {
        let (off, len) = self.inst_spans[static_idx];
        (
            self.base + u64::from(copy) * u64::from(self.block_len) + u64::from(off),
            len,
        )
    }

    /// Total footprint of `copies` unrolled copies, in bytes.
    pub fn footprint(&self, copies: u32) -> u64 {
        u64::from(self.block_len) * u64::from(copies)
    }
}

/// One dynamic instruction of the trace: which static instruction, which
/// unrolled copy, and its value-dependent effects.
#[derive(Debug, Clone, Copy)]
pub struct DynInst {
    /// Index into the static block.
    pub static_idx: usize,
    /// Which unrolled copy this execution belongs to.
    pub copy: u32,
    /// Effects recorded by functional execution.
    pub effects: InstEffects,
}

/// Timing statistics of one run of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingResult {
    /// Total core cycles from first fetch to last retirement.
    pub cycles: u64,
    /// L1D read misses.
    pub l1d_read_misses: u64,
    /// L1D write misses.
    pub l1d_write_misses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// Line-splitting (misaligned) loads/stores.
    pub misaligned: u64,
    /// Unfused uops executed.
    pub uops: u64,
    /// Instructions retired.
    pub insts: u64,
}

/// Dependency-tracking key (reference path only; the prepared path uses
/// the flat producer scoreboard below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DepKey {
    Gpr(u8),
    Vec(u8),
    Flags,
}

const NO_UOP: u32 = u32::MAX;

/// Flat producer-scoreboard layout: GPRs at `0..16`, vector registers at
/// `16..32`, RFLAGS at `32`. Indexing an array beats hashing a `DepKey`
/// on every register read of every dynamic instruction.
const PRODUCER_SLOTS: usize = 33;
const FLAGS_SLOT: u8 = 32;

fn gpr_slot(n: u8) -> u8 {
    n
}

fn vec_slot(n: u8) -> u8 {
    16 + n
}

#[derive(Debug, Clone)]
struct DynUop {
    ports: u8,
    latency: u32,
    blocking: u32,
    kind: UopKind,
    /// Producer uop ids: `dep_pool[dep_start..dep_start + dep_len]`.
    dep_start: u32,
    dep_len: u16,
    /// Load/store address for the D-cache (vaddr, paddr, width).
    mem: Option<(u64, u64, u8)>,
}

/// Per-dynamic-instruction uop range and rename bookkeeping.
#[derive(Debug, Clone, Copy)]
struct InstMeta {
    /// First uop id.
    first: u32,
    /// One past the last uop id.
    last: u32,
    /// Fused-domain rename/retire slots.
    slots: u32,
    /// Eliminated at rename (no uops).
    eliminated: bool,
}

/// Open-addressed map from 8-byte address chunk to the uop id of the
/// latest store covering it (store-to-load forwarding scoreboard).
/// Replaces a `HashMap<u64, u32>`: no hasher state, no rehash-per-lookup,
/// and `reset` keeps the backing storage for the next trace.
#[derive(Debug, Default)]
struct ChunkTable {
    keys: Vec<u64>,
    /// `NO_UOP` marks an empty slot (store uop ids are always < `NO_UOP`).
    vals: Vec<u32>,
    len: usize,
}

impl ChunkTable {
    fn reset(&mut self) {
        if self.keys.is_empty() {
            self.keys = vec![0; 64];
            self.vals = vec![NO_UOP; 64];
        } else {
            self.vals.fill(NO_UOP);
        }
        self.len = 0;
    }

    fn slot(&self, chunk: u64) -> usize {
        // Fibonacci hashing spreads the (dense, small) chunk numbers.
        ((chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.keys.len() - 1)
    }

    fn get(&self, chunk: u64) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut i = self.slot(chunk);
        loop {
            if self.vals[i] == NO_UOP {
                return None;
            }
            if self.keys[i] == chunk {
                return Some(self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, chunk: u64, uop: u32) {
        // Keep load factor below 3/4 so probe sequences stay short and
        // lookups always terminate on an empty slot.
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.slot(chunk);
        loop {
            if self.vals[i] == NO_UOP {
                self.keys[i] = chunk;
                self.vals[i] = uop;
                self.len += 1;
                return;
            }
            if self.keys[i] == chunk {
                self.vals[i] = uop;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![NO_UOP; new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != NO_UOP {
                self.insert(k, v);
            }
        }
    }
}

/// A trace compiled into its schedule-independent form: the dynamic uop
/// stream with resolved latencies, dependency edges, memory addresses,
/// and the frontend fetch/L1I-probe schedule. Built once per attempt and
/// replayed by [`TimingModel::simulate_with`] for every warm-up/measured
/// run.
///
/// All contents are *prefix-closed*: because functional execution is
/// deterministic, the preparation of the first `n` dynamic instructions
/// equals the first `n` instructions' worth of the full preparation, so a
/// hi-factor preparation serves the lo-factor run as a prefix.
#[derive(Debug, Default)]
pub struct PreparedTrace {
    uops: Vec<DynUop>,
    /// All uop dependency lists, back to back (one allocation instead of
    /// a heap Vec per uop).
    dep_pool: Vec<u32>,
    inst_meta: Vec<InstMeta>,
    /// Per-instruction fetch clock before stalls: cumulative bytes / 16.
    fetch_base: Vec<u64>,
    /// L1I line probes as `(instruction index, line address)`, in program
    /// order with consecutive duplicates removed.
    probes: Vec<(u32, u64)>,
    // Prepare-time scratch, reused across prepares; dead weight to
    // `simulate_with`.
    stores: ChunkTable,
    reg_deps: Vec<u32>,
    addr_deps: Vec<u32>,
}

impl PreparedTrace {
    /// Number of prepared dynamic instructions.
    pub fn len(&self) -> usize {
        self.inst_meta.len()
    }

    /// True if nothing is prepared.
    pub fn is_empty(&self) -> bool {
        self.inst_meta.is_empty()
    }

    /// Number of unfused uops in the prepared stream.
    pub fn uop_count(&self) -> usize {
        self.uops.len()
    }
}

/// Reusable per-simulation state (completion times, RS contents, fetch
/// and rename cycles). Owning one and passing it to
/// [`TimingModel::simulate_with`] makes repeated simulations
/// allocation-free.
#[derive(Debug, Default)]
pub struct SimScratch {
    completion: Vec<u64>,
    waiting: Vec<u32>,
    fetch_cycle: Vec<u64>,
    rename_cycle: Vec<u64>,
}

/// How an eliminated instruction rewrites the producer scoreboard at
/// rename, precomputed per static instruction.
#[derive(Debug, Clone)]
enum Elim {
    /// Not eliminated.
    None,
    /// Zero idiom: dependency-break every listed slot.
    Zero(Box<[u8]>),
    /// Eliminated move: alias the destination slot to the source's
    /// producer.
    Move { dst: u8, src: u8 },
    /// Nothing to rewrite (e.g. `nop`).
    Inert,
}

/// Schedule-independent facts about one static instruction, precomputed
/// so the per-dynamic-instruction loop never calls the allocating
/// `gpr_reads()`/`vec_reads()`-style accessors.
#[derive(Debug, Clone)]
struct StaticInfo {
    /// Producer slots the instruction reads (registers, vectors, flags).
    reads: Box<[u8]>,
    /// Producer slots of the memory operand's address registers.
    addr_reads: Box<[u8]>,
    /// Producer slots the instruction's result broadcasts to.
    writes: Box<[u8]>,
    elim: Elim,
}

fn push_unique(out: &mut Vec<u8>, slot: u8) {
    if !out.contains(&slot) {
        out.push(slot);
    }
}

fn static_info(inst: &Inst, recipe: &Recipe) -> StaticInfo {
    if recipe.eliminated {
        let elim = if inst.is_zero_idiom() {
            let mut slots = Vec::new();
            for reg in inst.gpr_writes() {
                push_unique(&mut slots, gpr_slot(reg.number()));
            }
            for vec in inst.vec_writes() {
                push_unique(&mut slots, vec_slot(vec.number()));
            }
            // Scalar idioms (`xor r, r`) also set flags at rename:
            // consumers must not wait on the previous flag writer.
            if !inst.mnemonic().is_sse() {
                push_unique(&mut slots, FLAGS_SLOT);
            }
            Elim::Zero(slots.into_boxed_slice())
        } else if let (Some(dst), Some(src)) = (
            inst.gpr_writes().first().copied(),
            inst.gpr_reads().first().copied(),
        ) {
            Elim::Move {
                dst: gpr_slot(dst.number()),
                src: gpr_slot(src.number()),
            }
        } else if let (Some(dst), Some(src)) = (
            inst.vec_writes().first().copied(),
            inst.vec_reads().first().copied(),
        ) {
            Elim::Move {
                dst: vec_slot(dst.number()),
                src: vec_slot(src.number()),
            }
        } else {
            Elim::Inert
        };
        return StaticInfo {
            reads: Box::default(),
            addr_reads: Box::default(),
            writes: Box::default(),
            elim,
        };
    }

    let mut reads = Vec::new();
    for reg in inst.gpr_reads() {
        push_unique(&mut reads, gpr_slot(reg.number()));
    }
    for vec in inst.vec_reads() {
        push_unique(&mut reads, vec_slot(vec.number()));
    }
    if crate::exec::flags_read(inst) {
        push_unique(&mut reads, FLAGS_SLOT);
    }
    let mut addr_reads = Vec::new();
    if let Some(m) = inst.mem_operand() {
        for reg in m.address_regs() {
            push_unique(&mut addr_reads, gpr_slot(reg.number()));
        }
    }
    let mut writes = Vec::new();
    for reg in inst.gpr_writes() {
        push_unique(&mut writes, gpr_slot(reg.number()));
    }
    for vec in inst.vec_writes() {
        push_unique(&mut writes, vec_slot(vec.number()));
    }
    if crate::exec::flags_written(inst) {
        push_unique(&mut writes, FLAGS_SLOT);
    }
    StaticInfo {
        reads: reads.into_boxed_slice(),
        addr_reads: addr_reads.into_boxed_slice(),
        writes: writes.into_boxed_slice(),
        elim: Elim::None,
    }
}

/// The reusable timing model for a fixed static block on one
/// microarchitecture.
#[derive(Debug)]
pub struct TimingModel<'a> {
    uarch: &'a Uarch,
    insts: &'a [Inst],
    recipes: Vec<Recipe>,
    statics: Vec<StaticInfo>,
    /// Static instruction is macro-fused into its predecessor.
    fused_into_prev: Vec<bool>,
}

impl<'a> TimingModel<'a> {
    /// Builds the model: decomposes every static instruction (through the
    /// per-thread recipe memo) and precomputes macro-fusion and the
    /// register-slot tables.
    pub fn new(insts: &'a [Inst], uarch: &'a Uarch) -> TimingModel<'a> {
        let recipes: Vec<Recipe> = insts
            .iter()
            .map(|inst| decompose_cached(inst, uarch))
            .collect();
        let statics = insts
            .iter()
            .zip(&recipes)
            .map(|(inst, recipe)| static_info(inst, recipe))
            .collect();
        let mut fused_into_prev = vec![false; insts.len()];
        for i in 1..insts.len() {
            if macro_fuses(&insts[i - 1], &insts[i], uarch) {
                fused_into_prev[i] = true;
            }
        }
        TimingModel {
            uarch,
            insts,
            recipes,
            statics,
            fused_into_prev,
        }
    }

    /// The microarchitecture the model targets.
    pub fn uarch(&self) -> &Uarch {
        self.uarch
    }

    /// Resolves the concrete latency of a variable-latency uop against the
    /// recorded execution effects.
    fn resolve_latency(&self, uop: &Uop, fx: &InstEffects) -> (u32, u32) {
        let mut latency = uop.latency;
        let mut blocking = uop.blocking;
        match uop.var_lat {
            Some(VarLat::DivGpr { width }) => {
                let qbits = fx.div_quotient_bits.unwrap_or(1);
                latency = div_latency(self.uarch.kind, width, qbits, fx.div_rdx_zero);
                blocking = latency;
            }
            Some(VarLat::FpDiv) | Some(VarLat::FpSqrt) => {
                // Value dependence for FP div/sqrt is mild; subnormal
                // handling below dominates.
            }
            None => {}
        }
        if fx.subnormal && uop.kind == UopKind::Compute {
            // Microcode assist: hugely slower and fully serializing.
            latency = latency.saturating_mul(self.uarch.subnormal_penalty);
            blocking = latency;
        }
        (latency, blocking)
    }

    /// Compiles `trace` into `prep`, reusing `prep`'s allocations. The
    /// prepared stream is valid for any [`TimingModel::simulate_with`]
    /// replay over caches with this model's uarch geometry.
    pub fn prepare_into(&self, prep: &mut PreparedTrace, trace: &[DynInst], layout: &CodeLayout) {
        let PreparedTrace {
            uops,
            dep_pool,
            inst_meta,
            fetch_base,
            probes,
            stores,
            reg_deps,
            addr_deps,
        } = prep;
        uops.clear();
        dep_pool.clear();
        inst_meta.clear();
        fetch_base.clear();
        probes.clear();
        stores.reset();
        uops.reserve(trace.len());
        inst_meta.reserve(trace.len());
        fetch_base.reserve(trace.len());

        // ---- Frontend: fetch byte clock and the L1I probe schedule ----
        {
            let line = u64::from(self.uarch.l1i.line_bytes);
            let mut clock_bytes = 0u64; // 16 fetch bytes per cycle
            let mut last_line = u64::MAX;
            for (i, dyn_inst) in trace.iter().enumerate() {
                let (addr, len) = layout.addr(dyn_inst.copy, dyn_inst.static_idx);
                let mut probe = addr / line;
                let end_line = (addr + u64::from(len) - 1) / line;
                while probe <= end_line {
                    if probe != last_line {
                        probes.push((i as u32, probe * line));
                        last_line = probe;
                    }
                    probe += 1;
                }
                clock_bytes += u64::from(len);
                fetch_base.push(clock_bytes / 16);
            }
        }

        // ---- Dynamic uops with dependencies ----
        let mut producers = [NO_UOP; PRODUCER_SLOTS];
        for dyn_inst in trace.iter() {
            let recipe = &self.recipes[dyn_inst.static_idx];
            let info = &self.statics[dyn_inst.static_idx];
            let fx = &dyn_inst.effects;
            let first = uops.len() as u32;
            let mut frontend_slots = recipe.frontend_slots;
            if self.fused_into_prev[dyn_inst.static_idx] {
                frontend_slots = 0;
            }

            if recipe.eliminated {
                match &info.elim {
                    // Zero idiom: break dependencies on the destination.
                    Elim::Zero(slots) => {
                        for &slot in slots.iter() {
                            producers[slot as usize] = NO_UOP;
                        }
                    }
                    // Eliminated move: alias destination to source
                    // producer (NO_UOP propagates "no producer").
                    Elim::Move { dst, src } => {
                        producers[*dst as usize] = producers[*src as usize];
                    }
                    Elim::Inert | Elim::None => {}
                }
                inst_meta.push(InstMeta {
                    first,
                    last: first,
                    slots: frontend_slots,
                    eliminated: true,
                });
                continue;
            }

            // Register/flag dependencies of the whole instruction.
            reg_deps.clear();
            for &slot in info.reads.iter() {
                let p = producers[slot as usize];
                if p != NO_UOP {
                    reg_deps.push(p);
                }
            }
            addr_deps.clear();
            for &slot in info.addr_reads.iter() {
                let p = producers[slot as usize];
                if p != NO_UOP {
                    addr_deps.push(p);
                }
            }

            let mut load_uop: u32 = NO_UOP;
            let mut last_compute: u32 = NO_UOP;
            for uop in &recipe.uops {
                let (latency, blocking) = self.resolve_latency(uop, fx);
                let dep_start = dep_pool.len();
                let deps = &mut *dep_pool;
                let mut mem = None;
                match uop.kind {
                    UopKind::Load => {
                        deps.extend_from_slice(addr_deps);
                        if let Some(access) = fx.load {
                            mem = Some((access.vaddr, access.paddr, access.width));
                            // Store-to-load forwarding dependency.
                            for chunk in chunks(access.vaddr, access.width) {
                                if let Some(s) = stores.get(chunk) {
                                    deps.push(s);
                                }
                            }
                        }
                    }
                    UopKind::Compute => {
                        deps.extend_from_slice(reg_deps);
                        if load_uop != NO_UOP {
                            deps.push(load_uop);
                        }
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        }
                    }
                    UopKind::StoreAddr => {
                        deps.extend_from_slice(addr_deps);
                    }
                    UopKind::StoreData => {
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        } else if load_uop != NO_UOP {
                            deps.push(load_uop);
                        } else {
                            deps.extend_from_slice(reg_deps);
                        }
                        if let Some(access) = fx.store {
                            mem = Some((access.vaddr, access.paddr, access.width));
                        }
                    }
                }
                // Sort + dedup this uop's slice of the pool in place.
                let tail = &mut deps[dep_start..];
                tail.sort_unstable();
                let mut kept = usize::from(!tail.is_empty());
                for i in 1..tail.len() {
                    if tail[i] != tail[kept - 1] {
                        tail[kept] = tail[i];
                        kept += 1;
                    }
                }
                deps.truncate(dep_start + kept);
                let id = uops.len() as u32;
                uops.push(DynUop {
                    ports: uop.ports.mask(),
                    latency,
                    blocking,
                    kind: uop.kind,
                    dep_start: dep_start as u32,
                    dep_len: kept as u16,
                    mem,
                });
                match uop.kind {
                    UopKind::Load => load_uop = id,
                    UopKind::Compute => last_compute = id,
                    _ => {}
                }
            }

            // Record producers for later consumers.
            let result_uop = if last_compute != NO_UOP {
                last_compute
            } else {
                load_uop
            };
            if result_uop != NO_UOP {
                for &slot in info.writes.iter() {
                    producers[slot as usize] = result_uop;
                }
            }
            if let Some(access) = fx.store {
                let std_uop = (uops.len() - 1) as u32;
                for chunk in chunks(access.vaddr, access.width) {
                    stores.insert(chunk, std_uop);
                }
            }
            inst_meta.push(InstMeta {
                first,
                last: uops.len() as u32,
                slots: frontend_slots,
                eliminated: false,
            });
        }
    }

    /// Convenience wrapper: prepares `trace` into a fresh [`PreparedTrace`].
    pub fn prepare(&self, trace: &[DynInst], layout: &CodeLayout) -> PreparedTrace {
        let mut prep = PreparedTrace::default();
        self.prepare_into(&mut prep, trace, layout);
        prep
    }

    /// Replays a full prepared trace with one-shot scratch state. See
    /// [`TimingModel::simulate_with`].
    pub fn simulate(&self, prep: &PreparedTrace, l1i: &mut Cache, l1d: &mut Cache) -> TimingResult {
        let mut scratch = SimScratch::default();
        self.simulate_with(prep, prep.len(), l1i, l1d, &mut scratch)
    }

    /// Runs the first `n_insts` prepared dynamic instructions through the
    /// pipeline. `l1i`/`l1d` carry cache state across runs (the harness
    /// performs a warm-up run first, exactly like the paper's double
    /// execution); `scratch` is caller-owned so repeated runs allocate
    /// nothing.
    ///
    /// Prefix replay is exact: simulating `n` instructions of a longer
    /// preparation is bit-identical to preparing and simulating the
    /// `n`-instruction trace itself (the prepared stream is prefix-closed).
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` exceeds the prepared length.
    pub fn simulate_with(
        &self,
        prep: &PreparedTrace,
        n_insts: usize,
        l1i: &mut Cache,
        l1d: &mut Cache,
        scratch: &mut SimScratch,
    ) -> TimingResult {
        assert!(
            n_insts <= prep.inst_meta.len(),
            "prefix of {n_insts} insts exceeds prepared trace of {}",
            prep.inst_meta.len()
        );
        let mut result = TimingResult::default();
        if n_insts == 0 {
            return result;
        }
        let uop_limit = prep.inst_meta[n_insts - 1].last as usize;
        let SimScratch {
            completion,
            waiting,
            fetch_cycle,
            rename_cycle,
        } = scratch;

        // ---- Frontend replay: fetch cycles through the L1I ----
        fetch_cycle.clear();
        {
            let mut stall = 0u64;
            let mut p = 0usize;
            for (i, &base) in prep.fetch_base[..n_insts].iter().enumerate() {
                while p < prep.probes.len() && prep.probes[p].0 as usize == i {
                    let addr = prep.probes[p].1;
                    // Instruction fetch is VIPT too; code is identity
                    // mapped for tagging purposes.
                    if !l1i.access(addr, addr) {
                        stall += u64::from(self.uarch.l1i_miss_penalty);
                        result.l1i_misses += 1;
                    }
                    p += 1;
                }
                fetch_cycle.push(base + stall);
            }
        }

        // ---- Cycle loop ----
        let total_insts = n_insts;
        completion.clear();
        completion.resize(uop_limit, u64::MAX);
        waiting.clear();
        rename_cycle.clear();
        rename_cycle.resize(total_insts, 0);
        let mut port_free = [0u64; 8];
        // L1-miss handling serializes on the L2 interface (a coarse MSHR /
        // fill-bandwidth model): misses cannot complete back to back.
        let mut l2_free = 0u64;
        let l2_interval = u64::from(self.uarch.l1d_miss_penalty);
        let mut next_rename = 0usize; // inst index
        let mut next_retire = 0usize;
        let mut rob_used = 0u32;
        let mut rs_used = 0u32;
        let mut cycle = 0u64;
        // Safety valve against pathological schedules.
        let max_cycles = 1_000_000u64 + (uop_limit as u64) * 64;

        while next_retire < total_insts {
            // Retire (fused-domain bandwidth).
            let mut retired = 0;
            while next_retire < total_insts && retired < self.uarch.retire_width {
                let m = prep.inst_meta[next_retire];
                let done = if m.eliminated {
                    rename_cycle[next_retire] <= cycle && next_retire < next_rename
                } else {
                    next_retire < next_rename
                        && (m.first..m.last).all(|u| completion[u as usize] <= cycle)
                };
                if !done {
                    break;
                }
                rob_used = rob_used.saturating_sub(m.slots.max(1));
                next_retire += 1;
                retired += 1;
                result.insts += 1;
            }

            // Issue from the RS: oldest first, compacting the RS in
            // place. Once the issue quota is spent, the rest of the RS is
            // kept wholesale without re-testing dependencies.
            let mut kept = 0usize;
            let mut examined = 0usize;
            let mut issued_this_cycle = 0u32;
            while examined < waiting.len() {
                if issued_this_cycle >= self.uarch.issue_width * 2 {
                    break;
                }
                let uid = waiting[examined];
                examined += 1;
                let u = &prep.uops[uid as usize];
                let deps = &prep.dep_pool[u.dep_start as usize..][..usize::from(u.dep_len)];
                let ready = deps.iter().all(|&d| completion[d as usize] <= cycle);
                if !ready {
                    waiting[kept] = uid;
                    kept += 1;
                    continue;
                }
                // Pick the available port with the earliest free cycle.
                let mut best: Option<usize> = None;
                for p in 0..8 {
                    if u.ports & (1 << p) != 0 && port_free[p] <= cycle {
                        best = match best {
                            Some(b) if port_free[b] <= port_free[p] => Some(b),
                            _ => Some(p),
                        };
                    }
                }
                let Some(port) = best else {
                    waiting[kept] = uid;
                    kept += 1;
                    continue;
                };
                // Memory access latency adjustments.
                let mut latency = u.latency;
                let mut miss_delay = 0u64;
                if let Some((vaddr, paddr, width)) = u.mem {
                    let write = u.kind == UopKind::StoreData;
                    let hit = l1d.access(vaddr, paddr);
                    if !hit {
                        latency += self.uarch.l1d_miss_penalty;
                        let fill_start = l2_free.max(cycle);
                        miss_delay = fill_start - cycle;
                        l2_free = fill_start + l2_interval;
                        if write {
                            result.l1d_write_misses += 1;
                        } else {
                            result.l1d_read_misses += 1;
                        }
                    }
                    if l1d.splits_line(vaddr, width) {
                        latency += self.uarch.split_access_penalty;
                        result.misaligned += 1;
                        // The second line is accessed as well.
                        let second = (vaddr / l1d.line_bytes() + 1) * l1d.line_bytes();
                        let poff = second - vaddr;
                        if !l1d.access(second, paddr + poff) {
                            latency += self.uarch.l1d_miss_penalty;
                            if write {
                                result.l1d_write_misses += 1;
                            } else {
                                result.l1d_read_misses += 1;
                            }
                        }
                    }
                }
                completion[uid as usize] = cycle + miss_delay + u64::from(latency);
                port_free[port] = cycle + u64::from(u.blocking);
                rs_used = rs_used.saturating_sub(1);
                result.uops += 1;
                issued_this_cycle += 1;
            }
            waiting.copy_within(examined.., kept);
            waiting.truncate(kept + waiting.len() - examined);

            // Rename/allocate (in order, fused-domain width).
            let mut slots_left = self.uarch.issue_width;
            while next_rename < total_insts && slots_left > 0 {
                let m = prep.inst_meta[next_rename];
                if fetch_cycle[next_rename] > cycle {
                    break;
                }
                let uop_count = m.last - m.first;
                if rob_used + m.slots.max(1) > self.uarch.rob_size
                    || rs_used + uop_count > self.uarch.rs_size
                {
                    break;
                }
                if m.slots > slots_left {
                    break;
                }
                rename_cycle[next_rename] = cycle;
                rob_used += m.slots.max(1);
                if !m.eliminated {
                    for uid in m.first..m.last {
                        waiting.push(uid);
                    }
                    rs_used += uop_count;
                }
                slots_left -= m.slots.min(slots_left);
                next_rename += 1;
            }

            cycle += 1;
            if cycle > max_cycles {
                debug_assert!(false, "timing model failed to converge");
                break;
            }
        }

        result.cycles = cycle;
        result
    }

    /// Runs the trace through the pipeline by preparing and simulating it
    /// in one call. `l1i`/`l1d` carry cache state across runs. Hot paths
    /// should hold a [`PreparedTrace`]/[`SimScratch`] and call the split
    /// phases instead.
    pub fn run(
        &self,
        trace: &[DynInst],
        layout: &CodeLayout,
        l1i: &mut Cache,
        l1d: &mut Cache,
    ) -> TimingResult {
        let mut prep = PreparedTrace::default();
        self.prepare_into(&mut prep, trace, layout);
        self.simulate(&prep, l1i, l1d)
    }

    /// The original single-pass implementation, kept verbatim as the
    /// straight-line reference: differential tests pin
    /// `prepare` + `simulate` (including prefix replay) to this path bit
    /// for bit. Not used on hot paths.
    pub fn run_reference(
        &self,
        trace: &[DynInst],
        layout: &CodeLayout,
        l1i: &mut Cache,
        l1d: &mut Cache,
    ) -> TimingResult {
        let mut result = TimingResult::default();
        if trace.is_empty() {
            return result;
        }

        // ---- Pre-pass: frontend fetch cycles through the L1I ----
        let mut fetch_cycle = vec![0u64; trace.len()];
        {
            let mut clock_bytes = 0u64; // 16 fetch bytes per cycle
            let mut stall = 0u64;
            let line = l1i.line_bytes();
            let mut last_line = u64::MAX;
            for (i, dyn_inst) in trace.iter().enumerate() {
                let (addr, len) = layout.addr(dyn_inst.copy, dyn_inst.static_idx);
                let mut probe = addr / line;
                let end_line = (addr + u64::from(len) - 1) / line;
                while probe <= end_line {
                    if probe != last_line {
                        // Instruction fetch is VIPT too; code is identity
                        // mapped for tagging purposes.
                        if !l1i.access(probe * line, probe * line) {
                            stall += u64::from(self.uarch.l1i_miss_penalty);
                            result.l1i_misses += 1;
                        }
                        last_line = probe;
                    }
                    probe += 1;
                }
                clock_bytes += u64::from(len);
                fetch_cycle[i] = clock_bytes / 16 + stall;
            }
        }

        // ---- Pre-pass: build dynamic uops with dependencies ----
        let mut uops: Vec<DynUop> = Vec::with_capacity(trace.len() * 2);
        let mut dep_pool: Vec<u32> = Vec::with_capacity(trace.len() * 2);
        // inst_id -> (first_uop, last_uop+1, frontend_slots, eliminated)
        let mut inst_meta: Vec<(u32, u32, u32, bool)> = Vec::with_capacity(trace.len());
        let mut producers: HashMap<DepKey, u32> = HashMap::new();
        let mut store_chunks: HashMap<u64, u32> = HashMap::new();
        // Scratch, reused across trace instructions.
        let mut addr_regs: Vec<Gpr> = Vec::new();
        let mut reg_deps: Vec<u32> = Vec::new();
        let mut addr_deps: Vec<u32> = Vec::new();

        for dyn_inst in trace.iter() {
            let inst = &self.insts[dyn_inst.static_idx];
            let recipe = &self.recipes[dyn_inst.static_idx];
            let fx = &dyn_inst.effects;
            let first = uops.len() as u32;
            let mut frontend_slots = recipe.frontend_slots;
            if self.fused_into_prev[dyn_inst.static_idx] {
                frontend_slots = 0;
            }

            if recipe.eliminated {
                // Zero idiom: break dependencies on the destination.
                // Eliminated move: alias destination to source producer.
                if inst.is_zero_idiom() {
                    for reg in inst.gpr_writes() {
                        producers.remove(&DepKey::Gpr(reg.number()));
                    }
                    for vec in inst.vec_writes() {
                        producers.remove(&DepKey::Vec(vec.number()));
                    }
                    // Scalar idioms (`xor r, r`) also set flags at rename:
                    // consumers must not wait on the previous flag writer.
                    if !inst.mnemonic().is_sse() {
                        producers.remove(&DepKey::Flags);
                    }
                } else if let (Some(dst), Some(src)) = (
                    inst.gpr_writes().first().copied(),
                    inst.gpr_reads().first().copied(),
                ) {
                    if let Some(&p) = producers.get(&DepKey::Gpr(src.number())) {
                        producers.insert(DepKey::Gpr(dst.number()), p);
                    } else {
                        producers.remove(&DepKey::Gpr(dst.number()));
                    }
                } else if let (Some(dst), Some(src)) = (
                    inst.vec_writes().first().copied(),
                    inst.vec_reads().first().copied(),
                ) {
                    if let Some(&p) = producers.get(&DepKey::Vec(src.number())) {
                        producers.insert(DepKey::Vec(dst.number()), p);
                    } else {
                        producers.remove(&DepKey::Vec(dst.number()));
                    }
                }
                inst_meta.push((first, first, frontend_slots, true));
                continue;
            }

            // Register/flag dependencies of the whole instruction.
            addr_regs.clear();
            if let Some(m) = inst.mem_operand() {
                addr_regs.extend(m.address_regs());
            }
            reg_deps.clear();
            for reg in inst.gpr_reads() {
                if let Some(&p) = producers.get(&DepKey::Gpr(reg.number())) {
                    reg_deps.push(p);
                }
            }
            for vec in inst.vec_reads() {
                if let Some(&p) = producers.get(&DepKey::Vec(vec.number())) {
                    reg_deps.push(p);
                }
            }
            if crate::exec::flags_read(inst) {
                if let Some(&p) = producers.get(&DepKey::Flags) {
                    reg_deps.push(p);
                }
            }
            addr_deps.clear();
            for reg in &addr_regs {
                if let Some(&p) = producers.get(&DepKey::Gpr(reg.number())) {
                    addr_deps.push(p);
                }
            }

            let mut load_uop: u32 = NO_UOP;
            let mut last_compute: u32 = NO_UOP;
            for uop in &recipe.uops {
                let (latency, blocking) = self.resolve_latency(uop, fx);
                let dep_start = dep_pool.len();
                let deps = &mut dep_pool;
                let mut mem = None;
                match uop.kind {
                    UopKind::Load => {
                        deps.extend_from_slice(&addr_deps);
                        if let Some(access) = fx.load {
                            mem = Some((access.vaddr, access.paddr, access.width));
                            // Store-to-load forwarding dependency.
                            for chunk in chunks(access.vaddr, access.width) {
                                if let Some(&s) = store_chunks.get(&chunk) {
                                    deps.push(s);
                                }
                            }
                        }
                    }
                    UopKind::Compute => {
                        deps.extend_from_slice(&reg_deps);
                        if load_uop != NO_UOP {
                            deps.push(load_uop);
                        }
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        }
                    }
                    UopKind::StoreAddr => {
                        deps.extend_from_slice(&addr_deps);
                    }
                    UopKind::StoreData => {
                        if last_compute != NO_UOP {
                            deps.push(last_compute);
                        } else if load_uop != NO_UOP {
                            deps.push(load_uop);
                        } else {
                            deps.extend_from_slice(&reg_deps);
                        }
                        if let Some(access) = fx.store {
                            mem = Some((access.vaddr, access.paddr, access.width));
                        }
                    }
                }
                // Sort + dedup this uop's slice of the pool in place.
                let tail = &mut deps[dep_start..];
                tail.sort_unstable();
                let mut kept = usize::from(!tail.is_empty());
                for i in 1..tail.len() {
                    if tail[i] != tail[kept - 1] {
                        tail[kept] = tail[i];
                        kept += 1;
                    }
                }
                deps.truncate(dep_start + kept);
                let id = uops.len() as u32;
                uops.push(DynUop {
                    ports: uop.ports.mask(),
                    latency,
                    blocking,
                    kind: uop.kind,
                    dep_start: dep_start as u32,
                    dep_len: kept as u16,
                    mem,
                });
                match uop.kind {
                    UopKind::Load => load_uop = id,
                    UopKind::Compute => last_compute = id,
                    _ => {}
                }
            }

            // Record producers for later consumers.
            let result_uop = if last_compute != NO_UOP {
                last_compute
            } else {
                load_uop
            };
            if result_uop != NO_UOP {
                for reg in inst.gpr_writes() {
                    producers.insert(DepKey::Gpr(reg.number()), result_uop);
                }
                for vec in inst.vec_writes() {
                    producers.insert(DepKey::Vec(vec.number()), result_uop);
                }
                if crate::exec::flags_written(inst) {
                    producers.insert(DepKey::Flags, result_uop);
                }
            }
            if let Some(access) = fx.store {
                let std_uop = (uops.len() - 1) as u32;
                for chunk in chunks(access.vaddr, access.width) {
                    store_chunks.insert(chunk, std_uop);
                }
            }
            inst_meta.push((first, uops.len() as u32, frontend_slots, false));
        }

        // ---- Cycle loop ----
        let total_insts = inst_meta.len();
        let mut completion = vec![u64::MAX; uops.len()];
        let mut waiting: Vec<u32> = Vec::new(); // uop ids in RS, age order
        let mut port_free = [0u64; 8];
        // L1-miss handling serializes on the L2 interface (a coarse MSHR /
        // fill-bandwidth model): misses cannot complete back to back.
        let mut l2_free = 0u64;
        let l2_interval = u64::from(self.uarch.l1d_miss_penalty);
        let mut next_rename = 0usize; // inst index
        let mut next_retire = 0usize;
        let mut rob_used = 0u32;
        let mut rs_used = 0u32;
        let mut rename_cycle = vec![0u64; total_insts];
        let mut cycle = 0u64;
        // Safety valve against pathological schedules.
        let max_cycles = 1_000_000u64 + (uops.len() as u64) * 64;

        while next_retire < total_insts {
            // Retire (fused-domain bandwidth).
            let mut retired = 0;
            while next_retire < total_insts && retired < self.uarch.retire_width {
                let (first, last, _slots, eliminated) = inst_meta[next_retire];
                let done = if eliminated {
                    rename_cycle[next_retire] <= cycle && next_retire < next_rename
                } else {
                    next_retire < next_rename
                        && (first..last).all(|u| completion[u as usize] <= cycle)
                };
                if !done {
                    break;
                }
                rob_used = rob_used.saturating_sub(inst_meta[next_retire].2.max(1));
                next_retire += 1;
                retired += 1;
                result.insts += 1;
            }

            // Issue from the RS: oldest first, compacting the RS in
            // place. Once the issue quota is spent, the rest of the RS is
            // kept wholesale without re-testing dependencies.
            let mut kept = 0usize;
            let mut examined = 0usize;
            let mut issued_this_cycle = 0u32;
            while examined < waiting.len() {
                if issued_this_cycle >= self.uarch.issue_width * 2 {
                    break;
                }
                let uid = waiting[examined];
                examined += 1;
                let u = &uops[uid as usize];
                let deps = &dep_pool[u.dep_start as usize..][..usize::from(u.dep_len)];
                let ready = deps.iter().all(|&d| completion[d as usize] <= cycle);
                if !ready {
                    waiting[kept] = uid;
                    kept += 1;
                    continue;
                }
                // Pick the available port with the earliest free cycle.
                let mut best: Option<usize> = None;
                for p in 0..8 {
                    if u.ports & (1 << p) != 0 && port_free[p] <= cycle {
                        best = match best {
                            Some(b) if port_free[b] <= port_free[p] => Some(b),
                            _ => Some(p),
                        };
                    }
                }
                let Some(port) = best else {
                    waiting[kept] = uid;
                    kept += 1;
                    continue;
                };
                // Memory access latency adjustments.
                let mut latency = u.latency;
                let mut miss_delay = 0u64;
                if let Some((vaddr, paddr, width)) = u.mem {
                    let write = u.kind == UopKind::StoreData;
                    let hit = l1d.access(vaddr, paddr);
                    if !hit {
                        latency += self.uarch.l1d_miss_penalty;
                        let fill_start = l2_free.max(cycle);
                        miss_delay = fill_start - cycle;
                        l2_free = fill_start + l2_interval;
                        if write {
                            result.l1d_write_misses += 1;
                        } else {
                            result.l1d_read_misses += 1;
                        }
                    }
                    if l1d.splits_line(vaddr, width) {
                        latency += self.uarch.split_access_penalty;
                        result.misaligned += 1;
                        // The second line is accessed as well.
                        let second = (vaddr / l1d.line_bytes() + 1) * l1d.line_bytes();
                        let poff = second - vaddr;
                        if !l1d.access(second, paddr + poff) {
                            latency += self.uarch.l1d_miss_penalty;
                            if write {
                                result.l1d_write_misses += 1;
                            } else {
                                result.l1d_read_misses += 1;
                            }
                        }
                    }
                }
                completion[uid as usize] = cycle + miss_delay + u64::from(latency);
                port_free[port] = cycle + u64::from(u.blocking);
                rs_used = rs_used.saturating_sub(1);
                result.uops += 1;
                issued_this_cycle += 1;
            }
            waiting.copy_within(examined.., kept);
            waiting.truncate(kept + waiting.len() - examined);

            // Rename/allocate (in order, fused-domain width).
            let mut slots_left = self.uarch.issue_width;
            while next_rename < total_insts && slots_left > 0 {
                let (first, last, slots, eliminated) = inst_meta[next_rename];
                if fetch_cycle[next_rename] > cycle {
                    break;
                }
                let uop_count = last - first;
                if rob_used + slots.max(1) > self.uarch.rob_size
                    || rs_used + uop_count > self.uarch.rs_size
                {
                    break;
                }
                if slots > slots_left {
                    break;
                }
                rename_cycle[next_rename] = cycle;
                rob_used += slots.max(1);
                if !eliminated {
                    for uid in first..last {
                        waiting.push(uid);
                    }
                    rs_used += uop_count;
                }
                slots_left -= slots.min(slots_left);
                next_rename += 1;
            }

            cycle += 1;
            if cycle > max_cycles {
                debug_assert!(false, "timing model failed to converge");
                break;
            }
        }

        result.cycles = cycle;
        result
    }
}

/// 8-byte-granular address chunks covered by an access (for
/// store-to-load forwarding detection).
fn chunks(vaddr: u64, width: u8) -> impl Iterator<Item = u64> {
    let first = vaddr / 8;
    let last = (vaddr + u64::from(width.max(1)) - 1) / 8;
    first..=last
}

/// Value-dependent scalar division latency of the simulated hardware.
pub(crate) fn div_latency(kind: UarchKind, width: u8, quotient_bits: u32, rdx_zero: bool) -> u32 {
    match width {
        8 => {
            if rdx_zero {
                // Fast path: effectively a 64/64 division with a short
                // quotient.
                match kind {
                    UarchKind::Skylake => 20 + quotient_bits / 8,
                    _ => 26 + quotient_bits / 4,
                }
            } else {
                match kind {
                    UarchKind::Skylake => 32 + quotient_bits / 8,
                    _ => 82 + quotient_bits / 4,
                }
            }
        }
        4 => {
            let base = match kind {
                UarchKind::IvyBridge => 21,
                UarchKind::Haswell => 20,
                UarchKind::Skylake => 20,
            };
            base + quotient_bits / 4
        }
        _ => 15 + quotient_bits / 4,
    }
}

/// Touch the unused `CpuState` import used only in doc positions.
#[allow(dead_code)]
fn _state_marker(_: &CpuState) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use bhive_asm::parse_block;
    use bhive_uarch::Uarch;

    /// Builds a synthetic trace with `copies` executions of the block and
    /// default (no-fault, no-load) effects.
    fn trace_for(n_insts: usize, copies: u32) -> Vec<DynInst> {
        let mut out = Vec::new();
        for copy in 0..copies {
            for idx in 0..n_insts {
                out.push(DynInst {
                    static_idx: idx,
                    copy,
                    effects: InstEffects::default(),
                });
            }
        }
        out
    }

    fn time(block_text: &str, copies: u32) -> TimingResult {
        let block = parse_block(block_text).unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let trace = trace_for(block.len(), copies);
        // Warm-up run, then measured run (the paper's double execution).
        model.run(&trace, &layout, &mut l1i, &mut l1d);
        model.run(&trace, &layout, &mut l1i, &mut l1d)
    }

    #[test]
    fn independent_adds_reach_alu_throughput() {
        // Four independent adds per iteration: limited by the four ALU
        // ports -> ~1 cycle per iteration of 4 adds.
        let tp = |text: &str| {
            let a = time(text, 100).cycles as f64;
            let b = time(text, 200).cycles as f64;
            (b - a) / 100.0
        };
        let four_adds = "add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rsi, 1";
        let t = tp(four_adds);
        assert!(
            (0.9..=1.6).contains(&t),
            "4 independent adds: {t} cycles/iter"
        );
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        // A dependent add chain retires 1 per cycle regardless of width.
        let block = "add rax, 1\nadd rax, 1\nadd rax, 1\nadd rax, 1";
        let a = time(block, 100).cycles as f64;
        let b = time(block, 200).cycles as f64;
        let per_iter = (b - a) / 100.0;
        assert!(
            (3.5..=4.5).contains(&per_iter),
            "chain of 4: {per_iter} cycles/iter"
        );
    }

    #[test]
    fn imul_chain_latency() {
        let block = "imul rax, rbx";
        let a = time(block, 100).cycles as f64;
        let b = time(block, 200).cycles as f64;
        let per_iter = (b - a) / 100.0;
        assert!(
            (2.5..=3.5).contains(&per_iter),
            "imul latency 3: {per_iter}"
        );
    }

    #[test]
    fn zero_idiom_breaks_chains() {
        // xor rax,rax between dependent adds removes the cross-iteration
        // dependency.
        let chained = "add rax, 1\nadd rax, 1\nadd rax, 1\nadd rax, 1";
        let broken = "xor eax, eax\nadd rax, 1\nadd rax, 1\nadd rax, 1";
        let t_chained = time(chained, 200).cycles;
        let t_broken = time(broken, 200).cycles;
        assert!(
            t_broken < t_chained,
            "zero idiom should help: {t_broken} !< {t_chained}"
        );
    }

    #[test]
    fn large_block_overflows_l1i() {
        // ~200 8-byte instructions = 1.6 KiB per copy. At unroll 100 the
        // footprint (160 KiB) blows the 32 KiB L1I.
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("add rax, {}\n", 0x100 + i));
        }
        let small = time(&text, 4);
        assert_eq!(small.l1i_misses, 0, "4 copies fit after warm-up");
        let big = time(&text, 100);
        assert!(big.l1i_misses > 0, "100 copies must miss in the L1I");
    }

    #[test]
    fn cold_caches_miss_then_warm_hit() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let fx = InstEffects {
            load: Some(crate::exec::MemAccess {
                vaddr: 0x9000,
                paddr: 0x3000,
                width: 8,
                write: false,
            }),
            ..InstEffects::default()
        };
        let trace = vec![DynInst {
            static_idx: 0,
            copy: 0,
            effects: fx,
        }];
        let cold = model.run(&trace, &layout, &mut l1i, &mut l1d);
        assert_eq!(cold.l1d_read_misses, 1);
        let warm = model.run(&trace, &layout, &mut l1i, &mut l1d);
        assert_eq!(warm.l1d_read_misses, 0);
        assert!(warm.cycles < cold.cycles);
    }

    #[test]
    fn misaligned_access_counted_and_slow() {
        let block = parse_block("mov rax, qword ptr [rbx]").unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let mk = |vaddr: u64| {
            let fx = InstEffects {
                load: Some(crate::exec::MemAccess {
                    vaddr,
                    paddr: vaddr % 4096,
                    width: 8,
                    write: false,
                }),
                ..InstEffects::default()
            };
            vec![DynInst {
                static_idx: 0,
                copy: 0,
                effects: fx,
            }]
        };
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let aligned = model.run(&mk(0x9000), &layout, &mut l1i, &mut l1d);
        assert_eq!(aligned.misaligned, 0);
        let split = model.run(&mk(0x903C), &layout, &mut l1i, &mut l1d);
        assert_eq!(split.misaligned, 1);
    }

    #[test]
    fn subnormal_multiplies_latency() {
        let block = parse_block("mulps xmm0, xmm1").unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let fast_fx = InstEffects::default();
        let slow_fx = InstEffects {
            subnormal: true,
            ..InstEffects::default()
        };
        let mk = |fx: InstEffects| {
            (0..50)
                .map(|c| DynInst {
                    static_idx: 0,
                    copy: c,
                    effects: fx,
                })
                .collect::<Vec<_>>()
        };
        let mut l1i = Cache::new(uarch.l1i);
        let mut l1d = Cache::new(uarch.l1d);
        let fast = model.run(&mk(fast_fx), &layout, &mut l1i, &mut l1d);
        let slow = model.run(&mk(slow_fx), &layout, &mut l1i, &mut l1d);
        assert!(
            slow.cycles > fast.cycles * 5,
            "subnormals must be drastically slower: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn macro_fusion_saves_a_slot() {
        let uarch = Uarch::haswell();
        let fused_block = parse_block("cmp rax, rbx\nje -0x10").unwrap();
        let model = TimingModel::new(fused_block.insts(), uarch);
        assert!(model.fused_into_prev[1]);
    }

    #[test]
    fn div_latency_fast_path() {
        // 64-bit divide with rdx=0 is far faster than with rdx!=0.
        let fast = div_latency(UarchKind::Haswell, 8, 10, true);
        let slow = div_latency(UarchKind::Haswell, 8, 10, false);
        assert!(slow > 2 * fast);
        // 32-bit div with tiny quotient is ~20-22 cycles on Haswell
        // (the paper's case study measures 21.62).
        let d32 = div_latency(UarchKind::Haswell, 4, 4, true);
        assert!((20..=24).contains(&d32));
    }

    #[test]
    fn chunk_table_tracks_latest_store() {
        let mut t = ChunkTable::default();
        t.reset();
        assert_eq!(t.get(3), None);
        t.insert(3, 7);
        t.insert(3, 9);
        assert_eq!(t.get(3), Some(9));
        // Force several growths and verify everything survives rehash.
        for i in 0..500u64 {
            t.insert(i * 0x1_0001, i as u32);
        }
        for i in 0..500u64 {
            assert_eq!(t.get(i * 0x1_0001), Some(i as u32));
        }
        t.reset();
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn from_spans_matches_from_block() {
        let block = parse_block("add rax, 1\nmov rbx, qword ptr [rcx]\nxor edx, edx").unwrap();
        let reference = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let layout = CodeLayout::from_spans(reference.inst_spans.clone(), 0x40_0000);
        assert_eq!(layout.block_len, reference.block_len);
        assert_eq!(layout.inst_spans, reference.inst_spans);
        assert_eq!(layout.base, reference.base);
    }

    #[test]
    fn prepared_path_matches_reference() {
        // Mixed block: zero idiom, eliminated move, flags, load + store
        // with forwarding, macro-fusable pair.
        let text = "xor eax, eax\n\
                    mov rbx, rcx\n\
                    add rax, rbx\n\
                    mov qword ptr [rsi], rax\n\
                    mov rdx, qword ptr [rsi]\n\
                    cmp rdx, rax\n\
                    je -0x10";
        let block = parse_block(text).unwrap();
        for uarch in [Uarch::ivy_bridge(), Uarch::haswell(), Uarch::skylake()] {
            let model = TimingModel::new(block.insts(), uarch);
            let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
            let mut trace = Vec::new();
            for copy in 0..40u32 {
                for (idx, _) in block.insts().iter().enumerate() {
                    let mut fx = InstEffects::default();
                    if idx == 3 {
                        fx.store = Some(crate::exec::MemAccess {
                            vaddr: 0x9000 + u64::from(copy) * 8,
                            paddr: 0x1000 + u64::from(copy) * 8 % 4096,
                            width: 8,
                            write: true,
                        });
                    }
                    if idx == 4 {
                        fx.load = Some(crate::exec::MemAccess {
                            vaddr: 0x9000 + u64::from(copy) * 8,
                            paddr: 0x1000 + u64::from(copy) * 8 % 4096,
                            width: 8,
                            write: false,
                        });
                    }
                    trace.push(DynInst {
                        static_idx: idx,
                        copy,
                        effects: fx,
                    });
                }
            }
            let mut l1i_a = Cache::new(uarch.l1i);
            let mut l1d_a = Cache::new(uarch.l1d);
            let mut l1i_b = Cache::new(uarch.l1i);
            let mut l1d_b = Cache::new(uarch.l1d);
            let prep = model.prepare(&trace, &layout);
            let mut scratch = SimScratch::default();
            // Cold then warm: cache state carried identically on both
            // sides.
            for _ in 0..2 {
                let split =
                    model.simulate_with(&prep, trace.len(), &mut l1i_a, &mut l1d_a, &mut scratch);
                let reference = model.run_reference(&trace, &layout, &mut l1i_b, &mut l1d_b);
                assert_eq!(split, reference);
            }
        }
    }

    #[test]
    fn prefix_replay_matches_prefix_preparation() {
        let text = "add rax, 1\nmov rbx, rax\nimul rbx, rcx\nxor edx, edx";
        let block = parse_block(text).unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();
        let full = trace_for(block.len(), 16);
        let prep = model.prepare(&full, &layout);
        let mut scratch = SimScratch::default();
        for copies in [0u32, 1, 4, 16] {
            let n = block.len() * copies as usize;
            let mut l1i_a = Cache::new(uarch.l1i);
            let mut l1d_a = Cache::new(uarch.l1d);
            let mut l1i_b = Cache::new(uarch.l1i);
            let mut l1d_b = Cache::new(uarch.l1d);
            let split = model.simulate_with(&prep, n, &mut l1i_a, &mut l1d_a, &mut scratch);
            let reference = model.run_reference(&full[..n], &layout, &mut l1i_b, &mut l1d_b);
            assert_eq!(split, reference, "prefix of {copies} copies");
        }
    }
}
