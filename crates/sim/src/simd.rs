//! Runtime-dispatched SIMD kernels for the timing model's cycle loop.
//!
//! The simulate hot path needs two data-parallel primitives:
//!
//! * [`ready_mask`] — for every entry of a contiguous cycle array, test
//!   whether its cycle has been reached (`cycles[i] <= cycle`) and pack
//!   the answers into a bitmask. The scheduler points it at the packed
//!   pending-wake-up calendar (keys order by cycle first, so the key
//!   compare *is* the maturity compare) to mature a whole calendar in
//!   one sweep instead of walking per-uop dependency lists.
//! * [`min_future`] — the earliest in-flight completion strictly after
//!   `cycle`, used to jump the clock over idle stretches.
//!
//! Each primitive ships in three tiers — AVX2 (4-lane tests),
//! SSE4.1 (2-lane tests), and a portable scalar reference — selected once
//! per process by [`SimdTier::active`] from CPUID feature detection
//! (`is_x86_feature_detected!`), optionally overridden by the
//! `BHIVE_SIMD` environment variable (`off`/`scalar`, `sse4.1`, `avx2`).
//! The scalar tier is the semantic reference and the only tier compiled
//! on non-x86 targets; the differential test suite pins every available
//! tier bit-for-bit against `TimingModel::run_reference`.
//!
//! All comparisons are *signed* 64-bit on purpose: the sentinels
//! ([`READY_NEVER`] = `i64::MAX` for "dependencies unresolved",
//! `u64::MAX` for "uop not issued") must sort as never-ready/ignored,
//! and real cycle values are bounded far below `i64::MAX` by the
//! convergence budget, so signed order equals the intended order.

use std::sync::OnceLock;

/// Ready-cycle sentinel for a uop whose dependencies have not all
/// resolved yet. `i64::MAX` (not `u64::MAX`) so the SIMD signed
/// comparisons treat it as "later than any real cycle".
pub(crate) const READY_NEVER: u64 = i64::MAX as u64;

/// One instruction-set tier of the simulate kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// 4-lane kernels using AVX2 loads and 64-bit vector compares.
    Avx2,
    /// 2-lane kernels using SSE4.1 blends and SSE2 64-bit arithmetic.
    Sse41,
    /// Portable scalar reference; the only tier on non-x86 hosts.
    Scalar,
}

impl SimdTier {
    /// Stable lowercase name (obs counters, bench JSON, logs).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Avx2 => "avx2",
            SimdTier::Sse41 => "sse4.1",
            SimdTier::Scalar => "scalar",
        }
    }

    /// The best tier the host CPU supports, ignoring any override.
    pub fn detect() -> SimdTier {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return SimdTier::Sse41;
            }
        }
        SimdTier::Scalar
    }

    /// Every tier the host can run, best first, always ending in
    /// [`SimdTier::Scalar`]. Differential tests iterate this list so a
    /// run on any machine exercises exactly the tiers it can verify.
    pub fn available() -> &'static [SimdTier] {
        match SimdTier::detect() {
            SimdTier::Avx2 => &[SimdTier::Avx2, SimdTier::Sse41, SimdTier::Scalar],
            SimdTier::Sse41 => &[SimdTier::Sse41, SimdTier::Scalar],
            SimdTier::Scalar => &[SimdTier::Scalar],
        }
    }

    /// The tier the simulate hot path dispatches to: CPUID detection
    /// capped by the `BHIVE_SIMD` environment variable, resolved once
    /// per process.
    pub fn active() -> SimdTier {
        static ACTIVE: OnceLock<SimdTier> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let detected = SimdTier::detect();
            match std::env::var("BHIVE_SIMD") {
                Ok(value) => parse_override(&value, detected),
                Err(_) => detected,
            }
        })
    }
}

/// Resolves a `BHIVE_SIMD` override against the detected tier. Requests
/// for a tier the host lacks fall back to the detected one (you can
/// disable SIMD anywhere, but you cannot conjure it); unknown values are
/// ignored.
fn parse_override(value: &str, detected: SimdTier) -> SimdTier {
    match value.to_ascii_lowercase().as_str() {
        "off" | "scalar" | "0" | "none" => SimdTier::Scalar,
        "sse4.1" | "sse41" => match detected {
            SimdTier::Scalar => SimdTier::Scalar,
            _ => SimdTier::Sse41,
        },
        "avx2" => detected, // only honored when AVX2 is what was detected
        _ => detected,
    }
}

/// Minimum pending-calendar population before the batched readiness
/// kernel beats an inline scalar compare per entry. Below this the
/// per-drain dispatch + mask setup costs more than it saves; the two
/// strategies are bit-identical either way (see the exactness note at
/// the call site in `timing.rs`).
pub(crate) const READY_BATCH_MIN: usize = 32;

/// Packs `cycles[i] <= cycle` (signed comparison, so the `i64::MAX`
/// not-resolvable sentinel never matures) into bit `i` of `out`
/// (little-endian within each `u64` word). `out` must hold at least
/// `cycles.len().div_ceil(64)` zeroed words.
pub(crate) fn ready_mask(tier: SimdTier, cycles: &[u64], cycle: u64, out: &mut [u64]) {
    debug_assert!(out.len() >= cycles.len().div_ceil(64));
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2`/`Sse41` are only reachable through
        // `SimdTier::detect`, which verified the features via CPUID.
        SimdTier::Avx2 => unsafe { ready_mask_avx2(cycles, cycle, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { ready_mask_sse41(cycles, cycle, out) },
        _ => ready_mask_scalar(cycles, cycle, out),
    }
}

/// The earliest value in `completion` that is strictly after `cycle`
/// under *signed* comparison, or `u64::MAX` when there is none. Entries
/// of `u64::MAX` (signed −1: uop not issued) and entries `<= cycle`
/// (already complete) are both ignored, which is exactly the set of
/// in-flight completion events the cycle-skip needs.
pub(crate) fn min_future(tier: SimdTier, completion: &[u64], cycle: u64) -> u64 {
    let raw = match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier implies CPUID-verified feature support (see above).
        SimdTier::Avx2 => unsafe { min_future_avx2(completion, cycle) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { min_future_sse41(completion, cycle) },
        _ => min_future_scalar(completion, cycle),
    };
    if raw == i64::MAX as u64 {
        u64::MAX
    } else {
        raw
    }
}

// ---- Scalar reference tier ----

fn ready_mask_scalar(cycles: &[u64], cycle: u64, out: &mut [u64]) {
    for (i, &r) in cycles.iter().enumerate() {
        let bit = u64::from(r as i64 <= cycle as i64);
        out[i >> 6] |= bit << (i & 63);
    }
}

fn min_future_scalar(completion: &[u64], cycle: u64) -> u64 {
    let mut min = i64::MAX;
    for &v in completion {
        let v = v as i64;
        if v > cycle as i64 && v < min {
            min = v;
        }
    }
    min as u64
}

// ---- SSE4.1 tier: 2 lanes per step ----

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn ready_mask_sse41(cycles: &[u64], cycle: u64, out: &mut [u64]) {
    use std::arch::x86_64::*;
    // ready <= cycle  ⟺  ready − (cycle+1) < 0 in signed 64-bit: real
    // ready cycles and `cycle` are bounded by the convergence budget
    // (≪ 2^62) and the READY_NEVER sentinel is i64::MAX, so the
    // subtraction never wraps and the sign bit is the answer.
    let threshold = _mm_set1_epi64x(cycle as i64 + 1);
    let mut i = 0usize;
    while i + 2 <= cycles.len() {
        let v = _mm_loadu_si128(cycles.as_ptr().add(i).cast());
        let signs = _mm_castsi128_pd(_mm_sub_epi64(v, threshold));
        let bits = _mm_movemask_pd(signs) as u64; // lane sign bits
        out[i >> 6] |= bits << (i & 63);
        i += 2;
    }
    if i < cycles.len() {
        let bit = u64::from(cycles[i] as i64 <= cycle as i64);
        out[i >> 6] |= bit << (i & 63);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn min_future_sse41(completion: &[u64], cycle: u64) -> u64 {
    use std::arch::x86_64::*;
    let threshold = _mm_set1_epi64x(cycle as i64 + 1);
    let never = _mm_set1_epi64x(i64::MAX);
    let mut acc = never;
    let mut chunks = completion.chunks_exact(2);
    for pair in &mut chunks {
        let v = _mm_set_epi64x(pair[1] as i64, pair[0] as i64);
        // Keep lanes with v > cycle (sign of v − (cycle+1) clear), i.e.
        // future events; replace the rest with the identity i64::MAX.
        let past = _mm_sub_epi64(v, threshold); // sign set ⇒ v <= cycle
                                                // blendv_epi8 selects per byte from the mask's high bits; the
                                                // mask must therefore be a full-width sign splat, which
                                                // shuffling the odd (sign-carrying) dwords provides.
        let sign_splat = _mm_shuffle_epi32::<0b11_11_01_01>(_mm_srai_epi32::<31>(past));
        let keep = _mm_blendv_epi8(v, never, sign_splat);
        // acc = min(acc, keep), again via the sign of a safe subtraction.
        let diff = _mm_sub_epi64(keep, acc); // sign set ⇒ keep < acc
        let lt = _mm_shuffle_epi32::<0b11_11_01_01>(_mm_srai_epi32::<31>(diff));
        acc = _mm_blendv_epi8(acc, keep, lt);
    }
    let mut out = [0i64; 2];
    _mm_storeu_si128(out.as_mut_ptr().cast(), acc);
    let mut min = out[0].min(out[1]);
    for &v in chunks.remainder() {
        let v = v as i64;
        if v > cycle as i64 && v < min {
            min = v;
        }
    }
    min as u64
}

// ---- AVX2 tier: 4 lanes per step ----

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ready_mask_avx2(cycles: &[u64], cycle: u64, out: &mut [u64]) {
    use std::arch::x86_64::*;
    let cycle_v = _mm256_set1_epi64x(cycle as i64);
    let mut i = 0usize;
    while i + 4 <= cycles.len() {
        let v = _mm256_loadu_si256(cycles.as_ptr().add(i).cast());
        // Lane sign set ⇒ ready > cycle ⇒ NOT matured; invert the bits.
        let late = _mm256_cmpgt_epi64(v, cycle_v);
        let bits = (!_mm256_movemask_pd(_mm256_castsi256_pd(late)) as u64) & 0xF;
        out[i >> 6] |= bits << (i & 63);
        i += 4;
    }
    while i < cycles.len() {
        let bit = u64::from(cycles[i] as i64 <= cycle as i64);
        out[i >> 6] |= bit << (i & 63);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_future_avx2(completion: &[u64], cycle: u64) -> u64 {
    use std::arch::x86_64::*;
    let cycle_v = _mm256_set1_epi64x(cycle as i64);
    let never = _mm256_set1_epi64x(i64::MAX);
    let mut acc = never;
    let mut chunks = completion.chunks_exact(4);
    for quad in &mut chunks {
        let v = _mm256_loadu_si256(quad.as_ptr().cast());
        let future = _mm256_cmpgt_epi64(v, cycle_v);
        let keep = _mm256_blendv_epi8(never, v, future);
        let lt = _mm256_cmpgt_epi64(acc, keep);
        acc = _mm256_blendv_epi8(acc, keep, lt);
    }
    let mut out = [0i64; 4];
    _mm256_storeu_si256(out.as_mut_ptr().cast(), acc);
    let mut min = out.iter().copied().min().unwrap_or(i64::MAX);
    for &v in chunks.remainder() {
        let v = v as i64;
        if v > cycle as i64 && v < min {
            min = v;
        }
    }
    min as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers() -> &'static [SimdTier] {
        SimdTier::available()
    }

    #[test]
    fn override_parsing() {
        for off in ["off", "OFF", "scalar", "0", "none"] {
            assert_eq!(parse_override(off, SimdTier::Avx2), SimdTier::Scalar);
        }
        assert_eq!(parse_override("sse4.1", SimdTier::Avx2), SimdTier::Sse41);
        assert_eq!(parse_override("sse41", SimdTier::Avx2), SimdTier::Sse41);
        // Cannot request a tier the host lacks.
        assert_eq!(parse_override("sse4.1", SimdTier::Scalar), SimdTier::Scalar);
        assert_eq!(parse_override("avx2", SimdTier::Sse41), SimdTier::Sse41);
        // Unknown values fall back to detection.
        assert_eq!(parse_override("banana", SimdTier::Sse41), SimdTier::Sse41);
        assert_eq!(parse_override("", SimdTier::Avx2), SimdTier::Avx2);
    }

    #[test]
    fn available_always_ends_scalar() {
        let tiers = SimdTier::available();
        assert_eq!(tiers.last(), Some(&SimdTier::Scalar));
        assert!(tiers.contains(&SimdTier::detect()));
    }

    #[test]
    fn ready_mask_tiers_agree_with_scalar() {
        // Deterministic pseudo-random ready table with both sentinels and
        // values straddling the probe cycle.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let ready_at: Vec<u64> = (0..257)
            .map(|_| match next() % 4 {
                0 => READY_NEVER,
                1 => next() % 50,
                2 => 100 + next() % 50,
                _ => 75,
            })
            .collect();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 130, 257] {
            let cycles: Vec<u64> = ready_at[..len].to_vec();
            for cycle in [0u64, 42, 75, 149, 10_000] {
                let words = len.div_ceil(64).max(1);
                let mut reference = vec![0u64; words];
                ready_mask_scalar(&cycles, cycle, &mut reference);
                for &tier in tiers() {
                    let mut got = vec![0u64; words];
                    ready_mask(tier, &cycles, cycle, &mut got);
                    assert_eq!(got, reference, "tier {:?} len {len} cycle {cycle}", tier);
                }
            }
        }
    }

    #[test]
    fn min_future_tiers_agree_with_scalar() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![u64::MAX],
            vec![5],
            vec![5, 6, 7, 8, 9],
            vec![u64::MAX, 3, u64::MAX, 900, 12, 13, 14],
            (0..133)
                .map(|i| if i % 5 == 0 { u64::MAX } else { i * 7 })
                .collect(),
        ];
        for values in &cases {
            for cycle in [0u64, 4, 11, 12, 13, 1_000_000] {
                let reference = min_future(SimdTier::Scalar, values, cycle);
                for &tier in tiers() {
                    assert_eq!(
                        min_future(tier, values, cycle),
                        reference,
                        "tier {:?} cycle {cycle} values {values:?}",
                        tier
                    );
                }
            }
        }
    }
}

// TEMP instrumentation
