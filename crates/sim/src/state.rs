//! Architectural CPU state: registers, flags, MXCSR.

use bhive_asm::{Gpr, OpSize, VecReg, VecWidth};
use serde::{Deserialize, Serialize};

/// The RFLAGS bits the modeled instructions read and write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Carry flag.
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Parity flag.
    pub pf: bool,
}

/// The MXCSR bits controlling gradual underflow.
///
/// The paper's measurement framework sets both FTZ and DAZ so that
/// subnormal operands cannot slow floating-point arithmetic down
/// (§ "Handling Subnormal Numbers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mxcsr {
    /// Flush-to-zero: subnormal results are replaced with zero.
    pub ftz: bool,
    /// Denormals-are-zero: subnormal inputs are treated as zero.
    pub daz: bool,
}

/// Full architectural state of the simulated core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CpuState {
    gprs: [u64; 16],
    vregs: [[u8; 32]; 16],
    /// Status flags.
    pub flags: Flags,
    /// SSE control register.
    pub mxcsr: Mxcsr,
}

impl CpuState {
    /// A zeroed state.
    pub fn new() -> CpuState {
        CpuState::default()
    }

    /// Reads a GPR at a width (zero-extended into the return value).
    pub fn gpr(&self, reg: Gpr, size: OpSize) -> u64 {
        self.gprs[reg.number() as usize] & size.mask()
    }

    /// Reads the full 64-bit register.
    pub fn gpr64(&self, reg: Gpr) -> u64 {
        self.gprs[reg.number() as usize]
    }

    /// Writes a GPR at a width with x86 semantics: 32-bit writes zero the
    /// upper half; 8/16-bit writes merge into the old value.
    pub fn set_gpr(&mut self, reg: Gpr, size: OpSize, value: u64) {
        let slot = &mut self.gprs[reg.number() as usize];
        *slot = match size {
            OpSize::Q => value,
            OpSize::D => value & 0xFFFF_FFFF,
            OpSize::W => (*slot & !0xFFFF) | (value & 0xFFFF),
            OpSize::B => (*slot & !0xFF) | (value & 0xFF),
        };
    }

    /// Reads the bytes of a vector register at its reference width.
    pub fn vec(&self, reg: VecReg) -> &[u8] {
        &self.vregs[reg.number() as usize][..reg.width().bytes() as usize]
    }

    /// Reads the full 32-byte backing of a vector register.
    pub fn vec_raw(&self, index: u8) -> &[u8; 32] {
        &self.vregs[index as usize]
    }

    /// Writes a vector register. A 128-bit VEX write zeroes the upper lanes;
    /// a legacy SSE write leaves them untouched.
    pub fn set_vec(&mut self, reg: VecReg, bytes: &[u8], zero_upper: bool) {
        let width = reg.width().bytes() as usize;
        assert_eq!(bytes.len(), width, "vector width mismatch");
        let slot = &mut self.vregs[reg.number() as usize];
        slot[..width].copy_from_slice(bytes);
        if zero_upper || reg.width() == VecWidth::Ymm {
            for b in &mut slot[width.min(32)..] {
                *b = 0;
            }
        }
    }

    /// Resets every register to a fill pattern (the paper initializes all
    /// general-purpose registers and memory to a "moderately sized"
    /// constant, `0x12345600`) and clears flags. MXCSR is preserved.
    pub fn reset_with_fill(&mut self, fill: u64) {
        self.gprs = [fill; 16];
        let fill_bytes = (fill as u32).to_le_bytes();
        // Build the 32-byte lane pattern once and splat it per register.
        let mut pattern = [0u8; 32];
        for chunk in pattern.chunks_exact_mut(4) {
            chunk.copy_from_slice(&fill_bytes);
        }
        self.vregs = [pattern; 16];
        self.flags = Flags::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_writes_follow_x86_rules() {
        let mut s = CpuState::new();
        s.set_gpr(Gpr::Rax, OpSize::Q, 0xDEAD_BEEF_CAFE_F00D);
        // 32-bit write zero-extends.
        s.set_gpr(Gpr::Rax, OpSize::D, 0x1234_5678);
        assert_eq!(s.gpr64(Gpr::Rax), 0x1234_5678);
        // 8-bit write merges.
        s.set_gpr(Gpr::Rax, OpSize::B, 0xFF);
        assert_eq!(s.gpr64(Gpr::Rax), 0x1234_56FF);
        // 16-bit write merges.
        s.set_gpr(Gpr::Rax, OpSize::W, 0xAAAA);
        assert_eq!(s.gpr64(Gpr::Rax), 0x1234_AAAA);
    }

    #[test]
    fn vector_write_semantics() {
        let mut s = CpuState::new();
        let ones = [0xFFu8; 32];
        s.set_vec(VecReg::ymm(0), &ones, false);
        // Legacy SSE write to the low lanes keeps the upper half.
        let lows = [0x11u8; 16];
        s.set_vec(VecReg::xmm(0), &lows, false);
        assert_eq!(s.vec_raw(0)[0], 0x11);
        assert_eq!(s.vec_raw(0)[16], 0xFF);
        // VEX 128-bit write zeroes the upper half.
        s.set_vec(VecReg::xmm(0), &lows, true);
        assert_eq!(s.vec_raw(0)[16], 0);
    }

    #[test]
    fn fill_pattern() {
        let mut s = CpuState::new();
        s.mxcsr.ftz = true;
        s.flags.zf = true;
        s.reset_with_fill(0x1234_5600);
        assert_eq!(s.gpr64(Gpr::R13), 0x1234_5600);
        assert!(!s.flags.zf);
        assert!(s.mxcsr.ftz, "MXCSR survives re-initialization");
        assert_eq!(&s.vec_raw(3)[..4], &0x1234_5600u32.to_le_bytes());
    }
}
