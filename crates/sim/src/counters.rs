//! Hardware performance counters exposed by the simulated machine.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The counters the paper's measurement framework reads: the core-cycle
/// counter plus the statistics used to *reject* polluted measurements
/// (§ "Enforcing Modeling Invariants" and the misaligned-access filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Core clock cycles (invariant to frequency scaling, unlike the TSC).
    pub core_cycles: u64,
    /// Instructions retired.
    pub instructions_retired: u64,
    /// Unfused-domain micro-ops executed.
    pub uops_executed: u64,
    /// L1 data-cache read misses.
    pub l1d_read_misses: u64,
    /// L1 data-cache write misses.
    pub l1d_write_misses: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// Context switches observed during the measurement window.
    pub context_switches: u64,
    /// Loads/stores crossing a cache-line boundary
    /// (`MISALIGNED_MEM_REFERENCE`).
    pub misaligned_mem_refs: u64,
    /// FP operations that saw a subnormal input or produced a subnormal
    /// result while gradual underflow was enabled.
    pub subnormal_events: u64,
}

impl PerfCounters {
    /// A zeroed counter block.
    pub fn new() -> PerfCounters {
        PerfCounters::default()
    }

    /// True when the measurement satisfies every modeling invariant the
    /// paper enforces: no cache misses of any kind and no context switches.
    pub fn is_clean(&self) -> bool {
        self.l1d_read_misses == 0
            && self.l1d_write_misses == 0
            && self.l1i_misses == 0
            && self.context_switches == 0
    }

    /// The counters as `(name, value)` pairs in declaration order —
    /// the stable inventory observability layers fold into named
    /// metrics without hard-coding the field list.
    pub fn snapshot(&self) -> [(&'static str, u64); 9] {
        [
            ("core_cycles", self.core_cycles),
            ("instructions_retired", self.instructions_retired),
            ("uops_executed", self.uops_executed),
            ("l1d_read_misses", self.l1d_read_misses),
            ("l1d_write_misses", self.l1d_write_misses),
            ("l1i_misses", self.l1i_misses),
            ("context_switches", self.context_switches),
            ("misaligned_mem_refs", self.misaligned_mem_refs),
            ("subnormal_events", self.subnormal_events),
        ]
    }

    /// Difference of two counter snapshots (`end - begin`).
    pub fn delta(end: &PerfCounters, begin: &PerfCounters) -> PerfCounters {
        PerfCounters {
            core_cycles: end.core_cycles - begin.core_cycles,
            instructions_retired: end.instructions_retired - begin.instructions_retired,
            uops_executed: end.uops_executed - begin.uops_executed,
            l1d_read_misses: end.l1d_read_misses - begin.l1d_read_misses,
            l1d_write_misses: end.l1d_write_misses - begin.l1d_write_misses,
            l1i_misses: end.l1i_misses - begin.l1i_misses,
            context_switches: end.context_switches - begin.context_switches,
            misaligned_mem_refs: end.misaligned_mem_refs - begin.misaligned_mem_refs,
            subnormal_events: end.subnormal_events - begin.subnormal_events,
        }
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;

    fn add(mut self, rhs: PerfCounters) -> PerfCounters {
        self += rhs;
        self
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        self.core_cycles += rhs.core_cycles;
        self.instructions_retired += rhs.instructions_retired;
        self.uops_executed += rhs.uops_executed;
        self.l1d_read_misses += rhs.l1d_read_misses;
        self.l1d_write_misses += rhs.l1d_write_misses;
        self.l1i_misses += rhs.l1i_misses;
        self.context_switches += rhs.context_switches;
        self.misaligned_mem_refs += rhs.misaligned_mem_refs;
        self.subnormal_events += rhs.subnormal_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_predicate() {
        let mut c = PerfCounters::new();
        assert!(c.is_clean());
        c.core_cycles = 100;
        c.misaligned_mem_refs = 1; // not part of the clean predicate
        assert!(c.is_clean());
        c.l1i_misses = 1;
        assert!(!c.is_clean());
    }

    #[test]
    fn snapshot_covers_every_field_once() {
        let c = PerfCounters {
            core_cycles: 1,
            instructions_retired: 2,
            uops_executed: 3,
            l1d_read_misses: 4,
            l1d_write_misses: 5,
            l1i_misses: 6,
            context_switches: 7,
            misaligned_mem_refs: 8,
            subnormal_events: 9,
        };
        let snap = c.snapshot();
        let names: std::collections::BTreeSet<_> = snap.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), snap.len(), "names are unique");
        // Sum 1..=9 proves every field value appears exactly once.
        assert_eq!(snap.iter().map(|(_, v)| v).sum::<u64>(), 45);
        assert_eq!(snap[0], ("core_cycles", 1));
    }

    #[test]
    fn delta_and_sum() {
        let begin = PerfCounters {
            core_cycles: 100,
            l1d_read_misses: 2,
            ..Default::default()
        };
        let end = PerfCounters {
            core_cycles: 250,
            l1d_read_misses: 2,
            ..Default::default()
        };
        let d = PerfCounters::delta(&end, &begin);
        assert_eq!(d.core_cycles, 150);
        assert_eq!(d.l1d_read_misses, 0);
        let sum = d + d;
        assert_eq!(sum.core_cycles, 300);
    }
}
