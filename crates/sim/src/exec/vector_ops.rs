//! SSE/AVX kernels over the predecoded IR.
//!
//! Each arm transliterates the corresponding [`super::vector`] match arm,
//! reusing the reference DAZ/FTZ and lane helpers; operand shapes, lane
//! widths, VEX-ness, and shuffle/shift immediates were resolved once at
//! lower time.

use super::ops::{BitwiseSel, ExecOp, PackedCmpSel, PackedMulSel, PackedSel, PackedShiftSel, VOp};
use super::scalar_ops::{read_sop, write_sop};
use super::vector::{
    daz32, daz64, ftz32, ftz64, get_f32, get_f64, get_u16, get_u32, get_u64, set_f32, set_f64,
    set_u16, set_u32, set_u64, VBytes,
};
use super::{ExecFault, InstEffects, MemAccess};
use crate::mem::Memory;
use crate::state::CpuState;
use bhive_asm::VecWidth;

struct VCtx<'a> {
    state: &'a mut CpuState,
    mem: &'a mut Memory,
    fx: &'a mut InstEffects,
}

impl VCtx<'_> {
    /// Reads a pre-resolved vector operand into a padded 32-byte buffer.
    /// Mirrors the reference `Ctx::read`: vector registers contribute
    /// their own width, memory reads use the *argument* width (and record
    /// it in `fx`), GPRs fill the low 8 bytes.
    #[inline(always)]
    fn read(&mut self, op: VOp, width: u8, aligned: bool) -> Result<VBytes, ExecFault> {
        let mut out = [0u8; 32];
        match op {
            VOp::Vec(v) => {
                let w = v.width().bytes() as usize;
                out[..w].copy_from_slice(&self.state.vec_raw(v.number())[..w]);
            }
            VOp::Mem(ea) => {
                let vaddr = ea.resolve(self.state);
                if aligned && !vaddr.is_multiple_of(u64::from(width)) {
                    return Err(ExecFault::GeneralProtection { vaddr });
                }
                let paddr = self.mem.read_paddr(vaddr, &mut out[..width as usize])?;
                self.fx.load = Some(MemAccess {
                    vaddr,
                    paddr,
                    width,
                    write: false,
                });
            }
            VOp::Gpr(reg, size) => {
                let v = self.state.gpr(reg, size);
                out[..8].copy_from_slice(&v.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Writes a result to a vector register or memory destination.
    /// Mirrors the reference `Ctx::write`.
    #[inline(always)]
    fn write(
        &mut self,
        op: VOp,
        bytes: &VBytes,
        width: u8,
        vex: bool,
        aligned: bool,
    ) -> Result<(), ExecFault> {
        match op {
            VOp::Vec(v) => {
                let w = v.width().bytes() as usize;
                self.state.set_vec(v, &bytes[..w], vex);
                Ok(())
            }
            VOp::Mem(ea) => {
                let vaddr = ea.resolve(self.state);
                if aligned && !vaddr.is_multiple_of(u64::from(width)) {
                    return Err(ExecFault::GeneralProtection { vaddr });
                }
                let paddr = self.mem.write_paddr(vaddr, &bytes[..width as usize])?;
                self.fx.store = Some(MemAccess {
                    vaddr,
                    paddr,
                    width,
                    write: true,
                });
                Ok(())
            }
            VOp::Gpr(..) => unreachable!("scalar destination in vector context"),
        }
    }
}

/// Expands a lane loop with its trip count dispatched to a fixed value
/// when it matches one of the real vector shapes, so LLVM fully unrolls
/// the body (and proves the per-lane buffer indexing in bounds) instead
/// of emitting a runtime-bound loop.
macro_rules! unrolled {
    ($n:expr, $lane:ident, $body:block) => {
        match $n {
            2 => for $lane in 0..2usize $body,
            4 => for $lane in 0..4usize $body,
            8 => for $lane in 0..8usize $body,
            16 => for $lane in 0..16usize $body,
            n => for $lane in 0..n $body,
        }
    };
}

/// Executes a vector op. Called only for ops the scalar kernel declined.
pub(super) fn execute(
    op: &ExecOp,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    let mxcsr = state.mxcsr;
    let mut ctx = VCtx { state, mem, fx };

    match *op {
        // ---- moves ----
        ExecOp::MovssMerge {
            dst,
            src,
            lane,
            vex,
        } => {
            // Register-register: merge the low lane.
            let src_bytes = ctx.read(VOp::Vec(src), lane, false)?;
            let mut out = [0u8; 32];
            let w = dst.width().bytes() as usize;
            out[..w].copy_from_slice(&ctx.state.vec_raw(dst.number())[..w]);
            out[..lane as usize].copy_from_slice(&src_bytes[..lane as usize]);
            ctx.write(VOp::Vec(dst), &out, lane, vex, false)?;
        }
        ExecOp::MovssLoad { dst, ea, lane } => {
            // Load: zero the rest of the register.
            let out = ctx.read(VOp::Mem(ea), lane, false)?;
            ctx.state
                .set_vec(dst.with_width(VecWidth::Xmm), &out[..16], true);
        }
        ExecOp::MovssStore { ea, src, lane, vex } => {
            let out = ctx.read(VOp::Vec(src), lane, false)?;
            ctx.write(VOp::Mem(ea), &out, lane, vex, false)?;
        }
        ExecOp::VMov {
            dst,
            src,
            width,
            vex,
            aligned,
        } => {
            let v = ctx.read(src, width, aligned)?;
            ctx.write(dst, &v, width, vex, aligned)?;
        }
        ExecOp::MovdToVec { dst, src, lane } => {
            let src = ctx.read(src, lane, false)?;
            let mut out = [0u8; 32];
            out[..lane as usize].copy_from_slice(&src[..lane as usize]);
            ctx.write(dst, &out, lane, true, false)?;
        }
        ExecOp::MovdFromVec { dst, src, lane } => {
            let value = match lane {
                4 => u64::from(get_u32(ctx.state.vec_raw(src.number()), 0)),
                _ => get_u64(ctx.state.vec_raw(src.number()), 0),
            };
            write_sop(dst, value, ctx.state, ctx.mem, ctx.fx)?;
        }
        ExecOp::Vbroadcastss { dst, src, width } => {
            let src = ctx.read(src, 4, false)?;
            let mut out = [0u8; 32];
            unrolled!((width / 4) as usize, lane, {
                out[lane * 4..lane * 4 + 4].copy_from_slice(&src[..4]);
            });
            ctx.write(dst, &out, width, true, false)?;
        }
        // ---- scalar float arithmetic ----
        ExecOp::FpScalar {
            sel,
            wide,
            dst,
            a,
            b,
            vex,
        } => {
            let lane = if wide { 8 } else { 4 };
            let a = ctx.read(a, lane, false)?;
            let b = ctx.read(b, lane, false)?;
            let mut sub = false;
            let mut out = a;
            if wide {
                let x = daz64(get_f64(&a, 0), mxcsr, &mut sub);
                let y = daz64(get_f64(&b, 0), mxcsr, &mut sub);
                let r = scalar_fp64(sel, x, y);
                set_f64(&mut out, 0, ftz64(r, mxcsr, &mut sub));
            } else {
                let x = daz32(get_f32(&a, 0), mxcsr, &mut sub);
                let y = daz32(get_f32(&b, 0), mxcsr, &mut sub);
                let r = scalar_fp32(sel, x, y);
                set_f32(&mut out, 0, ftz32(r, mxcsr, &mut sub));
            }
            ctx.fx.subnormal |= sub;
            ctx.write(dst, &out, lane, vex, false)?;
        }
        ExecOp::Ucomis { wide, a, b } => {
            let lane = if wide { 8 } else { 4 };
            let a = ctx.read(a, lane, false)?;
            let b = ctx.read(b, lane, false)?;
            let (x, y) = if wide {
                (get_f64(&a, 0), get_f64(&b, 0))
            } else {
                (f64::from(get_f32(&a, 0)), f64::from(get_f32(&b, 0)))
            };
            let flags = &mut ctx.state.flags;
            flags.of = false;
            flags.sf = false;
            if x.is_nan() || y.is_nan() {
                flags.zf = true;
                flags.pf = true;
                flags.cf = true;
            } else {
                flags.zf = x == y;
                flags.pf = false;
                flags.cf = x < y;
            }
        }
        ExecOp::CvtSi2Fp {
            wide,
            dst,
            src,
            src_width,
            vex,
        } => {
            let int = read_sop(src, ctx.state, ctx.mem, ctx.fx)?;
            let signed = match src_width {
                8 => int as i64,
                _ => i64::from(int as i32),
            };
            let out_width = if wide { 8 } else { 4 };
            let mut out = [0u8; 32];
            let w = dst.width().bytes() as usize;
            out[..w].copy_from_slice(&ctx.state.vec_raw(dst.number())[..w]);
            if wide {
                set_f64(&mut out, 0, signed as f64);
            } else {
                set_f32(&mut out, 0, signed as f32);
            }
            ctx.write(VOp::Vec(dst), &out, out_width, vex, false)?;
        }
        ExecOp::CvtFp2Si { wide, dst, src } => {
            let lane = if wide { 8 } else { 4 };
            let src = ctx.read(src, lane, false)?;
            let value = if wide {
                get_f64(&src, 0) as i64
            } else {
                get_f32(&src, 0) as i64
            };
            write_sop(dst, value as u64, ctx.state, ctx.mem, ctx.fx)?;
        }
        ExecOp::Cvtdq2ps {
            dst,
            src,
            width,
            vex,
        } => {
            let src = ctx.read(src, width, false)?;
            let mut out = [0u8; 32];
            unrolled!((width / 4) as usize, lane, {
                set_f32(&mut out, lane, get_u32(&src, lane) as i32 as f32);
            });
            ctx.write(dst, &out, width, vex, false)?;
        }
        // ---- packed float arithmetic ----
        ExecOp::FpPackedF32 {
            sel,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            let mut sub = false;
            unrolled!((width / 4) as usize, lane, {
                let x = daz32(get_f32(&a, lane), mxcsr, &mut sub);
                let y = daz32(get_f32(&b, lane), mxcsr, &mut sub);
                let r = match sel {
                    PackedSel::Add => x + y,
                    PackedSel::Sub => x - y,
                    PackedSel::Mul => x * y,
                    PackedSel::Div => x / y,
                    PackedSel::Min => {
                        if x < y {
                            x
                        } else {
                            y
                        }
                    }
                    PackedSel::Max => {
                        if x > y {
                            x
                        } else {
                            y
                        }
                    }
                    PackedSel::Sqrt => y.sqrt(),
                };
                set_f32(&mut out, lane, ftz32(r, mxcsr, &mut sub));
            });
            ctx.fx.subnormal |= sub;
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::FpPackedF64 {
            sel,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            let mut sub = false;
            unrolled!((width / 8) as usize, lane, {
                let x = daz64(get_f64(&a, lane), mxcsr, &mut sub);
                let y = daz64(get_f64(&b, lane), mxcsr, &mut sub);
                let r = match sel {
                    PackedSel::Add => x + y,
                    PackedSel::Sub => x - y,
                    PackedSel::Mul => x * y,
                    PackedSel::Div => x / y,
                    _ => unreachable!(),
                };
                set_f64(&mut out, lane, ftz64(r, mxcsr, &mut sub));
            });
            ctx.fx.subnormal |= sub;
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::Fma {
            wide,
            acc,
            a,
            b,
            width,
        } => {
            // dst = src1 * src2 + dst (the `231` operand order).
            let acc_bytes = ctx.read(acc, width, false)?;
            let a_bytes = ctx.read(a, width, false)?;
            let b_bytes = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            let mut sub = false;
            if wide {
                unrolled!((width / 8) as usize, lane, {
                    let x = daz64(get_f64(&a_bytes, lane), mxcsr, &mut sub);
                    let y = daz64(get_f64(&b_bytes, lane), mxcsr, &mut sub);
                    let c = daz64(get_f64(&acc_bytes, lane), mxcsr, &mut sub);
                    set_f64(&mut out, lane, ftz64(x.mul_add(y, c), mxcsr, &mut sub));
                });
            } else {
                unrolled!((width / 4) as usize, lane, {
                    let x = daz32(get_f32(&a_bytes, lane), mxcsr, &mut sub);
                    let y = daz32(get_f32(&b_bytes, lane), mxcsr, &mut sub);
                    let c = daz32(get_f32(&acc_bytes, lane), mxcsr, &mut sub);
                    set_f32(&mut out, lane, ftz32(x.mul_add(y, c), mxcsr, &mut sub));
                });
            }
            ctx.fx.subnormal |= sub;
            ctx.write(acc, &out, width, true, false)?;
        }
        // ---- bitwise ----
        ExecOp::VBitwise {
            sel,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            for i in 0..32 {
                out[i] = match sel {
                    BitwiseSel::Xor => a[i] ^ b[i],
                    BitwiseSel::And => a[i] & b[i],
                    BitwiseSel::Or => a[i] | b[i],
                    BitwiseSel::AndNot => !a[i] & b[i],
                };
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        // ---- packed integer arithmetic ----
        ExecOp::PackedIntAddSub {
            lane_bytes,
            add,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            let lane_bytes = lane_bytes as usize;
            unrolled!(width as usize / lane_bytes, lane, {
                match lane_bytes {
                    1 => {
                        out[lane] = if add {
                            a[lane].wrapping_add(b[lane])
                        } else {
                            a[lane].wrapping_sub(b[lane])
                        }
                    }
                    2 => {
                        let (x, y) = (get_u16(&a, lane), get_u16(&b, lane));
                        set_u16(
                            &mut out,
                            lane,
                            if add {
                                x.wrapping_add(y)
                            } else {
                                x.wrapping_sub(y)
                            },
                        );
                    }
                    4 => {
                        let (x, y) = (get_u32(&a, lane), get_u32(&b, lane));
                        set_u32(
                            &mut out,
                            lane,
                            if add {
                                x.wrapping_add(y)
                            } else {
                                x.wrapping_sub(y)
                            },
                        );
                    }
                    _ => {
                        let (x, y) = (get_u64(&a, lane), get_u64(&b, lane));
                        set_u64(
                            &mut out,
                            lane,
                            if add {
                                x.wrapping_add(y)
                            } else {
                                x.wrapping_sub(y)
                            },
                        );
                    }
                }
            });
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::PackedMul {
            sel,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            match sel {
                PackedMulSel::Mullw => {
                    unrolled!((width / 2) as usize, lane, {
                        let p = i32::from(get_u16(&a, lane) as i16)
                            * i32::from(get_u16(&b, lane) as i16);
                        set_u16(&mut out, lane, p as u16);
                    });
                }
                PackedMulSel::Mulld => {
                    unrolled!((width / 4) as usize, lane, {
                        let p = i64::from(get_u32(&a, lane) as i32)
                            * i64::from(get_u32(&b, lane) as i32);
                        set_u32(&mut out, lane, p as u32);
                    });
                }
                PackedMulSel::Muludq => {
                    unrolled!((width / 16) as usize * 2, lane, {
                        let p = u64::from(get_u32(&a, lane * 2)) * u64::from(get_u32(&b, lane * 2));
                        set_u64(&mut out, lane, p);
                    });
                }
                PackedMulSel::Maddwd => {
                    unrolled!((width / 4) as usize, lane, {
                        let p1 = i32::from(get_u16(&a, lane * 2) as i16)
                            * i32::from(get_u16(&b, lane * 2) as i16);
                        let p2 = i32::from(get_u16(&a, lane * 2 + 1) as i16)
                            * i32::from(get_u16(&b, lane * 2 + 1) as i16);
                        set_u32(&mut out, lane, p1.wrapping_add(p2) as u32);
                    });
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::PackedShift {
            sel,
            dst,
            src,
            count,
            width,
            vex,
        } => {
            let a = ctx.read(src, width, false)?;
            let mut out = [0u8; 32];
            match sel {
                PackedShiftSel::Slld | PackedShiftSel::Srld | PackedShiftSel::Srad => {
                    unrolled!((width / 4) as usize, lane, {
                        let x = get_u32(&a, lane);
                        let r = if count >= 32 {
                            if sel == PackedShiftSel::Srad {
                                ((x as i32) >> 31) as u32
                            } else {
                                0
                            }
                        } else {
                            match sel {
                                PackedShiftSel::Slld => x << count,
                                PackedShiftSel::Srld => x >> count,
                                PackedShiftSel::Srad => ((x as i32) >> count) as u32,
                                _ => unreachable!(),
                            }
                        };
                        set_u32(&mut out, lane, r);
                    });
                }
                _ => {
                    unrolled!((width / 8) as usize, lane, {
                        let x = get_u64(&a, lane);
                        let r = if count >= 64 {
                            0
                        } else if sel == PackedShiftSel::Sllq {
                            x << count
                        } else {
                            x >> count
                        };
                        set_u64(&mut out, lane, r);
                    });
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::PackedCmp {
            sel,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            match sel {
                PackedCmpSel::Eqb => {
                    unrolled!(width as usize, lane, {
                        out[lane] = if a[lane] == b[lane] { 0xFF } else { 0 };
                    });
                }
                PackedCmpSel::Eqd => {
                    unrolled!((width / 4) as usize, lane, {
                        let eq = get_u32(&a, lane) == get_u32(&b, lane);
                        set_u32(&mut out, lane, if eq { u32::MAX } else { 0 });
                    });
                }
                PackedCmpSel::Gtd => {
                    unrolled!((width / 4) as usize, lane, {
                        let gt = (get_u32(&a, lane) as i32) > (get_u32(&b, lane) as i32);
                        set_u32(&mut out, lane, if gt { u32::MAX } else { 0 });
                    });
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        // ---- shuffles ----
        ExecOp::Shufps {
            imm,
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 4;
                for (slot, src) in [(0usize, &a), (1, &a), (2, &b), (3, &b)] {
                    let sel = ((imm >> (slot * 2)) & 3) as usize;
                    set_u32(&mut out, base + slot, get_u32(src, base + sel));
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::Pshufd {
            imm,
            dst,
            src,
            width,
            vex,
        } => {
            let src = ctx.read(src, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 4;
                for slot in 0..4usize {
                    let sel = ((imm >> (slot * 2)) & 3) as usize;
                    set_u32(&mut out, base + slot, get_u32(&src, base + sel));
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::Pshufb {
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 16;
                for i in 0..16usize {
                    let sel = b[base + i];
                    out[base + i] = if sel & 0x80 != 0 {
                        0
                    } else {
                        a[base + (sel & 0xF) as usize]
                    };
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::Unpck {
            dst,
            a,
            b,
            width,
            vex,
        } => {
            let a = ctx.read(a, width, false)?;
            let b = ctx.read(b, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 4;
                set_u32(&mut out, base, get_u32(&a, base));
                set_u32(&mut out, base + 1, get_u32(&b, base));
                set_u32(&mut out, base + 2, get_u32(&a, base + 1));
                set_u32(&mut out, base + 3, get_u32(&b, base + 1));
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        ExecOp::Pmovmskb { dst, src } => {
            let bytes = ctx.state.vec_raw(src.number());
            let mut mask = 0u64;
            for (i, byte) in bytes[..src.width().bytes() as usize].iter().enumerate() {
                mask |= u64::from(byte >> 7) << i;
            }
            write_sop(dst, mask, ctx.state, ctx.mem, ctx.fx)?;
        }
        ref other => unreachable!("vector kernel got scalar op {other:?}"),
    }
    Ok(())
}

#[inline]
fn scalar_fp32(sel: super::ops::FpSel, x: f32, y: f32) -> f32 {
    use super::ops::FpSel;
    match sel {
        FpSel::Add => x + y,
        FpSel::Sub => x - y,
        FpSel::Mul => x * y,
        FpSel::Div => x / y,
        FpSel::Sqrt => y.sqrt(),
    }
}

#[inline]
fn scalar_fp64(sel: super::ops::FpSel, x: f64, y: f64) -> f64 {
    use super::ops::FpSel;
    match sel {
        FpSel::Add => x + y,
        FpSel::Sub => x - y,
        FpSel::Mul => x * y,
        FpSel::Div => x / y,
        FpSel::Sqrt => y.sqrt(),
    }
}
