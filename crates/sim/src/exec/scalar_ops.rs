//! Scalar kernels over the predecoded IR.
//!
//! Each arm transliterates the corresponding [`super::scalar`] match arm,
//! reusing the reference flag helpers so the semantics cannot drift; the
//! only difference is that operand shapes, widths, and condition codes
//! were resolved once at lower time instead of per dynamic instruction.

use super::ops::{ArithSel, BitCountSel, ExecOp, LogicSel, SOp, ShiftSel};
use super::scalar::{
    add_with_flags, logic_flags, sext, size_of, sub_with_flags, width_mask, write_mul_result,
};
use super::{ExecFault, InstEffects, MemAccess};
use crate::mem::Memory;
use crate::state::CpuState;
use bhive_asm::{Gpr, OpSize};

/// Reads a pre-resolved scalar operand. Mirrors
/// [`super::read_scalar_operand`] exactly (memory loads use the operand's
/// own width and record the access in `fx`).
#[inline]
pub(super) fn read_sop(
    op: SOp,
    state: &CpuState,
    mem: &Memory,
    fx: &mut InstEffects,
) -> Result<u64, ExecFault> {
    match op {
        SOp::Gpr(reg, size) => Ok(state.gpr(reg, size)),
        SOp::Imm(v) => Ok(v as u64),
        SOp::Mem(ea) => {
            let vaddr = ea.resolve(state);
            let (value, paddr) = mem.read_scalar_paddr(vaddr, ea.width)?;
            fx.load = Some(MemAccess {
                vaddr,
                paddr,
                width: ea.width,
                write: false,
            });
            Ok(value)
        }
    }
}

/// Writes a pre-resolved scalar destination. Mirrors
/// [`super::write_scalar_operand`].
#[inline]
pub(super) fn write_sop(
    op: SOp,
    value: u64,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    match op {
        SOp::Gpr(reg, size) => {
            state.set_gpr(reg, size, value);
            Ok(())
        }
        SOp::Mem(ea) => {
            let vaddr = ea.resolve(state);
            let paddr = mem.write_scalar_paddr(vaddr, ea.width, value)?;
            fx.store = Some(MemAccess {
                vaddr,
                paddr,
                width: ea.width,
                write: true,
            });
            Ok(())
        }
        SOp::Imm(_) => unreachable!("immediate destination"),
    }
}

/// Executes a scalar op. Returns `Ok(true)` when the op was scalar and
/// handled here, `Ok(false)` when it belongs to the vector kernel.
pub(super) fn execute(
    op: &ExecOp,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<bool, ExecFault> {
    match *op {
        ExecOp::Nop => {}
        ExecOp::Mov { dst, src } => {
            let v = read_sop(src, state, mem, fx)?;
            write_sop(dst, v, state, mem, fx)?;
        }
        ExecOp::Movsx {
            dst,
            src,
            src_width,
        } => {
            let v = read_sop(src, state, mem, fx)?;
            write_sop(dst, sext(v, src_width) as u64, state, mem, fx)?;
        }
        ExecOp::Bswap { dst, width } => {
            let v = read_sop(dst, state, mem, fx)?;
            let swapped = match width {
                4 => u64::from((v as u32).swap_bytes()),
                _ => v.swap_bytes(),
            };
            write_sop(dst, swapped, state, mem, fx)?;
        }
        ExecOp::Lea { dst, ea } => {
            let addr = ea.resolve(state);
            write_sop(dst, addr, state, mem, fx)?;
        }
        ExecOp::Push { src } => {
            let value = read_sop(src, state, mem, fx)?;
            let rsp = state.gpr64(Gpr::Rsp).wrapping_sub(8);
            state.set_gpr(Gpr::Rsp, OpSize::Q, rsp);
            let paddr = mem.write_scalar_paddr(rsp, 8, value)?;
            fx.store = Some(MemAccess {
                vaddr: rsp,
                paddr,
                width: 8,
                write: true,
            });
        }
        ExecOp::Pop { dst } => {
            let rsp = state.gpr64(Gpr::Rsp);
            let (value, paddr) = mem.read_scalar_paddr(rsp, 8)?;
            fx.load = Some(MemAccess {
                vaddr: rsp,
                paddr,
                width: 8,
                write: false,
            });
            state.set_gpr(Gpr::Rsp, OpSize::Q, rsp.wrapping_add(8));
            write_sop(dst, value, state, mem, fx)?;
        }
        ExecOp::Arith {
            sel,
            dst,
            src,
            width,
        } => {
            let a = read_sop(dst, state, mem, fx)?;
            let b = read_sop(src, state, mem, fx)?;
            let carry = state.flags.cf;
            let (result, flags) = match sel {
                ArithSel::Add => add_with_flags(a, b, false, width),
                ArithSel::Adc => add_with_flags(a, b, carry, width),
                ArithSel::Sub | ArithSel::Cmp => sub_with_flags(a, b, false, width),
                ArithSel::Sbb => sub_with_flags(a, b, carry, width),
            };
            state.flags = flags;
            if sel != ArithSel::Cmp {
                write_sop(dst, result, state, mem, fx)?;
            }
        }
        ExecOp::Logic {
            sel,
            dst,
            src,
            width,
        } => {
            let a = read_sop(dst, state, mem, fx)?;
            let b = read_sop(src, state, mem, fx)?;
            let result = match sel {
                LogicSel::And | LogicSel::Test => a & b,
                LogicSel::Or => a | b,
                LogicSel::Xor => a ^ b,
            };
            state.flags = logic_flags(result, width);
            if sel != LogicSel::Test {
                write_sop(dst, result, state, mem, fx)?;
            }
        }
        ExecOp::IncDec { inc, dst, width } => {
            let a = read_sop(dst, state, mem, fx)?;
            let cf = state.flags.cf; // inc/dec preserve CF
            let (result, mut flags) = if inc {
                add_with_flags(a, 1, false, width)
            } else {
                sub_with_flags(a, 1, false, width)
            };
            flags.cf = cf;
            state.flags = flags;
            write_sop(dst, result, state, mem, fx)?;
        }
        ExecOp::Neg { dst, width } => {
            let a = read_sop(dst, state, mem, fx)?;
            let (result, mut flags) = sub_with_flags(0, a, false, width);
            flags.cf = a & width_mask(width) != 0;
            state.flags = flags;
            write_sop(dst, result, state, mem, fx)?;
        }
        ExecOp::Not { dst } => {
            let a = read_sop(dst, state, mem, fx)?;
            write_sop(dst, !a, state, mem, fx)?;
        }
        ExecOp::Shift {
            sel,
            dst,
            count,
            width,
        } => {
            let a = read_sop(dst, state, mem, fx)?;
            let count_raw = read_sop(count, state, mem, fx)?;
            let count = (count_raw & if width == 8 { 63 } else { 31 }) as u32;
            let bits = u32::from(width) * 8;
            let mask = width_mask(width);
            let a = a & mask;
            let result = if count == 0 {
                a
            } else {
                match sel {
                    ShiftSel::Shl => a.wrapping_shl(count) & mask,
                    ShiftSel::Shr => a.wrapping_shr(count),
                    ShiftSel::Sar => (sext(a, width) >> count.min(bits - 1)) as u64 & mask,
                    ShiftSel::Rol => {
                        let c = count % bits;
                        ((a << c) | (a >> (bits - c).min(63))) & mask
                    }
                    ShiftSel::Ror => {
                        let c = count % bits;
                        ((a >> c) | (a << (bits - c).min(63))) & mask
                    }
                }
            };
            if count != 0 && matches!(sel, ShiftSel::Shl | ShiftSel::Shr | ShiftSel::Sar) {
                let cf = match sel {
                    ShiftSel::Shl => count <= bits && (a >> (bits - count)) & 1 == 1,
                    _ => count <= bits && (a >> (count - 1)) & 1 == 1,
                };
                let mut flags = logic_flags(result, width);
                flags.cf = cf;
                state.flags = flags;
            }
            write_sop(dst, result, state, mem, fx)?;
        }
        ExecOp::Imul1 { src, width } => {
            let src = sext(read_sop(src, state, mem, fx)?, width) as i128;
            let acc = sext(state.gpr(Gpr::Rax, size_of(width)), width) as i128;
            let product = acc * src;
            write_mul_result(product as u128, width, state);
            // CF/OF set when the product does not fit the low half,
            // at the operand width.
            let low = (product as u64) & width_mask(width);
            let overflow = product != i128::from(sext(low, width));
            state.flags.cf = overflow;
            state.flags.of = overflow;
        }
        ExecOp::Imul2 { dst, src, width } => {
            let a = sext(read_sop(dst, state, mem, fx)?, width);
            let b = sext(read_sop(src, state, mem, fx)?, width);
            imul_wide(dst, a, b, width, state, mem, fx)?;
        }
        ExecOp::Imul3 {
            dst,
            src1,
            src2,
            width,
        } => {
            let a = sext(read_sop(src1, state, mem, fx)?, width);
            let b = read_sop(src2, state, mem, fx)? as i64;
            imul_wide(dst, a, b, width, state, mem, fx)?;
        }
        ExecOp::Mul { src, width } => {
            let src = read_sop(src, state, mem, fx)? & width_mask(width);
            let acc = state.gpr(Gpr::Rax, size_of(width));
            let product = u128::from(acc) * u128::from(src);
            write_mul_result(product, width, state);
            let high_set = product >> (width * 8) != 0;
            state.flags.cf = high_set;
            state.flags.of = high_set;
        }
        ExecOp::Div { signed, src, width } => {
            let divisor_raw = read_sop(src, state, mem, fx)? & width_mask(width);
            if divisor_raw == 0 {
                return Err(ExecFault::DivideError);
            }
            let size = size_of(width);
            let lo = state.gpr(Gpr::Rax, size);
            let hi = state.gpr(Gpr::Rdx, size);
            fx.div_rdx_zero = hi == 0;
            let (quotient, remainder) = if !signed {
                let dividend = (u128::from(hi) << (width * 8)) | u128::from(lo);
                let q = dividend / u128::from(divisor_raw);
                if q > u128::from(width_mask(width)) {
                    return Err(ExecFault::DivideError);
                }
                (q as u64, (dividend % u128::from(divisor_raw)) as u64)
            } else {
                let dividend =
                    ((i128::from(sext(hi, width)) << (width * 8)) as u128 | u128::from(lo)) as i128;
                let divisor = i128::from(sext(divisor_raw, width));
                let q = dividend / divisor;
                let limit = i128::from(width_mask(width) >> 1);
                if q > limit || q < -limit - 1 {
                    return Err(ExecFault::DivideError);
                }
                (q as u64, (dividend % divisor) as u64)
            };
            fx.div_quotient_bits = Some(64 - quotient.leading_zeros());
            state.set_gpr(Gpr::Rax, size, quotient);
            state.set_gpr(Gpr::Rdx, size, remainder);
        }
        ExecOp::Cdq => {
            let sign = if state.gpr(Gpr::Rax, OpSize::D) >> 31 & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            state.set_gpr(Gpr::Rdx, OpSize::D, sign);
        }
        ExecOp::Cqo => {
            let sign = if state.gpr64(Gpr::Rax) >> 63 & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            state.set_gpr(Gpr::Rdx, OpSize::Q, sign);
        }
        ExecOp::BitCount {
            sel,
            dst,
            src,
            width,
        } => {
            let src = read_sop(src, state, mem, fx)? & width_mask(width);
            let bits = u32::from(width) * 8;
            let result = match sel {
                BitCountSel::Popcnt => u64::from(src.count_ones()),
                BitCountSel::Lzcnt => u64::from(src.leading_zeros().saturating_sub(64 - bits)),
                BitCountSel::Tzcnt => u64::from(src.trailing_zeros().min(bits)),
            };
            state.flags.zf = result == 0;
            // POPCNT clears CF; LZCNT/TZCNT set CF when the source is 0.
            state.flags.cf = sel != BitCountSel::Popcnt && src == 0;
            write_sop(dst, result, state, mem, fx)?;
        }
        ExecOp::SetCc { dst, cond } => {
            let f = state.flags;
            let value = u64::from(cond.eval(f.cf, f.zf, f.sf, f.of, f.pf));
            write_sop(dst, value, state, mem, fx)?;
        }
        ExecOp::CmovCc { dst, src, cond } => {
            let f = state.flags;
            let src = read_sop(src, state, mem, fx)?;
            if cond.eval(f.cf, f.zf, f.sf, f.of, f.pf) {
                write_sop(dst, src, state, mem, fx)?;
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Shared tail of the 2- and 3-operand `imul` forms.
#[inline]
fn imul_wide(
    dst: SOp,
    a: i64,
    b: i64,
    width: u8,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    let wide = i128::from(a) * i128::from(b);
    let result = (wide as u64) & width_mask(width);
    let overflow = wide != (sext(result, width) as i128);
    state.flags.cf = overflow;
    state.flags.of = overflow;
    state.flags.zf = result == 0;
    state.flags.sf = result >> (width * 8 - 1) & 1 == 1;
    write_sop(dst, result, state, mem, fx)
}
