//! The predecoded execution IR.
//!
//! [`super::lower::lower_block`] turns each [`bhive_asm::Inst`] into one
//! flat [`ExecOp`]: a compact op tag for direct dispatch, pre-resolved
//! register references, folded immediates, and a precomputed
//! effective-address recipe. The unrolled executor then iterates over the
//! lowered array without ever re-matching `Mnemonic`/`Operand` enums —
//! the per-dynamic-instruction decode work the old interpreter repeated
//! on every copy, every monitor restart, and every retry attempt is paid
//! once per block and cached in the machine's timing arena.
//!
//! The kernels that interpret these ops live in [`super::scalar_ops`] and
//! [`super::vector_ops`]; they are line-by-line transliterations of the
//! retained reference kernels ([`super::scalar`], [`super::vector`]) and
//! are pinned bit-for-bit against them by `sim/tests/exec_differential.rs`.

use super::{ExecFault, InstEffects};
use crate::mem::Memory;
use crate::state::CpuState;
use bhive_asm::{Cond, Gpr, MemRef, OpSize, VecReg};

/// Sentinel register number meaning "absent" in an [`EaRecipe`].
pub(crate) const NO_REG: u8 = 0xFF;

/// A precomputed effective-address recipe: `base + index*scale + disp`,
/// flattened from [`MemRef`]'s `Option`s into sentinel-tagged register
/// numbers so address resolution is straight-line arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EaRecipe {
    /// Base register number, or [`NO_REG`].
    pub base: u8,
    /// Index register number, or [`NO_REG`].
    pub index: u8,
    /// Index scale factor (1, 2, 4, 8); meaningless without an index.
    pub scale: u8,
    /// Access width in bytes (from the memory operand).
    pub width: u8,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl EaRecipe {
    pub(crate) fn from_mem(m: &MemRef) -> EaRecipe {
        EaRecipe {
            base: m.base.map_or(NO_REG, Gpr::number),
            index: m.index.map_or(NO_REG, |(reg, _)| reg.number()),
            scale: m.index.map_or(1, |(_, scale)| scale.factor()),
            width: m.width,
            disp: m.disp,
        }
    }

    /// Resolves the address. Identical arithmetic to
    /// [`super::effective_addr`]: wrapping adds of base, scaled index, and
    /// sign-extended displacement.
    #[inline]
    pub(crate) fn resolve(&self, state: &CpuState) -> u64 {
        let mut addr = self.disp as i64 as u64;
        if self.base != NO_REG {
            addr = addr.wrapping_add(state.gpr64(Gpr::from_number(self.base)));
        }
        if self.index != NO_REG {
            addr = addr.wrapping_add(
                state
                    .gpr64(Gpr::from_number(self.index))
                    .wrapping_mul(u64::from(self.scale)),
            );
        }
        addr
    }
}

/// A pre-resolved scalar operand (GPR, folded immediate, or memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SOp {
    Gpr(Gpr, OpSize),
    Imm(i64),
    Mem(EaRecipe),
}

/// A pre-resolved vector-context operand (vector register at its own
/// width, GPR, or memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VOp {
    Vec(VecReg),
    Gpr(Gpr, OpSize),
    Mem(EaRecipe),
}

/// Selector for the scalar add/sub family (one reference match arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArithSel {
    Add,
    Adc,
    Sub,
    Sbb,
    Cmp,
}

/// Selector for the scalar bitwise family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LogicSel {
    And,
    Or,
    Xor,
    Test,
}

/// Selector for scalar shifts and rotates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShiftSel {
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
}

/// Selector for bit-count instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BitCountSel {
    Popcnt,
    Lzcnt,
    Tzcnt,
}

/// Selector for scalar-FP arithmetic (`addss`-family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FpSel {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
}

/// Selector for packed-FP arithmetic (`addps`-family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PackedSel {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Sqrt,
}

/// Selector for vector bitwise ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BitwiseSel {
    Xor,
    And,
    Or,
    AndNot,
}

/// Selector for packed integer multiplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PackedMulSel {
    Mullw,
    Mulld,
    Muludq,
    Maddwd,
}

/// Selector for packed shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PackedShiftSel {
    Slld,
    Srld,
    Srad,
    Sllq,
    Srlq,
}

/// Selector for packed compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PackedCmpSel {
    Eqb,
    Eqd,
    Gtd,
}

/// One predecoded instruction. Each variant corresponds to one match arm
/// of the reference interpreter, with every decode decision (operand
/// shapes, widths, VEX, the SSE/scalar split) already taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ExecOp {
    // ---- scalar ----
    Nop,
    Mov {
        dst: SOp,
        src: SOp,
    },
    Movsx {
        dst: SOp,
        src: SOp,
        src_width: u8,
    },
    Bswap {
        dst: SOp,
        width: u8,
    },
    Lea {
        dst: SOp,
        ea: EaRecipe,
    },
    Push {
        src: SOp,
    },
    Pop {
        dst: SOp,
    },
    Arith {
        sel: ArithSel,
        dst: SOp,
        src: SOp,
        width: u8,
    },
    Logic {
        sel: LogicSel,
        dst: SOp,
        src: SOp,
        width: u8,
    },
    IncDec {
        inc: bool,
        dst: SOp,
        width: u8,
    },
    Neg {
        dst: SOp,
        width: u8,
    },
    Not {
        dst: SOp,
    },
    Shift {
        sel: ShiftSel,
        dst: SOp,
        count: SOp,
        width: u8,
    },
    Imul1 {
        src: SOp,
        width: u8,
    },
    Imul2 {
        dst: SOp,
        src: SOp,
        width: u8,
    },
    Imul3 {
        dst: SOp,
        src1: SOp,
        src2: SOp,
        width: u8,
    },
    Mul {
        src: SOp,
        width: u8,
    },
    Div {
        signed: bool,
        src: SOp,
        width: u8,
    },
    Cdq,
    Cqo,
    BitCount {
        sel: BitCountSel,
        dst: SOp,
        src: SOp,
        width: u8,
    },
    SetCc {
        dst: SOp,
        cond: Cond,
    },
    CmovCc {
        dst: SOp,
        src: SOp,
        cond: Cond,
    },
    // ---- vector ----
    MovssMerge {
        dst: VecReg,
        src: VecReg,
        lane: u8,
        vex: bool,
    },
    MovssLoad {
        dst: VecReg,
        ea: EaRecipe,
        lane: u8,
    },
    MovssStore {
        ea: EaRecipe,
        src: VecReg,
        lane: u8,
        vex: bool,
    },
    VMov {
        dst: VOp,
        src: VOp,
        width: u8,
        vex: bool,
        aligned: bool,
    },
    MovdToVec {
        dst: VOp,
        src: VOp,
        lane: u8,
    },
    MovdFromVec {
        dst: SOp,
        src: VecReg,
        lane: u8,
    },
    Vbroadcastss {
        dst: VOp,
        src: VOp,
        width: u8,
    },
    FpScalar {
        sel: FpSel,
        wide: bool,
        dst: VOp,
        a: VOp,
        b: VOp,
        vex: bool,
    },
    Ucomis {
        wide: bool,
        a: VOp,
        b: VOp,
    },
    CvtSi2Fp {
        wide: bool,
        dst: VecReg,
        src: SOp,
        src_width: u8,
        vex: bool,
    },
    CvtFp2Si {
        wide: bool,
        dst: SOp,
        src: VOp,
    },
    Cvtdq2ps {
        dst: VOp,
        src: VOp,
        width: u8,
        vex: bool,
    },
    FpPackedF32 {
        sel: PackedSel,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    FpPackedF64 {
        sel: PackedSel,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    Fma {
        wide: bool,
        acc: VOp,
        a: VOp,
        b: VOp,
        width: u8,
    },
    VBitwise {
        sel: BitwiseSel,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    PackedIntAddSub {
        lane_bytes: u8,
        add: bool,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    PackedMul {
        sel: PackedMulSel,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    PackedShift {
        sel: PackedShiftSel,
        dst: VOp,
        src: VOp,
        count: u32,
        width: u8,
        vex: bool,
    },
    PackedCmp {
        sel: PackedCmpSel,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    Shufps {
        imm: u32,
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    Pshufd {
        imm: u32,
        dst: VOp,
        src: VOp,
        width: u8,
        vex: bool,
    },
    Pshufb {
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    Unpck {
        dst: VOp,
        a: VOp,
        b: VOp,
        width: u8,
        vex: bool,
    },
    Pmovmskb {
        dst: SOp,
        src: VecReg,
    },
}

impl ExecOp {
    /// Whether this op belongs to the vector kernel. The vector variants
    /// are declared contiguously, so this compiles to one discriminant
    /// range check — the lowered analogue of the reference dispatcher's
    /// `Inst::is_sse` pre-test, sparing vector ops a walk through the
    /// scalar kernel's match.
    #[inline]
    pub(crate) fn is_vector(&self) -> bool {
        matches!(
            self,
            ExecOp::MovssMerge { .. }
                | ExecOp::MovssLoad { .. }
                | ExecOp::MovssStore { .. }
                | ExecOp::VMov { .. }
                | ExecOp::MovdToVec { .. }
                | ExecOp::MovdFromVec { .. }
                | ExecOp::Vbroadcastss { .. }
                | ExecOp::FpScalar { .. }
                | ExecOp::Ucomis { .. }
                | ExecOp::CvtSi2Fp { .. }
                | ExecOp::CvtFp2Si { .. }
                | ExecOp::Cvtdq2ps { .. }
                | ExecOp::FpPackedF32 { .. }
                | ExecOp::FpPackedF64 { .. }
                | ExecOp::Fma { .. }
                | ExecOp::VBitwise { .. }
                | ExecOp::PackedIntAddSub { .. }
                | ExecOp::PackedMul { .. }
                | ExecOp::PackedShift { .. }
                | ExecOp::PackedCmp { .. }
                | ExecOp::Shufps { .. }
                | ExecOp::Pshufd { .. }
                | ExecOp::Pshufb { .. }
                | ExecOp::Unpck { .. }
                | ExecOp::Pmovmskb { .. }
        )
    }
}

/// A block lowered once into the flat IR, plus the block-level facts the
/// executor needs (today: whether any instruction requires AVX2, hoisted
/// out of the per-restart scan the interpreter used to do).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct LoweredBlock {
    /// One op per static instruction, in block order (`static_idx` of the
    /// emitted `DynInst` is the index here).
    pub ops: Vec<ExecOp>,
    /// The block uses a VEX-only mnemonic or a ymm operand; machines
    /// without AVX2 must fault with `#UD` before executing anything.
    pub uses_avx2: bool,
}

/// Executes one predecoded op, mutating `state` and `mem`, recording its
/// effects into the caller-provided (default-initialized) `fx` — usually
/// the trace slot itself, so effects are written once instead of bounced
/// through return-value copies. The lowered counterpart of
/// [`super::execute_inst`]: identical effects, faults, and fault ordering.
///
/// Kept out of line so the unroll loop in `execute_unrolled_into` stays a
/// few cache lines of code calling one dispatch function — inlining the
/// full kernel match into the loop body measurably regresses it.
#[inline(never)]
pub(crate) fn execute_op(
    op: &ExecOp,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    if op.is_vector() {
        super::vector_ops::execute(op, state, mem, fx)?;
    } else {
        let handled = super::scalar_ops::execute(op, state, mem, fx)?;
        debug_assert!(handled, "scalar kernel declined a non-vector op: {op:?}");
    }
    Ok(())
}
