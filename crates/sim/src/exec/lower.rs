//! Lowering from [`Inst`] to the predecoded IR.
//!
//! Runs once per block (the machine caches the result keyed by block
//! content), taking every decode decision the interpreters used to take
//! per dynamic instruction: the SSE/scalar split, operand shapes, lane
//! and operand widths, VEX-ness, shuffle/shift immediates, and the
//! block-level AVX2 requirement the executor used to rescan on every
//! monitor restart.

use super::ops::{
    ArithSel, BitCountSel, BitwiseSel, EaRecipe, ExecOp, FpSel, LogicSel, LoweredBlock,
    PackedCmpSel, PackedMulSel, PackedSel, PackedShiftSel, SOp, ShiftSel, VOp,
};
use bhive_asm::{Inst, Mnemonic, Operand, VecWidth};

/// Lowers a block and computes its block-level facts.
pub(crate) fn lower_block(insts: &[Inst]) -> LoweredBlock {
    let uses_avx2 = insts.iter().any(|inst| {
        inst.mnemonic().is_vex_only()
            || inst
                .operands()
                .iter()
                .any(|op| matches!(op, Operand::Vec(v) if v.width() == VecWidth::Ymm))
    });
    LoweredBlock {
        ops: insts.iter().map(lower_inst).collect(),
        uses_avx2,
    }
}

/// Lowers one instruction, deciding the SSE/scalar split exactly as
/// [`super::execute_inst`] does.
pub(crate) fn lower_inst(inst: &Inst) -> ExecOp {
    if inst.mnemonic().is_sse() {
        lower_vector(inst)
    } else {
        lower_scalar(inst)
    }
}

fn sop(op: &Operand) -> SOp {
    match op {
        Operand::Gpr { reg, size } => SOp::Gpr(*reg, *size),
        Operand::Imm(v) => SOp::Imm(*v),
        Operand::Mem(m) => SOp::Mem(EaRecipe::from_mem(m)),
        Operand::Vec(_) => unreachable!("vector operand in scalar context"),
    }
}

fn vop(op: &Operand) -> VOp {
    match op {
        Operand::Vec(v) => VOp::Vec(*v),
        Operand::Gpr { reg, size } => VOp::Gpr(*reg, *size),
        Operand::Mem(m) => VOp::Mem(EaRecipe::from_mem(m)),
        Operand::Imm(_) => unreachable!("immediate as vector source"),
    }
}

fn lower_scalar(inst: &Inst) -> ExecOp {
    use Mnemonic::*;
    let width = inst.width_bytes();
    let ops = inst.operands();

    match inst.mnemonic() {
        Nop | Jcc => ExecOp::Nop,
        Mov | Movzx => ExecOp::Mov {
            dst: sop(&ops[0]),
            src: sop(&ops[1]),
        },
        Movsx | Movsxd => ExecOp::Movsx {
            dst: sop(&ops[0]),
            src: sop(&ops[1]),
            src_width: ops[1].width_bytes().unwrap_or(4),
        },
        Bswap => ExecOp::Bswap {
            dst: sop(&ops[0]),
            width,
        },
        Lea => ExecOp::Lea {
            dst: sop(&ops[0]),
            ea: EaRecipe::from_mem(ops[1].as_mem().expect("lea memory operand")),
        },
        Push => ExecOp::Push { src: sop(&ops[0]) },
        Pop => ExecOp::Pop { dst: sop(&ops[0]) },
        Add | Adc | Sub | Sbb | Cmp => ExecOp::Arith {
            sel: match inst.mnemonic() {
                Add => ArithSel::Add,
                Adc => ArithSel::Adc,
                Sub => ArithSel::Sub,
                Sbb => ArithSel::Sbb,
                _ => ArithSel::Cmp,
            },
            dst: sop(&ops[0]),
            src: sop(&ops[1]),
            width,
        },
        And | Or | Xor | Test => ExecOp::Logic {
            sel: match inst.mnemonic() {
                And => LogicSel::And,
                Or => LogicSel::Or,
                Xor => LogicSel::Xor,
                _ => LogicSel::Test,
            },
            dst: sop(&ops[0]),
            src: sop(&ops[1]),
            width,
        },
        Inc | Dec => ExecOp::IncDec {
            inc: inst.mnemonic() == Inc,
            dst: sop(&ops[0]),
            width,
        },
        Neg => ExecOp::Neg {
            dst: sop(&ops[0]),
            width,
        },
        Not => ExecOp::Not { dst: sop(&ops[0]) },
        Shl | Shr | Sar | Rol | Ror => ExecOp::Shift {
            sel: match inst.mnemonic() {
                Shl => ShiftSel::Shl,
                Shr => ShiftSel::Shr,
                Sar => ShiftSel::Sar,
                Rol => ShiftSel::Rol,
                _ => ShiftSel::Ror,
            },
            dst: sop(&ops[0]),
            count: sop(&ops[1]),
            width,
        },
        Imul => match ops.len() {
            1 => ExecOp::Imul1 {
                src: sop(&ops[0]),
                width,
            },
            2 => ExecOp::Imul2 {
                dst: sop(&ops[0]),
                src: sop(&ops[1]),
                width,
            },
            _ => ExecOp::Imul3 {
                dst: sop(&ops[0]),
                src1: sop(&ops[1]),
                src2: sop(&ops[2]),
                width,
            },
        },
        Mul => ExecOp::Mul {
            src: sop(&ops[0]),
            width,
        },
        Div | Idiv => ExecOp::Div {
            signed: inst.mnemonic() == Idiv,
            src: sop(&ops[0]),
            width,
        },
        Cdq => ExecOp::Cdq,
        Cqo => ExecOp::Cqo,
        Popcnt | Lzcnt | Tzcnt => ExecOp::BitCount {
            sel: match inst.mnemonic() {
                Popcnt => BitCountSel::Popcnt,
                Lzcnt => BitCountSel::Lzcnt,
                _ => BitCountSel::Tzcnt,
            },
            dst: sop(&ops[0]),
            src: sop(&ops[1]),
            width,
        },
        Set => ExecOp::SetCc {
            dst: sop(&ops[0]),
            cond: inst.cond().expect("setcc condition"),
        },
        Cmov => ExecOp::CmovCc {
            dst: sop(&ops[0]),
            src: sop(&ops[1]),
            cond: inst.cond().expect("cmovcc condition"),
        },
        other => unreachable!("scalar lowering got {other:?}"),
    }
}

/// Replicates the reference `split_ops`: `(dst, srcs)` for both legacy
/// (`dst = op(dst, src)`) and VEX (`dst = op(src1, src2)`) conventions.
fn split_ops(inst: &Inst) -> (&Operand, &Operand, &Operand) {
    let ops = inst.operands();
    match ops.len() {
        2 => (&ops[0], &ops[0], &ops[1]),
        3 if ops[2].as_imm().is_some() => (&ops[0], &ops[0], &ops[1]),
        3 => (&ops[0], &ops[1], &ops[2]),
        4 => (&ops[0], &ops[1], &ops[2]),
        _ => (&ops[0], &ops[0], &ops[0]),
    }
}

/// Replicates the reference `vec_width_of`.
fn vec_width_of(inst: &Inst) -> u8 {
    inst.operands()
        .iter()
        .find_map(|op| match op {
            Operand::Vec(v) => Some(v.width().bytes()),
            _ => None,
        })
        .unwrap_or(16)
}

fn lower_vector(inst: &Inst) -> ExecOp {
    use Mnemonic::*;
    let vex = inst.is_vex();
    let width = vec_width_of(inst);
    let ops = inst.operands();
    let m = inst.mnemonic();

    match m {
        Movss | Movsd => {
            let lane = if m == Movss { 4 } else { 8 };
            match (&ops[0], &ops[1]) {
                (Operand::Vec(dst), Operand::Vec(src)) => ExecOp::MovssMerge {
                    dst: *dst,
                    src: *src,
                    lane,
                    vex,
                },
                (Operand::Vec(dst), Operand::Mem(mm)) => ExecOp::MovssLoad {
                    dst: *dst,
                    ea: EaRecipe::from_mem(mm),
                    lane,
                },
                (Operand::Mem(mm), Operand::Vec(src)) => ExecOp::MovssStore {
                    ea: EaRecipe::from_mem(mm),
                    src: *src,
                    lane,
                    vex,
                },
                _ => unreachable!("movss operand shapes"),
            }
        }
        Movaps | Movdqa => ExecOp::VMov {
            dst: vop(&ops[0]),
            src: vop(&ops[1]),
            width,
            vex,
            aligned: true,
        },
        Movups | Movdqu => ExecOp::VMov {
            dst: vop(&ops[0]),
            src: vop(&ops[1]),
            width,
            vex,
            aligned: false,
        },
        Movd | Movq => {
            let lane = if m == Movd { 4 } else { 8 };
            match (&ops[0], &ops[1]) {
                (Operand::Vec(_), _) => ExecOp::MovdToVec {
                    dst: vop(&ops[0]),
                    src: vop(&ops[1]),
                    lane,
                },
                (_, Operand::Vec(v)) => ExecOp::MovdFromVec {
                    dst: sop(&ops[0]),
                    src: *v,
                    lane,
                },
                _ => unreachable!("movd operand shapes"),
            }
        }
        Vbroadcastss => ExecOp::Vbroadcastss {
            dst: vop(&ops[0]),
            src: vop(&ops[1]),
            width,
        },
        Addss | Subss | Mulss | Divss | Sqrtss | Addsd | Subsd | Mulsd | Divsd | Sqrtsd => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::FpScalar {
                sel: match m {
                    Addss | Addsd => FpSel::Add,
                    Subss | Subsd => FpSel::Sub,
                    Mulss | Mulsd => FpSel::Mul,
                    Divss | Divsd => FpSel::Div,
                    _ => FpSel::Sqrt,
                },
                wide: matches!(m, Addsd | Subsd | Mulsd | Divsd | Sqrtsd),
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                vex,
            }
        }
        Ucomiss | Ucomisd => ExecOp::Ucomis {
            wide: m == Ucomisd,
            a: vop(&ops[0]),
            b: vop(&ops[1]),
        },
        Cvtsi2ss | Cvtsi2sd => ExecOp::CvtSi2Fp {
            wide: m == Cvtsi2sd,
            dst: ops[0].as_vec().expect("cvt destination register"),
            src: sop(&ops[1]),
            src_width: ops[1].width_bytes().unwrap_or(4),
            vex,
        },
        Cvttss2si | Cvttsd2si => ExecOp::CvtFp2Si {
            wide: m == Cvttsd2si,
            dst: sop(&ops[0]),
            src: vop(&ops[1]),
        },
        Cvtdq2ps => ExecOp::Cvtdq2ps {
            dst: vop(&ops[0]),
            src: vop(&ops[ops.len() - 1]),
            width,
            vex,
        },
        Addps | Subps | Mulps | Divps | Minps | Maxps | Sqrtps => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::FpPackedF32 {
                sel: match m {
                    Addps => PackedSel::Add,
                    Subps => PackedSel::Sub,
                    Mulps => PackedSel::Mul,
                    Divps => PackedSel::Div,
                    Minps => PackedSel::Min,
                    Maxps => PackedSel::Max,
                    _ => PackedSel::Sqrt,
                },
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Addpd | Subpd | Mulpd | Divpd => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::FpPackedF64 {
                sel: match m {
                    Addpd => PackedSel::Add,
                    Subpd => PackedSel::Sub,
                    Mulpd => PackedSel::Mul,
                    _ => PackedSel::Div,
                },
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Vfmadd231ps | Vfmadd231pd => ExecOp::Fma {
            wide: m == Vfmadd231pd,
            acc: vop(&ops[0]),
            a: vop(&ops[1]),
            b: vop(&ops[2]),
            width,
        },
        Xorps | Xorpd | Andps | Orps | Pand | Por | Pxor | Pandn => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::VBitwise {
                sel: match m {
                    Xorps | Xorpd | Pxor => BitwiseSel::Xor,
                    Andps | Pand => BitwiseSel::And,
                    Orps | Por => BitwiseSel::Or,
                    _ => BitwiseSel::AndNot,
                },
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Paddb | Paddw | Paddd | Paddq | Psubb | Psubw | Psubd | Psubq => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::PackedIntAddSub {
                lane_bytes: match m {
                    Paddb | Psubb => 1,
                    Paddw | Psubw => 2,
                    Paddd | Psubd => 4,
                    _ => 8,
                },
                add: matches!(m, Paddb | Paddw | Paddd | Paddq),
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Pmullw | Pmulld | Pmuludq | Pmaddwd => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::PackedMul {
                sel: match m {
                    Pmullw => PackedMulSel::Mullw,
                    Pmulld => PackedMulSel::Mulld,
                    Pmuludq => PackedMulSel::Muludq,
                    _ => PackedMulSel::Maddwd,
                },
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Pslld | Psrld | Psrad | Psllq | Psrlq => {
            let (dst, src, count_op) = match ops.len() {
                // Legacy: pslld xmm, imm.
                2 => (&ops[0], &ops[0], &ops[1]),
                // VEX: vpslld dst, src, imm.
                _ => (&ops[0], &ops[1], &ops[2]),
            };
            ExecOp::PackedShift {
                sel: match m {
                    Pslld => PackedShiftSel::Slld,
                    Psrld => PackedShiftSel::Srld,
                    Psrad => PackedShiftSel::Srad,
                    Psllq => PackedShiftSel::Sllq,
                    _ => PackedShiftSel::Srlq,
                },
                dst: vop(dst),
                src: vop(src),
                count: count_op.as_imm().unwrap_or(0) as u32,
                width,
                vex,
            }
        }
        Pcmpeqb | Pcmpeqd | Pcmpgtd => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::PackedCmp {
                sel: match m {
                    Pcmpeqb => PackedCmpSel::Eqb,
                    Pcmpeqd => PackedCmpSel::Eqd,
                    _ => PackedCmpSel::Gtd,
                },
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Shufps => {
            let imm = ops.last().and_then(Operand::as_imm).unwrap_or(0) as u32;
            let (dst, a, b) = split_ops(inst);
            ExecOp::Shufps {
                imm,
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Pshufd => ExecOp::Pshufd {
            imm: ops.last().and_then(Operand::as_imm).unwrap_or(0) as u32,
            dst: vop(&ops[0]),
            src: vop(&ops[1]),
            width,
            vex,
        },
        Pshufb => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::Pshufb {
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Unpcklps | Punpckldq => {
            let (dst, a, b) = split_ops(inst);
            ExecOp::Unpck {
                dst: vop(dst),
                a: vop(a),
                b: vop(b),
                width,
                vex,
            }
        }
        Pmovmskb => ExecOp::Pmovmskb {
            dst: sop(&ops[0]),
            src: ops[1].as_vec().expect("pmovmskb source register"),
        },
        other => unreachable!("vector lowering got {other:?}"),
    }
}
