//! SSE/AVX instruction semantics (scalar-FP, packed-FP, packed-integer).

use super::{effective_addr, ExecFault, InstEffects, MemAccess};
use crate::mem::Memory;
use crate::state::{CpuState, Mxcsr};
use bhive_asm::{Inst, Mnemonic, Operand, VecWidth};

/// A 32-byte operand value (vector register or memory contents, padded).
pub(super) type VBytes = [u8; 32];

pub(super) fn is_sub_f32(x: f32) -> bool {
    x != 0.0 && x.is_finite() && x.abs() < f32::MIN_POSITIVE
}

pub(super) fn is_sub_f64(x: f64) -> bool {
    x != 0.0 && x.is_finite() && x.abs() < f64::MIN_POSITIVE
}

/// Applies DAZ to an input lane; records a subnormal event when gradual
/// underflow is still enabled.
pub(super) fn daz32(x: f32, mxcsr: Mxcsr, subnormal: &mut bool) -> f32 {
    if is_sub_f32(x) {
        if mxcsr.daz {
            return if x.is_sign_negative() { -0.0 } else { 0.0 };
        }
        *subnormal = true;
    }
    x
}

pub(super) fn daz64(x: f64, mxcsr: Mxcsr, subnormal: &mut bool) -> f64 {
    if is_sub_f64(x) {
        if mxcsr.daz {
            return if x.is_sign_negative() { -0.0 } else { 0.0 };
        }
        *subnormal = true;
    }
    x
}

/// Applies FTZ to a result lane; records a subnormal event when gradual
/// underflow produced a subnormal result.
pub(super) fn ftz32(x: f32, mxcsr: Mxcsr, subnormal: &mut bool) -> f32 {
    if is_sub_f32(x) {
        if mxcsr.ftz {
            return if x.is_sign_negative() { -0.0 } else { 0.0 };
        }
        *subnormal = true;
    }
    x
}

pub(super) fn ftz64(x: f64, mxcsr: Mxcsr, subnormal: &mut bool) -> f64 {
    if is_sub_f64(x) {
        if mxcsr.ftz {
            return if x.is_sign_negative() { -0.0 } else { 0.0 };
        }
        *subnormal = true;
    }
    x
}

pub(super) fn get_f32(bytes: &VBytes, lane: usize) -> f32 {
    f32::from_le_bytes(bytes[lane * 4..lane * 4 + 4].try_into().expect("lane"))
}

pub(super) fn set_f32(bytes: &mut VBytes, lane: usize, v: f32) {
    bytes[lane * 4..lane * 4 + 4].copy_from_slice(&v.to_le_bytes());
}

pub(super) fn get_f64(bytes: &VBytes, lane: usize) -> f64 {
    f64::from_le_bytes(bytes[lane * 8..lane * 8 + 8].try_into().expect("lane"))
}

pub(super) fn set_f64(bytes: &mut VBytes, lane: usize, v: f64) {
    bytes[lane * 8..lane * 8 + 8].copy_from_slice(&v.to_le_bytes());
}

pub(super) fn get_u32(bytes: &VBytes, lane: usize) -> u32 {
    u32::from_le_bytes(bytes[lane * 4..lane * 4 + 4].try_into().expect("lane"))
}

pub(super) fn set_u32(bytes: &mut VBytes, lane: usize, v: u32) {
    bytes[lane * 4..lane * 4 + 4].copy_from_slice(&v.to_le_bytes());
}

pub(super) fn get_u64(bytes: &VBytes, lane: usize) -> u64 {
    u64::from_le_bytes(bytes[lane * 8..lane * 8 + 8].try_into().expect("lane"))
}

pub(super) fn set_u64(bytes: &mut VBytes, lane: usize, v: u64) {
    bytes[lane * 8..lane * 8 + 8].copy_from_slice(&v.to_le_bytes());
}

pub(super) fn get_u16(bytes: &VBytes, lane: usize) -> u16 {
    u16::from_le_bytes(bytes[lane * 2..lane * 2 + 2].try_into().expect("lane"))
}

pub(super) fn set_u16(bytes: &mut VBytes, lane: usize, v: u16) {
    bytes[lane * 2..lane * 2 + 2].copy_from_slice(&v.to_le_bytes());
}

struct Ctx<'a> {
    state: &'a mut CpuState,
    mem: &'a mut Memory,
    fx: &'a mut InstEffects,
}

impl Ctx<'_> {
    /// Reads a vector-or-memory operand into a padded 32-byte buffer.
    fn read(&mut self, op: &Operand, width: u8, aligned: bool) -> Result<VBytes, ExecFault> {
        let mut out = [0u8; 32];
        match op {
            Operand::Vec(v) => {
                let w = v.width().bytes() as usize;
                out[..w].copy_from_slice(&self.state.vec_raw(v.number())[..w]);
            }
            Operand::Mem(m) => {
                let vaddr = effective_addr(m, self.state);
                if aligned && !vaddr.is_multiple_of(u64::from(width)) {
                    return Err(ExecFault::GeneralProtection { vaddr });
                }
                self.mem.read(vaddr, &mut out[..width as usize])?;
                let paddr = self.mem.phys_addr(vaddr, false)?;
                self.fx.load = Some(MemAccess {
                    vaddr,
                    paddr,
                    width,
                    write: false,
                });
            }
            Operand::Gpr { reg, size } => {
                let v = self.state.gpr(*reg, *size);
                out[..8].copy_from_slice(&v.to_le_bytes());
            }
            Operand::Imm(_) => unreachable!("immediate as vector source"),
        }
        Ok(out)
    }

    /// Writes a result to a vector register or memory destination.
    fn write(
        &mut self,
        op: &Operand,
        bytes: &VBytes,
        width: u8,
        vex: bool,
        aligned: bool,
    ) -> Result<(), ExecFault> {
        match op {
            Operand::Vec(v) => {
                let w = v.width().bytes() as usize;
                self.state.set_vec(*v, &bytes[..w], vex);
                Ok(())
            }
            Operand::Mem(m) => {
                let vaddr = effective_addr(m, self.state);
                if aligned && !vaddr.is_multiple_of(u64::from(width)) {
                    return Err(ExecFault::GeneralProtection { vaddr });
                }
                self.mem.write(vaddr, &bytes[..width as usize])?;
                let paddr = self.mem.phys_addr(vaddr, true)?;
                self.fx.store = Some(MemAccess {
                    vaddr,
                    paddr,
                    width,
                    write: true,
                });
                Ok(())
            }
            _ => unreachable!("scalar destination in vector context"),
        }
    }
}

/// Splits `(dst, srcs)` for both legacy (`dst = op(dst, src)`) and VEX
/// (`dst = op(src1, src2)`) operand conventions.
fn split_ops(inst: &Inst) -> (&Operand, &Operand, &Operand) {
    let ops = inst.operands();
    match ops.len() {
        // Legacy: dst is also first source.
        2 => (&ops[0], &ops[0], &ops[1]),
        // Imm-carrying legacy forms (shufps/pshufd handled separately).
        3 if ops[2].as_imm().is_some() => (&ops[0], &ops[0], &ops[1]),
        3 => (&ops[0], &ops[1], &ops[2]),
        4 => (&ops[0], &ops[1], &ops[2]),
        _ => (&ops[0], &ops[0], &ops[0]),
    }
}

fn vec_width_of(inst: &Inst) -> u8 {
    inst.operands()
        .iter()
        .find_map(|op| match op {
            Operand::Vec(v) => Some(v.width().bytes()),
            _ => None,
        })
        .unwrap_or(16)
}

pub(super) fn execute(
    inst: &Inst,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    use Mnemonic::*;
    let vex = inst.is_vex();
    let width = vec_width_of(inst);
    let mxcsr = state.mxcsr;
    let mut ctx = Ctx { state, mem, fx };
    let ops = inst.operands();
    let m = inst.mnemonic();

    match m {
        // ---- moves ----
        Movss | Movsd => {
            let lane = if m == Movss { 4 } else { 8 };
            match (&ops[0], &ops[1]) {
                (Operand::Vec(dst), Operand::Vec(src)) => {
                    // Register-register: merge the low lane.
                    let src_bytes = ctx.read(&Operand::Vec(*src), lane, false)?;
                    let mut out = [0u8; 32];
                    let w = dst.width().bytes() as usize;
                    out[..w].copy_from_slice(&ctx.state.vec_raw(dst.number())[..w]);
                    out[..lane as usize].copy_from_slice(&src_bytes[..lane as usize]);
                    ctx.write(&ops[0], &out, lane, vex, false)?;
                }
                (Operand::Vec(_), Operand::Mem(_)) => {
                    // Load: zero the rest of the register.
                    let out = ctx.read(&ops[1], lane, false)?;
                    ctx.state.set_vec(
                        ops[0].as_vec().expect("vec dst").with_width(VecWidth::Xmm),
                        &out[..16],
                        true,
                    );
                }
                (Operand::Mem(_), Operand::Vec(_)) => {
                    let out = ctx.read(&ops[1], lane, false)?;
                    ctx.write(&ops[0], &out, lane, vex, false)?;
                }
                _ => unreachable!("movss operand shapes"),
            }
        }
        Movaps | Movdqa => {
            let src = ctx.read(&ops[1], width, true)?;
            ctx.write(&ops[0], &src, width, vex, true)?;
        }
        Movups | Movdqu => {
            let src = ctx.read(&ops[1], width, false)?;
            ctx.write(&ops[0], &src, width, vex, false)?;
        }
        Movd | Movq => {
            let lane = if m == Movd { 4 } else { 8 };
            match (&ops[0], &ops[1]) {
                (Operand::Vec(_), _) => {
                    let src = ctx.read(&ops[1], lane, false)?;
                    let mut out = [0u8; 32];
                    out[..lane as usize].copy_from_slice(&src[..lane as usize]);
                    ctx.write(&ops[0], &out, lane, true, false)?;
                }
                (_, Operand::Vec(v)) => {
                    let value = match lane {
                        4 => u64::from(get_u32(ctx.state.vec_raw(v.number()), 0)),
                        _ => get_u64(ctx.state.vec_raw(v.number()), 0),
                    };
                    super::write_scalar_operand(&ops[0], value, ctx.state, ctx.mem, ctx.fx)?;
                }
                _ => unreachable!("movd operand shapes"),
            }
        }
        Vbroadcastss => {
            let src = ctx.read(&ops[1], 4, false)?;
            let mut out = [0u8; 32];
            for lane in 0..(width / 4) as usize {
                out[lane * 4..lane * 4 + 4].copy_from_slice(&src[..4]);
            }
            ctx.write(&ops[0], &out, width, true, false)?;
        }
        // ---- scalar float arithmetic ----
        Addss | Subss | Mulss | Divss | Sqrtss => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, 4, false)?;
            let b = ctx.read(b_op, 4, false)?;
            let mut sub = false;
            let x = daz32(get_f32(&a, 0), mxcsr, &mut sub);
            let y = daz32(get_f32(&b, 0), mxcsr, &mut sub);
            let r = match m {
                Addss => x + y,
                Subss => x - y,
                Mulss => x * y,
                Divss => x / y,
                Sqrtss => y.sqrt(),
                _ => unreachable!(),
            };
            let r = ftz32(r, mxcsr, &mut sub);
            ctx.fx.subnormal |= sub;
            let mut out = a;
            set_f32(&mut out, 0, r);
            ctx.write(dst, &out, 4, vex, false)?;
        }
        Addsd | Subsd | Mulsd | Divsd | Sqrtsd => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, 8, false)?;
            let b = ctx.read(b_op, 8, false)?;
            let mut sub = false;
            let x = daz64(get_f64(&a, 0), mxcsr, &mut sub);
            let y = daz64(get_f64(&b, 0), mxcsr, &mut sub);
            let r = match m {
                Addsd => x + y,
                Subsd => x - y,
                Mulsd => x * y,
                Divsd => x / y,
                Sqrtsd => y.sqrt(),
                _ => unreachable!(),
            };
            let r = ftz64(r, mxcsr, &mut sub);
            ctx.fx.subnormal |= sub;
            let mut out = a;
            set_f64(&mut out, 0, r);
            ctx.write(dst, &out, 8, vex, false)?;
        }
        Ucomiss | Ucomisd => {
            let a = ctx.read(&ops[0], if m == Ucomiss { 4 } else { 8 }, false)?;
            let b = ctx.read(&ops[1], if m == Ucomiss { 4 } else { 8 }, false)?;
            let (x, y) = if m == Ucomiss {
                (f64::from(get_f32(&a, 0)), f64::from(get_f32(&b, 0)))
            } else {
                (get_f64(&a, 0), get_f64(&b, 0))
            };
            let flags = &mut ctx.state.flags;
            flags.of = false;
            flags.sf = false;
            if x.is_nan() || y.is_nan() {
                flags.zf = true;
                flags.pf = true;
                flags.cf = true;
            } else {
                flags.zf = x == y;
                flags.pf = false;
                flags.cf = x < y;
            }
        }
        Cvtsi2ss | Cvtsi2sd => {
            let int = super::read_scalar_operand(&ops[1], ctx.state, ctx.mem, ctx.fx)?;
            let signed = match ops[1].width_bytes().unwrap_or(4) {
                8 => int as i64,
                _ => i64::from(int as i32),
            };
            let src_width = if m == Cvtsi2ss { 4 } else { 8 };
            let dst = ops[0].as_vec().expect("cvt destination register");
            let mut out = [0u8; 32];
            let w = dst.width().bytes() as usize;
            out[..w].copy_from_slice(&ctx.state.vec_raw(dst.number())[..w]);
            if m == Cvtsi2ss {
                set_f32(&mut out, 0, signed as f32);
            } else {
                set_f64(&mut out, 0, signed as f64);
            }
            ctx.write(&ops[0], &out, src_width, vex, false)?;
        }
        Cvttss2si | Cvttsd2si => {
            let lane = if m == Cvttss2si { 4 } else { 8 };
            let src = ctx.read(&ops[1], lane, false)?;
            let value = if m == Cvttss2si {
                get_f32(&src, 0) as i64
            } else {
                get_f64(&src, 0) as i64
            };
            super::write_scalar_operand(&ops[0], value as u64, ctx.state, ctx.mem, ctx.fx)?;
        }
        Cvtdq2ps => {
            let src = ctx.read(&ops[ops.len() - 1], width, false)?;
            let mut out = [0u8; 32];
            for lane in 0..(width / 4) as usize {
                set_f32(&mut out, lane, get_u32(&src, lane) as i32 as f32);
            }
            ctx.write(&ops[0], &out, width, vex, false)?;
        }
        // ---- packed float arithmetic ----
        Addps | Subps | Mulps | Divps | Minps | Maxps | Sqrtps => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            let mut sub = false;
            for lane in 0..(width / 4) as usize {
                let x = daz32(get_f32(&a, lane), mxcsr, &mut sub);
                let y = daz32(get_f32(&b, lane), mxcsr, &mut sub);
                let r = match m {
                    Addps => x + y,
                    Subps => x - y,
                    Mulps => x * y,
                    Divps => x / y,
                    Minps => {
                        if x < y {
                            x
                        } else {
                            y
                        }
                    }
                    Maxps => {
                        if x > y {
                            x
                        } else {
                            y
                        }
                    }
                    Sqrtps => y.sqrt(),
                    _ => unreachable!(),
                };
                set_f32(&mut out, lane, ftz32(r, mxcsr, &mut sub));
            }
            ctx.fx.subnormal |= sub;
            ctx.write(dst, &out, width, vex, false)?;
        }
        Addpd | Subpd | Mulpd | Divpd => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            let mut sub = false;
            for lane in 0..(width / 8) as usize {
                let x = daz64(get_f64(&a, lane), mxcsr, &mut sub);
                let y = daz64(get_f64(&b, lane), mxcsr, &mut sub);
                let r = match m {
                    Addpd => x + y,
                    Subpd => x - y,
                    Mulpd => x * y,
                    Divpd => x / y,
                    _ => unreachable!(),
                };
                set_f64(&mut out, lane, ftz64(r, mxcsr, &mut sub));
            }
            ctx.fx.subnormal |= sub;
            ctx.write(dst, &out, width, vex, false)?;
        }
        Vfmadd231ps | Vfmadd231pd => {
            // dst = src1 * src2 + dst (the `231` operand order).
            let acc = ctx.read(&ops[0], width, false)?;
            let a = ctx.read(&ops[1], width, false)?;
            let b = ctx.read(&ops[2], width, false)?;
            let mut out = [0u8; 32];
            let mut sub = false;
            if m == Vfmadd231ps {
                for lane in 0..(width / 4) as usize {
                    let x = daz32(get_f32(&a, lane), mxcsr, &mut sub);
                    let y = daz32(get_f32(&b, lane), mxcsr, &mut sub);
                    let c = daz32(get_f32(&acc, lane), mxcsr, &mut sub);
                    set_f32(&mut out, lane, ftz32(x.mul_add(y, c), mxcsr, &mut sub));
                }
            } else {
                for lane in 0..(width / 8) as usize {
                    let x = daz64(get_f64(&a, lane), mxcsr, &mut sub);
                    let y = daz64(get_f64(&b, lane), mxcsr, &mut sub);
                    let c = daz64(get_f64(&acc, lane), mxcsr, &mut sub);
                    set_f64(&mut out, lane, ftz64(x.mul_add(y, c), mxcsr, &mut sub));
                }
            }
            ctx.fx.subnormal |= sub;
            ctx.write(&ops[0], &out, width, true, false)?;
        }
        // ---- bitwise ----
        Xorps | Xorpd | Andps | Orps | Pand | Por | Pxor | Pandn => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            for i in 0..32 {
                out[i] = match m {
                    Xorps | Xorpd | Pxor => a[i] ^ b[i],
                    Andps | Pand => a[i] & b[i],
                    Orps | Por => a[i] | b[i],
                    Pandn => !a[i] & b[i],
                    _ => unreachable!(),
                };
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        // ---- packed integer arithmetic ----
        Paddb | Paddw | Paddd | Paddq | Psubb | Psubw | Psubd | Psubq => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            let lane_bytes: usize = match m {
                Paddb | Psubb => 1,
                Paddw | Psubw => 2,
                Paddd | Psubd => 4,
                _ => 8,
            };
            let add = matches!(m, Paddb | Paddw | Paddd | Paddq);
            for lane in 0..(width as usize / lane_bytes) {
                match lane_bytes {
                    1 => {
                        out[lane] = if add {
                            a[lane].wrapping_add(b[lane])
                        } else {
                            a[lane].wrapping_sub(b[lane])
                        }
                    }
                    2 => {
                        let (x, y) = (get_u16(&a, lane), get_u16(&b, lane));
                        set_u16(
                            &mut out,
                            lane,
                            if add {
                                x.wrapping_add(y)
                            } else {
                                x.wrapping_sub(y)
                            },
                        );
                    }
                    4 => {
                        let (x, y) = (get_u32(&a, lane), get_u32(&b, lane));
                        set_u32(
                            &mut out,
                            lane,
                            if add {
                                x.wrapping_add(y)
                            } else {
                                x.wrapping_sub(y)
                            },
                        );
                    }
                    _ => {
                        let (x, y) = (get_u64(&a, lane), get_u64(&b, lane));
                        set_u64(
                            &mut out,
                            lane,
                            if add {
                                x.wrapping_add(y)
                            } else {
                                x.wrapping_sub(y)
                            },
                        );
                    }
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        Pmullw | Pmulld | Pmuludq | Pmaddwd => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            match m {
                Pmullw => {
                    for lane in 0..(width / 2) as usize {
                        let p = i32::from(get_u16(&a, lane) as i16)
                            * i32::from(get_u16(&b, lane) as i16);
                        set_u16(&mut out, lane, p as u16);
                    }
                }
                Pmulld => {
                    for lane in 0..(width / 4) as usize {
                        let p = i64::from(get_u32(&a, lane) as i32)
                            * i64::from(get_u32(&b, lane) as i32);
                        set_u32(&mut out, lane, p as u32);
                    }
                }
                Pmuludq => {
                    for lane in 0..(width / 16) as usize * 2 {
                        let p = u64::from(get_u32(&a, lane * 2)) * u64::from(get_u32(&b, lane * 2));
                        set_u64(&mut out, lane, p);
                    }
                }
                Pmaddwd => {
                    for lane in 0..(width / 4) as usize {
                        let p1 = i32::from(get_u16(&a, lane * 2) as i16)
                            * i32::from(get_u16(&b, lane * 2) as i16);
                        let p2 = i32::from(get_u16(&a, lane * 2 + 1) as i16)
                            * i32::from(get_u16(&b, lane * 2 + 1) as i16);
                        set_u32(&mut out, lane, p1.wrapping_add(p2) as u32);
                    }
                }
                _ => unreachable!(),
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        Pslld | Psrld | Psrad | Psllq | Psrlq => {
            let (dst, src_op, count_op) = match ops.len() {
                // Legacy: pslld xmm, imm.
                2 => (&ops[0], &ops[0], &ops[1]),
                // VEX: vpslld dst, src, imm.
                _ => (&ops[0], &ops[1], &ops[2]),
            };
            let count = count_op.as_imm().unwrap_or(0) as u32;
            let a = ctx.read(src_op, width, false)?;
            let mut out = [0u8; 32];
            match m {
                Pslld | Psrld | Psrad => {
                    for lane in 0..(width / 4) as usize {
                        let x = get_u32(&a, lane);
                        let r = if count >= 32 {
                            if m == Psrad {
                                ((x as i32) >> 31) as u32
                            } else {
                                0
                            }
                        } else {
                            match m {
                                Pslld => x << count,
                                Psrld => x >> count,
                                Psrad => ((x as i32) >> count) as u32,
                                _ => unreachable!(),
                            }
                        };
                        set_u32(&mut out, lane, r);
                    }
                }
                _ => {
                    for lane in 0..(width / 8) as usize {
                        let x = get_u64(&a, lane);
                        let r = if count >= 64 {
                            0
                        } else if m == Psllq {
                            x << count
                        } else {
                            x >> count
                        };
                        set_u64(&mut out, lane, r);
                    }
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        Pcmpeqb | Pcmpeqd | Pcmpgtd => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            match m {
                Pcmpeqb => {
                    for lane in 0..width as usize {
                        out[lane] = if a[lane] == b[lane] { 0xFF } else { 0 };
                    }
                }
                Pcmpeqd => {
                    for lane in 0..(width / 4) as usize {
                        let eq = get_u32(&a, lane) == get_u32(&b, lane);
                        set_u32(&mut out, lane, if eq { u32::MAX } else { 0 });
                    }
                }
                Pcmpgtd => {
                    for lane in 0..(width / 4) as usize {
                        let gt = (get_u32(&a, lane) as i32) > (get_u32(&b, lane) as i32);
                        set_u32(&mut out, lane, if gt { u32::MAX } else { 0 });
                    }
                }
                _ => unreachable!(),
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        // ---- shuffles ----
        Shufps => {
            let imm = ops.last().and_then(Operand::as_imm).unwrap_or(0) as u32;
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 4;
                for (slot, src) in [(0usize, &a), (1, &a), (2, &b), (3, &b)] {
                    let sel = ((imm >> (slot * 2)) & 3) as usize;
                    set_u32(&mut out, base + slot, get_u32(src, base + sel));
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        Pshufd => {
            let imm = ops.last().and_then(Operand::as_imm).unwrap_or(0) as u32;
            let src = ctx.read(&ops[1], width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 4;
                for slot in 0..4usize {
                    let sel = ((imm >> (slot * 2)) & 3) as usize;
                    set_u32(&mut out, base + slot, get_u32(&src, base + sel));
                }
            }
            ctx.write(&ops[0], &out, width, vex, false)?;
        }
        Pshufb => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 16;
                for i in 0..16usize {
                    let sel = b[base + i];
                    out[base + i] = if sel & 0x80 != 0 {
                        0
                    } else {
                        a[base + (sel & 0xF) as usize]
                    };
                }
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        Unpcklps | Punpckldq => {
            let (dst, a_op, b_op) = split_ops(inst);
            let a = ctx.read(a_op, width, false)?;
            let b = ctx.read(b_op, width, false)?;
            let mut out = [0u8; 32];
            for half in 0..(width / 16) as usize {
                let base = half * 4;
                set_u32(&mut out, base, get_u32(&a, base));
                set_u32(&mut out, base + 1, get_u32(&b, base));
                set_u32(&mut out, base + 2, get_u32(&a, base + 1));
                set_u32(&mut out, base + 3, get_u32(&b, base + 1));
            }
            ctx.write(dst, &out, width, vex, false)?;
        }
        Pmovmskb => {
            let src = ops[1].as_vec().expect("pmovmskb source register");
            let bytes = ctx.state.vec_raw(src.number());
            let mut mask = 0u64;
            for (i, byte) in bytes[..src.width().bytes() as usize].iter().enumerate() {
                mask |= u64::from(byte >> 7) << i;
            }
            super::write_scalar_operand(&ops[0], mask, ctx.state, ctx.mem, ctx.fx)?;
        }
        other => unreachable!("vector executor got {other:?}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_inst;
    use bhive_asm::{parse_inst, VecReg};

    fn run(text: &str, state: &mut CpuState, mem: &mut Memory) -> InstEffects {
        execute_inst(&parse_inst(text).unwrap(), state, mem)
            .unwrap_or_else(|e| panic!("{text}: {e}"))
    }

    fn set_f32_reg(state: &mut CpuState, reg: u8, values: &[f32]) {
        let mut bytes = [0u8; 32];
        for (i, v) in values.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        state.set_vec(VecReg::ymm(reg), &bytes, false);
    }

    fn get_f32_reg(state: &CpuState, reg: u8, lane: usize) -> f32 {
        get_f32(state.vec_raw(reg), lane)
    }

    #[test]
    fn packed_add() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        set_f32_reg(&mut s, 0, &[1.0, 2.0, 3.0, 4.0]);
        set_f32_reg(&mut s, 1, &[10.0, 20.0, 30.0, 40.0]);
        run("addps xmm0, xmm1", &mut s, &mut m);
        assert_eq!(get_f32_reg(&s, 0, 0), 11.0);
        assert_eq!(get_f32_reg(&s, 0, 3), 44.0);
    }

    #[test]
    fn vex_three_operand_and_ymm() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        set_f32_reg(&mut s, 1, &[1.0; 8]);
        set_f32_reg(&mut s, 2, &[2.0; 8]);
        run("vmulps ymm0, ymm1, ymm2", &mut s, &mut m);
        for lane in 0..8 {
            assert_eq!(get_f32_reg(&s, 0, lane), 2.0);
        }
        // Source registers unchanged.
        assert_eq!(get_f32_reg(&s, 1, 0), 1.0);
    }

    #[test]
    fn fma_231_order() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        set_f32_reg(&mut s, 0, &[100.0; 4]); // accumulator
        set_f32_reg(&mut s, 1, &[3.0; 4]);
        set_f32_reg(&mut s, 2, &[4.0; 4]);
        run("vfmadd231ps xmm0, xmm1, xmm2", &mut s, &mut m);
        assert_eq!(get_f32_reg(&s, 0, 0), 112.0);
    }

    #[test]
    fn subnormal_event_depends_on_mxcsr() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        let tiny = f32::MIN_POSITIVE / 2.0; // subnormal
        set_f32_reg(&mut s, 0, &[tiny; 4]);
        set_f32_reg(&mut s, 1, &[1.0; 4]);
        let fx = run("mulps xmm0, xmm1", &mut s, &mut m);
        assert!(fx.subnormal, "gradual underflow enabled: event recorded");
        // With FTZ+DAZ the event disappears and the value flushes to zero.
        s.mxcsr.ftz = true;
        s.mxcsr.daz = true;
        set_f32_reg(&mut s, 0, &[tiny; 4]);
        let fx = run("mulps xmm0, xmm1", &mut s, &mut m);
        assert!(!fx.subnormal);
        assert_eq!(get_f32_reg(&s, 0, 0), 0.0);
    }

    #[test]
    fn zero_idiom_result() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        set_f32_reg(&mut s, 2, &[123.0; 8]);
        run("vxorps xmm2, xmm2, xmm2", &mut s, &mut m);
        for lane in 0..8 {
            assert_eq!(get_f32_reg(&s, 2, lane), 0.0, "VEX-128 zeroes upper too");
        }
    }

    #[test]
    fn movaps_alignment_fault() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        let page = m.alloc_page(0);
        m.map(0x1000, page);
        s.set_gpr(bhive_asm::Gpr::Rax, bhive_asm::OpSize::Q, 0x1008);
        let err = execute_inst(
            &parse_inst("movaps xmm0, xmmword ptr [rax]").unwrap(),
            &mut s,
            &mut m,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecFault::GeneralProtection { vaddr: 0x1008 }
        ));
        // movups tolerates it.
        run("movups xmm0, xmmword ptr [rax]", &mut s, &mut m);
    }

    #[test]
    fn pshufd_and_pmovmskb() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        let mut bytes = [0u8; 16];
        for (i, chunk) in bytes.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(i as u32).to_le_bytes());
        }
        s.set_vec(VecReg::xmm(1), &bytes, false);
        run("pshufd xmm0, xmm1, 0x1b", &mut s, &mut m); // reverse dwords
        assert_eq!(get_u32(s.vec_raw(0), 0), 3);
        assert_eq!(get_u32(s.vec_raw(0), 3), 0);
        // pmovmskb: set top bits of some bytes.
        let mask_bytes = [0x80u8, 0, 0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x80];
        s.set_vec(VecReg::xmm(3), &mask_bytes, false);
        run("pmovmskb eax, xmm3", &mut s, &mut m);
        assert_eq!(s.gpr64(bhive_asm::Gpr::Rax), 0b1000_0000_0000_0101);
    }

    #[test]
    fn packed_int_mul_and_cmp() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        for lane in 0..4 {
            a[lane * 4..lane * 4 + 4].copy_from_slice(&(lane as u32 + 1).to_le_bytes());
            b[lane * 4..lane * 4 + 4].copy_from_slice(&3u32.to_le_bytes());
        }
        s.set_vec(VecReg::xmm(0), &a, false);
        s.set_vec(VecReg::xmm(1), &b, false);
        run("pmulld xmm0, xmm1", &mut s, &mut m);
        assert_eq!(get_u32(s.vec_raw(0), 0), 3);
        assert_eq!(get_u32(s.vec_raw(0), 3), 12);
        run("pcmpeqd xmm0, xmm0", &mut s, &mut m);
        assert_eq!(get_u32(s.vec_raw(0), 2), u32::MAX);
    }

    #[test]
    fn movss_merge_vs_load() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        set_f32_reg(&mut s, 0, &[9.0, 9.0, 9.0, 9.0]);
        set_f32_reg(&mut s, 1, &[5.0, 1.0, 1.0, 1.0]);
        run("movss xmm0, xmm1", &mut s, &mut m);
        assert_eq!(get_f32_reg(&s, 0, 0), 5.0);
        assert_eq!(get_f32_reg(&s, 0, 1), 9.0, "reg-reg movss merges");
        // Load zeroes the rest.
        let page = m.alloc_page(0);
        m.map(0x1000, page);
        m.write(0x1000, &7.5f32.to_le_bytes()).unwrap();
        s.set_gpr(bhive_asm::Gpr::Rax, bhive_asm::OpSize::Q, 0x1000);
        run("movss xmm0, dword ptr [rax]", &mut s, &mut m);
        assert_eq!(get_f32_reg(&s, 0, 0), 7.5);
        assert_eq!(get_f32_reg(&s, 0, 1), 0.0, "movss load zeroes upper");
    }

    #[test]
    fn shufps_selects() {
        let (mut s, mut m) = (CpuState::new(), Memory::new());
        set_f32_reg(&mut s, 0, &[0.0, 1.0, 2.0, 3.0]);
        set_f32_reg(&mut s, 1, &[10.0, 11.0, 12.0, 13.0]);
        // imm 0b01_00_11_10: dst = [a2, a3, b0, b1]
        run("shufps xmm0, xmm1, 0x4e", &mut s, &mut m);
        assert_eq!(get_f32_reg(&s, 0, 0), 2.0);
        assert_eq!(get_f32_reg(&s, 0, 1), 3.0);
        assert_eq!(get_f32_reg(&s, 0, 2), 10.0);
        assert_eq!(get_f32_reg(&s, 0, 3), 11.0);
    }
}
