//! Scalar (general-purpose) instruction semantics.

use super::{
    effective_addr, op_width, read_scalar_operand, write_scalar_operand, ExecFault, InstEffects,
    MemAccess,
};
use crate::mem::Memory;
use crate::state::{CpuState, Flags};
use bhive_asm::{Gpr, Inst, MemRef, Mnemonic, OpSize};

/// Sign-extends `value` from `width` bytes to 64 bits.
pub(super) fn sext(value: u64, width: u8) -> i64 {
    let shift = 64 - u32::from(width) * 8;
    ((value << shift) as i64) >> shift
}

/// True if the low byte of `value` has even parity (x86 PF).
pub(super) fn parity(value: u64) -> bool {
    (value as u8).count_ones().is_multiple_of(2)
}

pub(super) fn logic_flags(result: u64, width: u8) -> Flags {
    let masked = result & width_mask(width);
    Flags {
        cf: false,
        of: false,
        zf: masked == 0,
        sf: masked >> (width * 8 - 1) & 1 == 1,
        pf: parity(masked),
    }
}

pub(super) fn width_mask(width: u8) -> u64 {
    match width {
        1 => 0xFF,
        2 => 0xFFFF,
        4 => 0xFFFF_FFFF,
        _ => u64::MAX,
    }
}

/// Computes `a + b + carry_in` with full flag generation. The sum is
/// formed in 128-bit arithmetic so carry-out is exact even at the
/// wrap-around corner (`b == mask` with carry-in, where the 64-bit sum
/// lands back on `a`).
pub(super) fn add_with_flags(a: u64, b: u64, carry_in: bool, width: u8) -> (u64, Flags) {
    let mask = width_mask(width);
    let (a, b) = (a & mask, b & mask);
    let wide = u128::from(a) + u128::from(b) + u128::from(carry_in);
    let result = (wide as u64) & mask;
    let sign_bit = 1u64 << (width * 8 - 1);
    let cf = wide > u128::from(mask);
    let of = ((a ^ result) & (b ^ result) & sign_bit) != 0;
    (
        result,
        Flags {
            cf,
            of,
            zf: result == 0,
            sf: result & sign_bit != 0,
            pf: parity(result),
        },
    )
}

/// Computes `a - b - borrow_in` with full flag generation (exact borrow
/// via 128-bit arithmetic).
pub(super) fn sub_with_flags(a: u64, b: u64, borrow_in: bool, width: u8) -> (u64, Flags) {
    let mask = width_mask(width);
    let (a, b) = (a & mask, b & mask);
    let rhs = u128::from(b) + u128::from(borrow_in);
    let result = (u128::from(a).wrapping_sub(rhs) as u64) & mask;
    let sign_bit = 1u64 << (width * 8 - 1);
    let cf = u128::from(a) < rhs;
    let of = ((a ^ b) & (a ^ result) & sign_bit) != 0;
    (
        result,
        Flags {
            cf,
            of,
            zf: result == 0,
            sf: result & sign_bit != 0,
            pf: parity(result),
        },
    )
}

/// Which flags an instruction writes (used for dependency tracking in the
/// timing model). Delegates to the shared semantics on [`Inst`].
pub(crate) fn flags_written(inst: &Inst) -> bool {
    inst.writes_flags()
}

/// Whether the instruction reads flags.
pub(crate) fn flags_read(inst: &Inst) -> bool {
    inst.reads_flags()
}

pub(super) fn execute(
    inst: &Inst,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    use Mnemonic::*;
    let width = op_width(inst);
    let ops = inst.operands();

    match inst.mnemonic() {
        Nop | Jcc => {}
        Mov => {
            let src = read_scalar_operand(&ops[1], state, mem, fx)?;
            write_scalar_operand(&ops[0], src, state, mem, fx)?;
        }
        Movzx => {
            let src = read_scalar_operand(&ops[1], state, mem, fx)?;
            write_scalar_operand(&ops[0], src, state, mem, fx)?;
        }
        Movsx | Movsxd => {
            let src_width = ops[1].width_bytes().unwrap_or(4);
            let src = read_scalar_operand(&ops[1], state, mem, fx)?;
            write_scalar_operand(&ops[0], sext(src, src_width) as u64, state, mem, fx)?;
        }
        Bswap => {
            let v = read_scalar_operand(&ops[0], state, mem, fx)?;
            let swapped = match width {
                4 => u64::from((v as u32).swap_bytes()),
                _ => v.swap_bytes(),
            };
            write_scalar_operand(&ops[0], swapped, state, mem, fx)?;
        }
        Lea => {
            let mem_ref = ops[1].as_mem().expect("lea memory operand");
            let addr = effective_addr(mem_ref, state);
            write_scalar_operand(&ops[0], addr, state, mem, fx)?;
        }
        Push => {
            let value = read_scalar_operand(&ops[0], state, mem, fx)?;
            let rsp = state.gpr64(Gpr::Rsp).wrapping_sub(8);
            state.set_gpr(Gpr::Rsp, OpSize::Q, rsp);
            store_to(rsp, 8, value, state, mem, fx)?;
        }
        Pop => {
            let rsp = state.gpr64(Gpr::Rsp);
            let value = load_from(rsp, 8, state, mem, fx)?;
            state.set_gpr(Gpr::Rsp, OpSize::Q, rsp.wrapping_add(8));
            write_scalar_operand(&ops[0], value, state, mem, fx)?;
        }
        Add | Adc | Sub | Sbb | Cmp => {
            let a = read_scalar_operand(&ops[0], state, mem, fx)?;
            let b = read_scalar_operand(&ops[1], state, mem, fx)?;
            let carry = state.flags.cf;
            let (result, flags) = match inst.mnemonic() {
                Add => add_with_flags(a, b, false, width),
                Adc => add_with_flags(a, b, carry, width),
                Sub | Cmp => sub_with_flags(a, b, false, width),
                Sbb => sub_with_flags(a, b, carry, width),
                _ => unreachable!(),
            };
            state.flags = flags;
            if inst.mnemonic() != Cmp {
                write_scalar_operand(&ops[0], result, state, mem, fx)?;
            }
        }
        And | Or | Xor | Test => {
            let a = read_scalar_operand(&ops[0], state, mem, fx)?;
            let b = read_scalar_operand(&ops[1], state, mem, fx)?;
            let result = match inst.mnemonic() {
                And | Test => a & b,
                Or => a | b,
                Xor => a ^ b,
                _ => unreachable!(),
            };
            state.flags = logic_flags(result, width);
            if inst.mnemonic() != Test {
                write_scalar_operand(&ops[0], result, state, mem, fx)?;
            }
        }
        Inc | Dec => {
            let a = read_scalar_operand(&ops[0], state, mem, fx)?;
            let cf = state.flags.cf; // inc/dec preserve CF
            let (result, mut flags) = if inst.mnemonic() == Inc {
                add_with_flags(a, 1, false, width)
            } else {
                sub_with_flags(a, 1, false, width)
            };
            flags.cf = cf;
            state.flags = flags;
            write_scalar_operand(&ops[0], result, state, mem, fx)?;
        }
        Neg => {
            let a = read_scalar_operand(&ops[0], state, mem, fx)?;
            let (result, mut flags) = sub_with_flags(0, a, false, width);
            flags.cf = a & width_mask(width) != 0;
            state.flags = flags;
            write_scalar_operand(&ops[0], result, state, mem, fx)?;
        }
        Not => {
            let a = read_scalar_operand(&ops[0], state, mem, fx)?;
            write_scalar_operand(&ops[0], !a, state, mem, fx)?;
        }
        Shl | Shr | Sar | Rol | Ror => {
            let a = read_scalar_operand(&ops[0], state, mem, fx)?;
            let count_raw = read_scalar_operand(&ops[1], state, mem, fx)?;
            let count = (count_raw & if width == 8 { 63 } else { 31 }) as u32;
            let bits = u32::from(width) * 8;
            let mask = width_mask(width);
            let a = a & mask;
            let result = if count == 0 {
                a
            } else {
                match inst.mnemonic() {
                    Shl => a.wrapping_shl(count) & mask,
                    Shr => a.wrapping_shr(count),
                    Sar => (sext(a, width) >> count.min(bits - 1)) as u64 & mask,
                    Rol => {
                        let c = count % bits;
                        ((a << c) | (a >> (bits - c).min(63))) & mask
                    }
                    Ror => {
                        let c = count % bits;
                        ((a >> c) | (a << (bits - c).min(63))) & mask
                    }
                    _ => unreachable!(),
                }
            };
            if count != 0 && matches!(inst.mnemonic(), Shl | Shr | Sar) {
                let cf = match inst.mnemonic() {
                    Shl => count <= bits && (a >> (bits - count)) & 1 == 1,
                    _ => count <= bits && (a >> (count - 1)) & 1 == 1,
                };
                let mut flags = logic_flags(result, width);
                flags.cf = cf;
                state.flags = flags;
            }
            write_scalar_operand(&ops[0], result, state, mem, fx)?;
        }
        Imul => match ops.len() {
            1 => {
                let src = sext(read_scalar_operand(&ops[0], state, mem, fx)?, width) as i128;
                let acc = sext(state.gpr(Gpr::Rax, size_of(width)), width) as i128;
                let product = acc * src;
                write_mul_result(product as u128, width, state);
                // CF/OF set when the product does not fit the low half,
                // at the operand width.
                let low = (product as u64) & width_mask(width);
                let overflow = product != i128::from(sext(low, width));
                state.flags.cf = overflow;
                state.flags.of = overflow;
            }
            _ => {
                let (a, b) = if ops.len() == 2 {
                    (
                        sext(read_scalar_operand(&ops[0], state, mem, fx)?, width),
                        sext(read_scalar_operand(&ops[1], state, mem, fx)?, width),
                    )
                } else {
                    (
                        sext(read_scalar_operand(&ops[1], state, mem, fx)?, width),
                        read_scalar_operand(&ops[2], state, mem, fx)? as i64,
                    )
                };
                let wide = i128::from(a) * i128::from(b);
                let result = (wide as u64) & width_mask(width);
                let overflow = wide != (sext(result, width) as i128);
                state.flags.cf = overflow;
                state.flags.of = overflow;
                state.flags.zf = result == 0;
                state.flags.sf = result >> (width * 8 - 1) & 1 == 1;
                write_scalar_operand(&ops[0], result, state, mem, fx)?;
            }
        },
        Mul => {
            let src = read_scalar_operand(&ops[0], state, mem, fx)? & width_mask(width);
            let acc = state.gpr(Gpr::Rax, size_of(width));
            let product = u128::from(acc) * u128::from(src);
            write_mul_result(product, width, state);
            let high_set = product >> (width * 8) != 0;
            state.flags.cf = high_set;
            state.flags.of = high_set;
        }
        Div | Idiv => {
            let divisor_raw = read_scalar_operand(&ops[0], state, mem, fx)? & width_mask(width);
            if divisor_raw == 0 {
                return Err(ExecFault::DivideError);
            }
            let size = size_of(width);
            let lo = state.gpr(Gpr::Rax, size);
            let hi = state.gpr(Gpr::Rdx, size);
            fx.div_rdx_zero = hi == 0;
            let (quotient, remainder) = if inst.mnemonic() == Div {
                let dividend = (u128::from(hi) << (width * 8)) | u128::from(lo);
                let q = dividend / u128::from(divisor_raw);
                if q > u128::from(width_mask(width)) {
                    return Err(ExecFault::DivideError);
                }
                (q as u64, (dividend % u128::from(divisor_raw)) as u64)
            } else {
                let dividend =
                    ((i128::from(sext(hi, width)) << (width * 8)) as u128 | u128::from(lo)) as i128;
                let divisor = i128::from(sext(divisor_raw, width));
                let q = dividend / divisor;
                let limit = i128::from(width_mask(width) >> 1);
                if q > limit || q < -limit - 1 {
                    return Err(ExecFault::DivideError);
                }
                (q as u64, (dividend % divisor) as u64)
            };
            fx.div_quotient_bits = Some(64 - quotient.leading_zeros());
            state.set_gpr(Gpr::Rax, size, quotient);
            state.set_gpr(Gpr::Rdx, size, remainder);
        }
        Cdq => {
            let sign = if state.gpr(Gpr::Rax, OpSize::D) >> 31 & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            state.set_gpr(Gpr::Rdx, OpSize::D, sign);
        }
        Cqo => {
            let sign = if state.gpr64(Gpr::Rax) >> 63 & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            state.set_gpr(Gpr::Rdx, OpSize::Q, sign);
        }
        Popcnt | Lzcnt | Tzcnt => {
            let src = read_scalar_operand(&ops[1], state, mem, fx)? & width_mask(width);
            let bits = u32::from(width) * 8;
            let result = match inst.mnemonic() {
                Popcnt => u64::from(src.count_ones()),
                Lzcnt => u64::from(src.leading_zeros().saturating_sub(64 - bits)),
                Tzcnt => u64::from(src.trailing_zeros().min(bits)),
                _ => unreachable!(),
            };
            state.flags.zf = result == 0;
            // POPCNT clears CF; LZCNT/TZCNT set CF when the source is 0.
            state.flags.cf = inst.mnemonic() != Popcnt && src == 0;
            write_scalar_operand(&ops[0], result, state, mem, fx)?;
        }
        Set => {
            let cond = inst.cond().expect("setcc condition");
            let f = state.flags;
            let value = u64::from(cond.eval(f.cf, f.zf, f.sf, f.of, f.pf));
            write_scalar_operand(&ops[0], value, state, mem, fx)?;
        }
        Cmov => {
            let cond = inst.cond().expect("cmovcc condition");
            let f = state.flags;
            let src = read_scalar_operand(&ops[1], state, mem, fx)?;
            if cond.eval(f.cf, f.zf, f.sf, f.of, f.pf) {
                write_scalar_operand(&ops[0], src, state, mem, fx)?;
            }
        }
        other => unreachable!("scalar executor got {other:?}"),
    }
    Ok(())
}

pub(super) fn size_of(width: u8) -> OpSize {
    OpSize::from_bytes(width).unwrap_or(OpSize::Q)
}

pub(super) fn write_mul_result(product: u128, width: u8, state: &mut CpuState) {
    if width == 1 {
        // Byte multiply: AX = AL * src; RDX is untouched.
        state.set_gpr(Gpr::Rax, OpSize::W, product as u64 & 0xFFFF);
        return;
    }
    let size = size_of(width);
    state.set_gpr(Gpr::Rax, size, product as u64);
    state.set_gpr(Gpr::Rdx, size, (product >> (width * 8)) as u64);
}

pub(super) fn store_to(
    vaddr: u64,
    width: u8,
    value: u64,
    _state: &CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    mem.write_scalar(vaddr, width, value)?;
    let paddr = mem.phys_addr(vaddr, true)?;
    fx.store = Some(MemAccess {
        vaddr,
        paddr,
        width,
        write: true,
    });
    Ok(())
}

pub(super) fn load_from(
    vaddr: u64,
    width: u8,
    _state: &CpuState,
    mem: &Memory,
    fx: &mut InstEffects,
) -> Result<u64, ExecFault> {
    let value = mem.read_scalar(vaddr, width)?;
    let paddr = mem.phys_addr(vaddr, false)?;
    fx.load = Some(MemAccess {
        vaddr,
        paddr,
        width,
        write: false,
    });
    Ok(value)
}

/// Suppress an unused-import warning: `MemRef` is used in signatures above
/// via `effective_addr`.
#[allow(dead_code)]
fn _touch(_: &MemRef) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_inst;
    use bhive_asm::parse_inst;

    fn fresh() -> (CpuState, Memory) {
        (CpuState::new(), Memory::new())
    }

    fn run(text: &str, state: &mut CpuState, mem: &mut Memory) {
        execute_inst(&parse_inst(text).unwrap(), state, mem)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
    }

    #[test]
    fn add_sets_flags() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, u64::MAX);
        run("add rax, 1", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 0);
        assert!(s.flags.cf && s.flags.zf && !s.flags.of);
        // Signed overflow: 0x7FFF...F + 1.
        s.set_gpr(Gpr::Rax, OpSize::Q, i64::MAX as u64);
        run("add rax, 1", &mut s, &mut m);
        assert!(s.flags.of && s.flags.sf && !s.flags.cf);
    }

    #[test]
    fn sub_cmp_flags() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, 3);
        s.set_gpr(Gpr::Rbx, OpSize::Q, 5);
        run("cmp rax, rbx", &mut s, &mut m);
        assert!(s.flags.cf, "3 < 5 unsigned");
        assert!(s.flags.sf != s.flags.of, "3 < 5 signed");
        assert_eq!(s.gpr64(Gpr::Rax), 3, "cmp does not write");
    }

    #[test]
    fn adc_carry_out_at_wraparound() {
        // rax + 0xFFFF..FF + CF(1) == rax exactly: carry-out must still
        // be set (the 64-bit sum wraps onto the original value).
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, u64::MAX);
        run("add rax, 1", &mut s, &mut m); // CF=1, rax=0
        s.set_gpr(Gpr::Rax, OpSize::Q, 5);
        run("adc rax, -1", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 5, "5 + (2^64-1) + 1 wraps to 5");
        assert!(s.flags.cf, "carry-out must survive the wrap");
        assert!(!s.flags.zf);
    }

    #[test]
    fn sbb_borrow_at_wraparound() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, 0);
        run("add rax, 0", &mut s, &mut m); // CF=0
        s.set_gpr(Gpr::Rax, OpSize::Q, u64::MAX);
        run("add rax, 1", &mut s, &mut m); // CF=1
        s.set_gpr(Gpr::Rax, OpSize::Q, 5);
        run("sbb rax, -1", &mut s, &mut m); // 5 - (2^64-1) - 1 = 5 with borrow
        assert_eq!(s.gpr64(Gpr::Rax), 5);
        assert!(s.flags.cf, "borrow-out must survive the wrap");
    }

    #[test]
    fn adc_sbb_chain() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, u64::MAX);
        s.set_gpr(Gpr::Rdx, OpSize::Q, 0);
        run("add rax, 1", &mut s, &mut m); // CF=1
        run("adc rdx, 0", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rdx), 1);
    }

    #[test]
    fn inc_preserves_cf() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, u64::MAX);
        run("add rax, 1", &mut s, &mut m); // CF=1
        run("inc rax", &mut s, &mut m);
        assert!(s.flags.cf, "inc must not clobber CF");
        assert_eq!(s.gpr64(Gpr::Rax), 1);
    }

    #[test]
    fn shifts() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, 0b1011);
        run("shl rax, 4", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 0b1011_0000);
        run("shr rax, 5", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 0b101);
        s.set_gpr(Gpr::Rax, OpSize::D, 0x8000_0000);
        run("sar eax, 4", &mut s, &mut m);
        assert_eq!(s.gpr(Gpr::Rax, OpSize::D), 0xF800_0000);
        s.set_gpr(Gpr::Rbx, OpSize::D, 0x8000_0001);
        run("ror ebx, 1", &mut s, &mut m);
        assert_eq!(s.gpr(Gpr::Rbx, OpSize::D), 0xC000_0000);
    }

    #[test]
    fn mul_div_round_trip() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, 123_456_789);
        s.set_gpr(Gpr::Rcx, OpSize::Q, 987_654_321);
        run("mul rcx", &mut s, &mut m);
        // Now divide back.
        run("div rcx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 123_456_789);
        assert_eq!(s.gpr64(Gpr::Rdx), 0);
    }

    #[test]
    fn div_records_fast_path_info() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rdx, OpSize::Q, 0);
        s.set_gpr(Gpr::Rax, OpSize::Q, 100);
        s.set_gpr(Gpr::Rcx, OpSize::Q, 7);
        let fx = execute_inst(&parse_inst("div rcx").unwrap(), &mut s, &mut m).unwrap();
        assert!(fx.div_rdx_zero);
        assert_eq!(fx.div_quotient_bits, Some(4)); // 14 = 0b1110
        assert_eq!(s.gpr64(Gpr::Rax), 14);
        assert_eq!(s.gpr64(Gpr::Rdx), 2);
    }

    #[test]
    fn divide_errors() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rcx, OpSize::Q, 0);
        let err = execute_inst(&parse_inst("div rcx").unwrap(), &mut s, &mut m).unwrap_err();
        assert_eq!(err, ExecFault::DivideError);
        // Quotient overflow: rdx:rax / 1 with rdx != 0.
        s.set_gpr(Gpr::Rdx, OpSize::Q, 5);
        s.set_gpr(Gpr::Rcx, OpSize::Q, 1);
        let err = execute_inst(&parse_inst("div rcx").unwrap(), &mut s, &mut m).unwrap_err();
        assert_eq!(err, ExecFault::DivideError);
    }

    #[test]
    fn idiv_signed() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, (-100i64) as u64);
        run("cqo", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rdx), u64::MAX);
        s.set_gpr(Gpr::Rcx, OpSize::Q, 7);
        run("idiv rcx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax) as i64, -14);
        assert_eq!(s.gpr64(Gpr::Rdx) as i64, -2);
    }

    #[test]
    fn bit_counts() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rbx, OpSize::Q, 0xF0F0);
        run("popcnt rax, rbx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 8);
        run("tzcnt rax, rbx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 4);
        s.set_gpr(Gpr::Rbx, OpSize::D, 1);
        run("lzcnt eax, ebx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 31);
    }

    #[test]
    fn setcc_cmovcc() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, 5);
        run("cmp rax, 5", &mut s, &mut m);
        run("sete bl", &mut s, &mut m);
        assert_eq!(s.gpr(Gpr::Rbx, OpSize::B), 1);
        s.set_gpr(Gpr::Rcx, OpSize::Q, 111);
        s.set_gpr(Gpr::Rdx, OpSize::Q, 222);
        run("cmove rcx, rdx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rcx), 222);
        run("cmovne rcx, rax", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rcx), 222, "condition false: no write");
    }

    #[test]
    fn push_pop_stack() {
        let (mut s, mut m) = fresh();
        let page = m.alloc_page(0);
        m.map(0x8000_0000, page);
        s.set_gpr(Gpr::Rsp, OpSize::Q, 0x8000_0800);
        s.set_gpr(Gpr::Rbx, OpSize::Q, 0xCAFE);
        run("push rbx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rsp), 0x8000_07F8);
        run("pop rcx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rcx), 0xCAFE);
        assert_eq!(s.gpr64(Gpr::Rsp), 0x8000_0800);
    }

    #[test]
    fn movsx_movzx() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rbx, OpSize::B, 0x80);
        run("movzx eax, bl", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 0x80);
        run("movsx eax, bl", &mut s, &mut m);
        assert_eq!(s.gpr(Gpr::Rax, OpSize::D), 0xFFFF_FF80);
        s.set_gpr(Gpr::Rcx, OpSize::D, 0x8000_0000);
        run("movsxd rdx, ecx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rdx), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn bswap_widths() {
        let (mut s, mut m) = fresh();
        s.set_gpr(Gpr::Rax, OpSize::Q, 0x1122_3344_5566_7788);
        run("bswap rax", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rax), 0x8877_6655_4433_2211);
        s.set_gpr(Gpr::Rbx, OpSize::D, 0x1122_3344);
        run("bswap ebx", &mut s, &mut m);
        assert_eq!(s.gpr64(Gpr::Rbx), 0x4433_2211);
    }
}
