//! Functional execution of the supported instruction subset.
//!
//! Functional execution serves two purposes in the measurement framework:
//! it produces the *memory-address trace* that the page-mapping monitor
//! needs (which virtual pages does the block touch?), and it resolves the
//! value-dependent behaviours the timing model consumes — division
//! latencies, subnormal slow-downs, and faults.

pub(crate) mod lower;
pub(crate) mod ops;
mod scalar;
mod scalar_ops;
mod vector;
mod vector_ops;

use crate::mem::{Memory, SegFault};
use crate::state::CpuState;
use bhive_asm::{Inst, MemRef, Operand};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A single memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual address.
    pub vaddr: u64,
    /// Physical address (for cache tagging).
    pub paddr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// True for stores.
    pub write: bool,
}

/// Value-dependent effects of one dynamic instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstEffects {
    /// The load performed, if any.
    pub load: Option<MemAccess>,
    /// The store performed, if any.
    pub store: Option<MemAccess>,
    /// An FP operation saw a subnormal input or produced a subnormal
    /// result while gradual underflow was enabled.
    pub subnormal: bool,
    /// For scalar division: significant bits of the quotient (drives the
    /// variable latency).
    pub div_quotient_bits: Option<u32>,
    /// For 64-bit division: the upper dividend half (`rdx`) was zero,
    /// enabling the hardware fast path.
    pub div_rdx_zero: bool,
}

/// Faults raised by functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecFault {
    /// Page fault (simulated SIGSEGV).
    Seg(SegFault),
    /// Integer divide error (#DE): divide by zero or quotient overflow.
    DivideError,
    /// The instruction is not executable on this machine
    /// (e.g. AVX2 on Ivy Bridge — simulated SIGILL).
    InvalidOpcode,
    /// Alignment violation (#GP) from an aligned vector access
    /// (`movaps`/`movdqa`) to an unaligned address.
    GeneralProtection {
        /// The misaligned address.
        vaddr: u64,
    },
}

impl fmt::Display for ExecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecFault::Seg(s) => {
                write!(
                    f,
                    "segmentation fault at {:#x} ({})",
                    s.vaddr,
                    if s.write { "write" } else { "read" }
                )
            }
            ExecFault::DivideError => f.write_str("integer divide error"),
            ExecFault::InvalidOpcode => f.write_str("invalid opcode"),
            ExecFault::GeneralProtection { vaddr } => {
                write!(f, "alignment violation at {vaddr:#x}")
            }
        }
    }
}

impl Error for ExecFault {}

impl From<SegFault> for ExecFault {
    fn from(fault: SegFault) -> ExecFault {
        ExecFault::Seg(fault)
    }
}

/// Computes the effective address of a memory operand.
pub fn effective_addr(mem: &MemRef, state: &CpuState) -> u64 {
    let base = mem.base.map(|r| state.gpr64(r)).unwrap_or(0);
    let index = mem
        .index
        .map(|(r, scale)| state.gpr64(r).wrapping_mul(u64::from(scale.factor())))
        .unwrap_or(0);
    base.wrapping_add(index)
        .wrapping_add(mem.disp as i64 as u64)
}

/// Executes one instruction, mutating `state` and `mem`.
///
/// # Errors
///
/// Returns an [`ExecFault`] on unmapped memory, divide error, or an
/// unsupported operation; architectural state may be partially updated
/// only in ways invisible to the caller (the framework always restarts
/// from a full re-initialization after a fault, as the paper does).
pub fn execute_inst(
    inst: &Inst,
    state: &mut CpuState,
    mem: &mut Memory,
) -> Result<InstEffects, ExecFault> {
    let mut fx = InstEffects::default();
    if inst.mnemonic().is_sse() {
        vector::execute(inst, state, mem, &mut fx)?;
    } else {
        scalar::execute(inst, state, mem, &mut fx)?;
    }
    Ok(fx)
}

/// Reads a scalar operand value (GPR, immediate, or memory load).
fn read_scalar_operand(
    op: &Operand,
    state: &CpuState,
    mem: &Memory,
    fx: &mut InstEffects,
) -> Result<u64, ExecFault> {
    match op {
        Operand::Gpr { reg, size } => Ok(state.gpr(*reg, *size)),
        Operand::Imm(v) => Ok(*v as u64),
        Operand::Mem(m) => {
            let vaddr = effective_addr(m, state);
            let value = mem.read_scalar(vaddr, m.width)?;
            let paddr = mem.phys_addr(vaddr, false)?;
            fx.load = Some(MemAccess {
                vaddr,
                paddr,
                width: m.width,
                write: false,
            });
            Ok(value)
        }
        Operand::Vec(_) => unreachable!("vector operand in scalar context"),
    }
}

/// Writes a scalar result to a GPR or memory destination.
fn write_scalar_operand(
    op: &Operand,
    value: u64,
    state: &mut CpuState,
    mem: &mut Memory,
    fx: &mut InstEffects,
) -> Result<(), ExecFault> {
    match op {
        Operand::Gpr { reg, size } => {
            state.set_gpr(*reg, *size, value);
            Ok(())
        }
        Operand::Mem(m) => {
            let vaddr = effective_addr(m, state);
            mem.write_scalar(vaddr, m.width, value)?;
            let paddr = mem.phys_addr(vaddr, true)?;
            fx.store = Some(MemAccess {
                vaddr,
                paddr,
                width: m.width,
                write: true,
            });
            Ok(())
        }
        _ => unreachable!("immediate/vector destination"),
    }
}

/// Operand width in bytes for the instruction's primary operation.
fn op_width(inst: &Inst) -> u8 {
    inst.width_bytes()
}

pub(crate) use scalar::flags_read;
#[allow(unused_imports)]
pub(crate) use scalar::flags_written;

#[cfg(test)]
mod tests {
    use super::*;
    use bhive_asm::parse_inst;
    use bhive_asm::{Gpr, OpSize};

    fn setup() -> (CpuState, Memory) {
        let mut state = CpuState::new();
        state.reset_with_fill(0x1234_5600);
        let mut mem = Memory::new();
        let page = mem.alloc_page(0x1234_5600);
        // Map the page the fill pattern points into.
        mem.map(0x1234_5600, page);
        (state, mem)
    }

    fn run(text: &str, state: &mut CpuState, mem: &mut Memory) -> InstEffects {
        execute_inst(&parse_inst(text).unwrap(), state, mem)
            .unwrap_or_else(|e| panic!("{text}: {e}"))
    }

    #[test]
    fn effective_addresses() {
        let (mut state, _mem) = setup();
        state.set_gpr(Gpr::Rbx, OpSize::Q, 0x1000);
        state.set_gpr(Gpr::Rcx, OpSize::Q, 0x10);
        let m = parse_inst("lea rax, [rbx + 4*rcx - 8]").unwrap();
        let mem_ref = m.operands()[1].as_mem().unwrap();
        assert_eq!(effective_addr(mem_ref, &state), 0x1000 + 0x40 - 8);
    }

    #[test]
    fn load_records_access() {
        let (mut state, mut mem) = setup();
        let fx = run("mov rax, qword ptr [rbx]", &mut state, &mut mem);
        let load = fx.load.unwrap();
        assert_eq!(load.vaddr, 0x1234_5600);
        assert!(!load.write);
        assert_eq!(state.gpr64(Gpr::Rax), 0x1234_5600_1234_5600);
    }

    #[test]
    fn segfault_reports_address() {
        let (mut state, mut mem) = setup();
        state.set_gpr(Gpr::Rdi, OpSize::Q, 0xDEAD_0000);
        let err = execute_inst(
            &parse_inst("mov eax, dword ptr [rdi]").unwrap(),
            &mut state,
            &mut mem,
        )
        .unwrap_err();
        match err {
            ExecFault::Seg(s) => assert_eq!(s.vaddr, 0xDEAD_0000),
            other => panic!("expected segfault, got {other:?}"),
        }
    }
}
