//! # bhive-sim
//!
//! The simulated x86-64 machine that plays the role of *hardware* in this
//! reproduction of BHive.
//!
//! The paper measures basic-block throughput on real Ivy Bridge, Haswell
//! and Skylake parts using `ptrace`, `mmap` and hardware performance
//! counters. This crate provides a machine with the same observable
//! interface, so the measurement framework in `bhive-harness` can run the
//! paper's techniques unchanged:
//!
//! * a **functional executor** over a sparse virtual memory that faults on
//!   unmapped pages (the signal the page-mapping monitor intercepts);
//! * a **cycle-level out-of-order timing model** driven by the per-uarch
//!   uop tables of `bhive-uarch` (ports, latencies, fusion, zero idioms,
//!   value-dependent division, subnormal stalls);
//! * **VIPT L1 data and instruction caches** whose misses are observable
//!   through performance counters — mapping every virtual page to one
//!   physical page really does make all accesses hit, and unrolling a
//!   large block really does overflow the L1I;
//! * **performance counters** (core cycles, cache misses, context
//!   switches, misaligned references) and an **OS-noise model** that makes
//!   the paper's clean-trial filtering meaningful.
//!
//! # Example
//!
//! ```
//! use bhive_sim::Machine;
//! use bhive_uarch::Uarch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = bhive_asm::parse_block("add rax, rbx\nimul rcx, rdx")?;
//! let mut machine = Machine::new(Uarch::haswell(), 0 /* rng seed */);
//! machine.reset(0x12345600);
//! let run = machine.run(block.insts(), 16)?; // 16 unrolled copies
//! assert!(run.counters.core_cycles > 0);
//! # Ok(())
//! # }
//! ```

mod cache;
mod counters;
mod exec;
mod machine;
mod mem;
mod noise;
mod simd;
mod state;
mod timing;

pub use cache::Cache;
pub use counters::PerfCounters;
pub use exec::{effective_addr, execute_inst, ExecFault, InstEffects, MemAccess};
pub use machine::{LowerStats, Machine, RunError, RunOutcome, CODE_BASE};
pub use mem::{Memory, PhysPage, SegFault, PAGE_SIZE};
pub use noise::NoiseConfig;
pub use simd::SimdTier;
pub use state::{CpuState, Flags, Mxcsr};
pub use timing::{
    CodeLayout, DynInst, NonConvergence, PreparedTrace, SimScratch, StaticPrep, TimingModel,
    TimingResult,
};
