//! Property tests for the functional executor and timing model.

use bhive_asm::{parse_block, Gpr, OpSize};
use bhive_sim::{Cache, CodeLayout, CpuState, Machine, Memory, TimingModel};
use bhive_uarch::Uarch;
use proptest::prelude::*;

fn machine_with_page() -> Machine {
    let mut machine = Machine::new(Uarch::haswell(), 0);
    machine.reset(0x1234_5600);
    let page = machine.memory_mut().alloc_page(0x1234_5600);
    machine.memory_mut().map(0x1234_5600, page);
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Scalar arithmetic agrees with Rust's wrapping semantics, and the
    /// CF/ZF/SF flags agree with a reference computation.
    #[test]
    fn add_sub_match_reference(a in any::<u64>(), b in any::<u64>(), sub in any::<bool>()) {
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.state_mut().set_gpr(Gpr::Rax, OpSize::Q, a);
        machine.state_mut().set_gpr(Gpr::Rbx, OpSize::Q, b);
        let block = parse_block(if sub { "sub rax, rbx" } else { "add rax, rbx" }).unwrap();
        machine.execute_unrolled(block.insts(), 1).unwrap();
        let expected = if sub { a.wrapping_sub(b) } else { a.wrapping_add(b) };
        prop_assert_eq!(machine.state().gpr64(Gpr::Rax), expected);
        let flags = machine.state().flags;
        prop_assert_eq!(flags.zf, expected == 0);
        prop_assert_eq!(flags.sf, (expected as i64) < 0);
        let carry = if sub { a.checked_sub(b).is_none() } else { a.checked_add(b).is_none() };
        prop_assert_eq!(flags.cf, carry);
        let signed_overflow = if sub {
            (a as i64).checked_sub(b as i64).is_none()
        } else {
            (a as i64).checked_add(b as i64).is_none()
        };
        prop_assert_eq!(flags.of, signed_overflow);
    }

    /// `mul` then `div` by the same value restores the accumulator.
    #[test]
    fn mul_div_inverse(a in 1u64..u64::MAX / 2, d in 1u64..u32::MAX as u64) {
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.state_mut().set_gpr(Gpr::Rax, OpSize::Q, a);
        machine.state_mut().set_gpr(Gpr::Rcx, OpSize::Q, d);
        let block = parse_block("mul rcx\ndiv rcx").unwrap();
        machine.execute_unrolled(block.insts(), 1).unwrap();
        prop_assert_eq!(machine.state().gpr64(Gpr::Rax), a);
        prop_assert_eq!(machine.state().gpr64(Gpr::Rdx), 0);
    }

    /// Memory writes read back, through any alias of the same frame.
    #[test]
    fn store_load_round_trip(value in any::<u64>(), offset in 0u64..512) {
        let offset = offset * 8;
        let mut memory = Memory::new();
        let page = memory.alloc_page(0);
        memory.map(0x10_000, page);
        memory.map(0x20_000, page);
        memory.write_scalar(0x10_000 + offset, 8, value).unwrap();
        prop_assert_eq!(memory.read_scalar(0x20_000 + offset, 8).unwrap(), value);
    }

    /// Shifts match Rust for in-range counts.
    #[test]
    fn shifts_match_reference(a in any::<u64>(), count in 1u32..63) {
        let mut machine = Machine::new(Uarch::haswell(), 0);
        machine.state_mut().set_gpr(Gpr::Rax, OpSize::Q, a);
        machine.state_mut().set_gpr(Gpr::Rbx, OpSize::Q, a);
        let block = parse_block(&format!("shl rax, {count}\nshr rbx, {count}")).unwrap();
        machine.execute_unrolled(block.insts(), 1).unwrap();
        prop_assert_eq!(machine.state().gpr64(Gpr::Rax), a << count);
        prop_assert_eq!(machine.state().gpr64(Gpr::Rbx), a >> count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cycle counts grow monotonically with the unroll factor, and the
    /// per-iteration marginal cost stabilizes (the premise of the paper's
    /// Eq. 2 two-unroll-factor derivation).
    #[test]
    fn timing_is_monotone_and_linear(seed in 0u64..500) {
        // A small deterministic register-only block derived from the seed.
        let ops = ["add r8, 1", "imul r9, r10", "xor r11, r12", "shl r13, 3"];
        let text: Vec<&str> =
            (0..4).map(|i| ops[((seed >> (2 * i)) % 4) as usize]).collect();
        let block = parse_block(&text.join("\n")).unwrap();
        let uarch = Uarch::haswell();
        let model = TimingModel::new(block.insts(), uarch);
        let layout = CodeLayout::from_block(block.insts(), 0x40_0000).unwrap();

        let cycles = |unroll: u32| {
            let mut machine = Machine::new(uarch, 0);
            machine.reset(0x1234_5600);
            let trace = machine.execute_unrolled(block.insts(), unroll).unwrap();
            let mut l1i = Cache::new(uarch.l1i);
            let mut l1d = Cache::new(uarch.l1d);
            model.run(&trace, &layout, &mut l1i, &mut l1d).unwrap();
            model.run(&trace, &layout, &mut l1i, &mut l1d).unwrap().cycles
        };
        let c40 = cycles(40);
        let c80 = cycles(80);
        let c120 = cycles(120);
        prop_assert!(c40 < c80 && c80 < c120, "{c40} {c80} {c120}");
        // Two-factor estimates from disjoint windows agree closely.
        let tp_a = (c80 - c40) as f64 / 40.0;
        let tp_b = (c120 - c80) as f64 / 40.0;
        prop_assert!((tp_a - tp_b).abs() <= 0.25 * tp_a.max(1.0), "{tp_a} vs {tp_b}");
    }
}

#[test]
fn state_reset_is_complete() {
    let mut machine = machine_with_page();
    let block =
        parse_block("mov rax, qword ptr [rbx]\nadd rax, 7\nmov qword ptr [rbx], rax").unwrap();
    let trace_a = machine.execute_unrolled(block.insts(), 8).unwrap();
    // Re-initialize exactly like the harness does.
    machine.reset(0x1234_5600);
    machine.memory_mut().refill_all(0x1234_5600);
    let trace_b = machine.execute_unrolled(block.insts(), 8).unwrap();
    assert_eq!(trace_a.len(), trace_b.len());
    for (a, b) in trace_a.iter().zip(&trace_b) {
        assert_eq!(a.effects, b.effects, "address traces must be identical");
    }
}

#[test]
fn partial_register_writes_preserve_flags_invariants() {
    let mut state = CpuState::new();
    state.set_gpr(Gpr::Rax, OpSize::Q, u64::MAX);
    state.set_gpr(Gpr::Rax, OpSize::B, 0);
    assert_eq!(state.gpr64(Gpr::Rax), u64::MAX - 0xFF);
    state.set_gpr(Gpr::Rax, OpSize::D, 1);
    assert_eq!(state.gpr64(Gpr::Rax), 1, "32-bit writes zero-extend");
}
