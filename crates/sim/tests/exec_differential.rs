//! Differential tests for the predecoded executor: running a block
//! through the lowered `ExecOp` path (`execute_unrolled_into`) must be
//! bit for bit identical to the retained reference interpreter
//! (`execute_unrolled_reference_into`) — the same dynamic trace, the
//! same fault (kind, address, and position), and the same architectural
//! state and memory afterwards. Exercised across random generated blocks
//! from every application profile, all three shipped microarchitectures,
//! fault-free and faulting executions, and both harness unroll factors.
//!
//! The tier-1 script runs this suite twice — natively and with
//! `BHIVE_SIMD=off` — since the lowered kernels feed the same
//! dispatch-sensitive downstream consumers as the reference ones.

use bhive_asm::fnv1a_64;
use bhive_corpus::{generate_block, Application};
use bhive_sim::{DynInst, ExecFault, Machine, Memory, NoiseConfig, PhysPage};
use bhive_uarch::Uarch;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FILL: u64 = 0x1234_5600;

fn uarches() -> [&'static Uarch; 3] {
    [Uarch::ivy_bridge(), Uarch::haswell(), Uarch::skylake()]
}

/// Re-initializes a machine exactly as the harness does before each
/// monitor (re-)execution: reset to the fill pattern, FTZ/DAZ per
/// config, refill every mapped page.
fn reinit(machine: &mut Machine, ftz_daz: bool) {
    machine.reset(FILL);
    machine.set_ftz_daz(ftz_daz);
    machine.memory_mut().refill_all(FILL);
}

/// Reads back the bytes of every store in `trace` — the only memory a
/// block execution can mutate — so two executions' memories can be
/// compared without a `Memory: PartialEq` impl.
fn stored_bytes(mem: &Memory, trace: &[DynInst]) -> Vec<u8> {
    let mut out = Vec::new();
    for dyn_inst in trace {
        if let Some(store) = dyn_inst.effects.store {
            let mut buf = vec![0u8; store.width as usize];
            mem.read(store.vaddr, &mut buf).expect("stored page mapped");
            out.extend_from_slice(&buf);
        }
    }
    out
}

/// The core comparison over two machines whose memories are already in
/// identical mapped states. Runs the paper's monitor loop (map each
/// faulting page, restart) on *both* paths simultaneously so the
/// differential property is checked on every restart, not just the final
/// fault-free execution.
fn drive_paths_agree(
    block: &bhive_asm::BasicBlock,
    lowered: &mut Machine,
    reference: &mut Machine,
    unroll: u32,
    ftz_daz: bool,
) -> Result<(), TestCaseError> {
    let mut low_shared: Option<PhysPage> = None;
    let mut ref_shared: Option<PhysPage> = None;
    for restart in 0..64 {
        reinit(lowered, ftz_daz);
        reinit(reference, ftz_daz);

        let mut low_trace = Vec::new();
        let mut ref_trace = Vec::new();
        let low = lowered.execute_unrolled_into(block.insts(), unroll, &mut low_trace);
        let r#ref =
            reference.execute_unrolled_reference_into(block.insts(), unroll, &mut ref_trace);

        // Identical faults (kind, address, success), identical partial or
        // complete traces, identical architectural state, identical
        // stored memory.
        prop_assert_eq!(
            low,
            r#ref,
            "fault divergence on {:?} restart {}",
            lowered.uarch().kind,
            restart
        );
        prop_assert_eq!(
            &low_trace,
            &ref_trace,
            "trace divergence on {:?} restart {}",
            lowered.uarch().kind,
            restart
        );
        prop_assert_eq!(
            lowered.state(),
            reference.state(),
            "architectural state divergence on {:?} restart {}",
            lowered.uarch().kind,
            restart
        );
        prop_assert_eq!(
            stored_bytes(lowered.memory(), &low_trace),
            stored_bytes(reference.memory(), &ref_trace),
            "stored-memory divergence on {:?} restart {}",
            lowered.uarch().kind,
            restart
        );

        match low {
            Ok(()) => return Ok(()),
            Err(ExecFault::Seg(fault)) => {
                if fault.vaddr < 0x1000 || fault.vaddr >= (1 << 47) {
                    // The monitor would reject this block; the paths
                    // already agreed on the rejection-triggering fault.
                    return Ok(());
                }
                let low_phys =
                    *low_shared.get_or_insert_with(|| lowered.memory_mut().alloc_page(FILL));
                lowered.memory_mut().map(fault.vaddr, low_phys);
                let ref_phys =
                    *ref_shared.get_or_insert_with(|| reference.memory_mut().alloc_page(FILL));
                reference.memory_mut().map(fault.vaddr, ref_phys);
            }
            // Non-mappable fault (#DE, #UD, #GP): both paths agreed on
            // it above, and the harness would reject the block.
            Err(_) => return Ok(()),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random blocks from every application profile, through the full
    /// fault-service loop, on all three uarches, at a random unroll
    /// factor, with and without gradual underflow.
    #[test]
    fn lowered_executor_equals_reference(
        seed in any::<u64>(),
        app_idx in 0usize..12,
        unroll in 1u32..24,
        ftz_daz in any::<bool>(),
    ) {
        let app = Application::ALL[app_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(app, &mut rng);
        let Ok(encoded) = block.encode() else { return Ok(()); };

        for uarch in uarches() {
            let machine_seed = fnv1a_64(&encoded);
            let mut lowered = Machine::new(uarch, machine_seed);
            let mut reference = Machine::new(uarch, machine_seed);
            lowered.recycle(machine_seed, NoiseConfig::quiet());
            reference.recycle(machine_seed, NoiseConfig::quiet());
            drive_paths_agree(&block, &mut lowered, &mut reference, unroll, ftz_daz)?;
        }
    }

    /// The harness's exact unroll pair (hi = 16 with a lo prefix) over
    /// one reused machine per path: the lowering cache must be
    /// transparent when the same machine re-executes the same block at a
    /// different factor, and when it moves on to a different block.
    #[test]
    fn unroll_factors_share_one_lowering(seed in any::<u64>(), app_idx in 0usize..12) {
        let app = Application::ALL[app_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let block_a = generate_block(app, &mut rng);
        let block_b = generate_block(app, &mut rng);
        if block_a.encode().is_err() || block_b.encode().is_err() { return Ok(()); }

        let uarch = Uarch::haswell();
        let mut lowered = Machine::new(uarch, 1);
        let mut reference = Machine::new(uarch, 1);
        for block in [&block_a, &block_b, &block_a] {
            for unroll in [16u32, 4] {
                drive_paths_agree(block, &mut lowered, &mut reference, unroll, true)?;
            }
        }
        // Two blocks interleaved at two factors each: the second factor
        // and the re-visit re-lowered nothing new except the A→B→A
        // switches.
        let stats = lowered.lower_stats();
        prop_assert_eq!(stats.misses >= 3, true, "expected >= 3 misses, got {:?}", stats);
        prop_assert_eq!(stats.hits >= 3, true, "expected >= 3 hits, got {:?}", stats);
    }
}

/// Hand-picked semantic corners where lowering is most likely to drift
/// from the reference: every faulting class, flag-preserving shifts,
/// division edge cases, and subnormal-producing FP — checked at both
/// unroll factors on all uarches.
#[test]
fn semantic_corner_blocks_agree() {
    let corners = [
        // Shift by zero preserves flags; rotates never write them.
        "add rax, rbx\nshl rcx, 0\nrol rdx, 1\nsar rax, 3",
        // Divide: quotient-bit latency inputs and the rdx fast path.
        "xor edx, edx\nmov eax, 1000\nmov ecx, 7\ndiv ecx",
        // Divide error (#DE) mid-block, second copy.
        "mov ecx, 2\nshr rcx, 1\ndiv ecx",
        // Push/pop against the unmapped-then-mapped stack page.
        "push rax\npop rbx\npush rcx",
        // Aligned vector access: #GP on the odd address.
        "movaps xmm0, xmmword ptr [rbx + 4]",
        // Subnormal FP with gradual underflow (FTZ/DAZ off in driver).
        "mulps xmm0, xmm1\naddps xmm2, xmm0",
        // Scalar FP merge semantics and conversions.
        "movss xmm0, dword ptr [rbx]\ncvtsi2ss xmm1, rax\ncvttss2si rdx, xmm1",
        // cmov reads its source even when the move is suppressed.
        "cmp rax, rbx\ncmove rcx, qword ptr [rbx]",
        // Packed integer widths and shifts at the immediate-count edge.
        "pslld xmm1, 33\npsrlq xmm2, 63\npmuludq xmm1, xmm2",
        // Memory-destination RMW with carry chains.
        "add qword ptr [rbx], 1\nadc rax, rax\nsbb rdx, 3",
    ];
    for text in corners {
        let block = bhive_asm::parse_block(text).unwrap();
        for uarch in uarches() {
            for unroll in [16u32, 4] {
                for ftz_daz in [false, true] {
                    let mut lowered = Machine::new(uarch, 0);
                    let mut reference = Machine::new(uarch, 0);
                    drive_paths_agree(&block, &mut lowered, &mut reference, unroll, ftz_daz)
                        .unwrap_or_else(|e| panic!("{text}: {e}"));
                }
            }
        }
    }
}

/// AVX2 gating: the lowered path must fault with `#UD` on Ivy Bridge
/// before executing anything, exactly like the reference scan — and must
/// execute normally on Haswell.
#[test]
fn avx2_gating_matches_reference() {
    let block = bhive_asm::parse_block("add rax, 1\nvfmadd231ps ymm0, ymm1, ymm2").unwrap();
    let mut lowered = Machine::new(Uarch::ivy_bridge(), 0);
    let mut reference = Machine::new(Uarch::ivy_bridge(), 0);
    drive_paths_agree(&block, &mut lowered, &mut reference, 8, true).unwrap();
    // Neither path may have executed the leading `add` before `#UD`.
    assert_eq!(lowered.state(), reference.state());

    let mut lowered = Machine::new(Uarch::haswell(), 0);
    let mut reference = Machine::new(Uarch::haswell(), 0);
    drive_paths_agree(&block, &mut lowered, &mut reference, 8, true).unwrap();
}

/// The `Machine::run` one-shot agrees with itself when its machine is
/// recycled (warm lowering cache) versus fresh (cold cache): the cache
/// must be invisible in every counter.
#[test]
fn lowering_cache_is_invisible_to_run() {
    let blocks = [
        bhive_asm::parse_block("add rax, rbx\nimul rcx, rdx").unwrap(),
        bhive_asm::parse_block("xorps xmm0, xmm1\naddps xmm0, xmm2").unwrap(),
    ];
    let mut reused = Machine::new(Uarch::skylake(), 3);
    for block in [&blocks[0], &blocks[1], &blocks[0]] {
        reused.recycle(3, NoiseConfig::quiet());
        reused.reset(FILL);
        let warm = reused.run(block.insts(), 16).unwrap();
        let mut fresh = Machine::new(Uarch::skylake(), 3);
        fresh.reset(FILL);
        let cold = fresh.run(block.insts(), 16).unwrap();
        assert_eq!(warm.counters, cold.counters);
        assert_eq!(warm.dynamic_insts, cold.dynamic_insts);
    }
    let stats = reused.lower_stats();
    assert!(
        stats.hits > 0,
        "run() never hit the lowering cache: {stats:?}"
    );
}
