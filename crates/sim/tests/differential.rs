//! Differential tests: the split `prepare` + `simulate` path must be bit
//! for bit identical to `run_reference`, the retained single-pass
//! implementation — across random generated blocks, unroll factors, all
//! shipped microarchitectures, cold and warm caches, prefix replay (the
//! lo-factor measurement reuses the hi-factor preparation), and every
//! SIMD dispatch tier the host supports (AVX2 / SSE4.1 / scalar; run
//! with `BHIVE_SIMD=off` to force-exercise the scalar fallback through
//! the default entry points too).

use bhive_asm::fnv1a_64;
use bhive_corpus::{generate_block, Application};
use bhive_sim::{
    Cache, CodeLayout, DynInst, ExecFault, Machine, NoiseConfig, PhysPage, SimScratch, SimdTier,
    TimingModel, CODE_BASE,
};
use bhive_uarch::Uarch;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FILL: u64 = 0x1234_5600;

/// Minimal stand-in for the harness monitor: executes `unroll` copies,
/// mapping every faulting page to one shared frame until the block runs
/// fault-free. Returns `None` for blocks the monitor would reject
/// (unmappable address or fault-budget blowout) — those are simply
/// skipped; the differential property is about timing, not mapping.
fn map_and_trace(
    machine: &mut Machine,
    block: &bhive_asm::BasicBlock,
    unroll: u32,
) -> Option<Vec<DynInst>> {
    let mut shared: Option<PhysPage> = None;
    for _ in 0..64 {
        machine.reset(FILL);
        machine.set_ftz_daz(true);
        machine.memory_mut().refill_all(FILL);
        match machine.execute_unrolled(block.insts(), unroll) {
            Ok(trace) => return Some(trace),
            Err(ExecFault::Seg(fault)) => {
                if fault.vaddr < 0x1000 || fault.vaddr >= (1 << 47) {
                    return None;
                }
                let phys = *shared.get_or_insert_with(|| machine.memory_mut().alloc_page(FILL));
                machine.memory_mut().map(fault.vaddr, phys);
            }
            Err(_) => return None,
        }
    }
    None
}

fn uarches() -> [&'static Uarch; 3] {
    [Uarch::ivy_bridge(), Uarch::haswell(), Uarch::skylake()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cold- and warm-cache double execution: prepared path == reference,
    /// on every uarch, for a random block at a random unroll factor.
    #[test]
    fn prepared_equals_reference(seed in any::<u64>(), app_idx in 0usize..12, unroll in 1u32..24) {
        let app = Application::ALL[app_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(app, &mut rng);
        let Ok(encoded) = block.encode() else { return Ok(()); };

        for uarch in uarches() {
            let mut machine = Machine::new(uarch, 0);
            machine.recycle(fnv1a_64(&encoded), NoiseConfig::quiet());
            let Some(trace) = map_and_trace(&mut machine, &block, unroll) else {
                return Ok(());
            };
            let layout = CodeLayout::from_block(block.insts(), CODE_BASE).unwrap();
            let model = TimingModel::new(block.insts(), uarch);

            // Reference: two back-to-back runs over cold caches.
            let mut ref_l1i = Cache::new(uarch.l1i);
            let mut ref_l1d = Cache::new(uarch.l1d);
            let ref_cold = model.run_reference(&trace, &layout, &mut ref_l1i, &mut ref_l1d);
            let ref_warm = model.run_reference(&trace, &layout, &mut ref_l1i, &mut ref_l1d);

            // Prepared path: one preparation, two simulations — once via
            // the process-wide dispatch (honoring BHIVE_SIMD), then
            // pinned to each tier the host supports.
            let prep = model.prepare(&trace, &layout);
            let mut l1i = Cache::new(uarch.l1i);
            let mut l1d = Cache::new(uarch.l1d);
            let cold = model.simulate(&prep, &mut l1i, &mut l1d);
            let warm = model.simulate(&prep, &mut l1i, &mut l1d);

            prop_assert_eq!(cold, ref_cold, "cold divergence on {:?}", uarch.kind);
            prop_assert_eq!(warm, ref_warm, "warm divergence on {:?}", uarch.kind);

            for &tier in SimdTier::available() {
                let mut l1i = Cache::new(uarch.l1i);
                let mut l1d = Cache::new(uarch.l1d);
                let mut scratch = SimScratch::default();
                let cold = model.simulate_with_tier(
                    &prep, trace.len(), &mut l1i, &mut l1d, &mut scratch, tier,
                );
                let warm = model.simulate_with_tier(
                    &prep, trace.len(), &mut l1i, &mut l1d, &mut scratch, tier,
                );
                prop_assert_eq!(
                    cold, ref_cold, "cold divergence on {:?} tier {:?}", uarch.kind, tier
                );
                prop_assert_eq!(
                    warm, ref_warm, "warm divergence on {:?} tier {:?}", uarch.kind, tier
                );
            }
        }
    }

    /// Prefix replay: simulating the first `n` instructions of a prepared
    /// hi-factor trace must equal preparing and running the lo-factor
    /// trace from scratch — the property that lets `measure` reuse one
    /// preparation for both unroll factors.
    #[test]
    fn prefix_replay_equals_reference(seed in any::<u64>(), app_idx in 0usize..12) {
        let app = Application::ALL[app_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let block = generate_block(app, &mut rng);
        let Ok(encoded) = block.encode() else { return Ok(()); };
        let uarch = Uarch::haswell();
        let mut machine = Machine::new(uarch, 0);
        machine.recycle(fnv1a_64(&encoded), NoiseConfig::quiet());
        let Some(trace) = map_and_trace(&mut machine, &block, 17) else {
            return Ok(());
        };
        let layout = CodeLayout::from_block(block.insts(), CODE_BASE).unwrap();
        let model = TimingModel::new(block.insts(), uarch);
        let prep = model.prepare(&trace, &layout);

        for lo in [1usize, 2, 5, 17] {
            let n = (lo * block.len()).min(trace.len());
            let mut ref_l1i = Cache::new(uarch.l1i);
            let mut ref_l1d = Cache::new(uarch.l1d);
            let reference = model.run_reference(&trace[..n], &layout, &mut ref_l1i, &mut ref_l1d);

            let mut l1i = Cache::new(uarch.l1i);
            let mut l1d = Cache::new(uarch.l1d);
            let mut scratch = SimScratch::default();
            let replayed = model.simulate_with(&prep, n, &mut l1i, &mut l1d, &mut scratch);
            prop_assert_eq!(replayed, reference, "prefix n={} diverged", n);
        }
    }
}

/// The empty trace is a fixed point of both paths.
#[test]
fn empty_trace_is_identical() {
    let block = bhive_asm::parse_block("add rax, 1").unwrap();
    let uarch = Uarch::haswell();
    let model = TimingModel::new(block.insts(), uarch);
    let layout = CodeLayout::from_block(block.insts(), CODE_BASE).unwrap();
    let mut l1i = Cache::new(uarch.l1i);
    let mut l1d = Cache::new(uarch.l1d);
    let reference = model.run_reference(&[], &layout, &mut l1i, &mut l1d);
    let prep = model.prepare(&[], &layout);
    let split = model.simulate(&prep, &mut l1i, &mut l1d);
    assert_eq!(split, reference);
}
